"""Failure-handling for the execution stack: faults, policies, checkpoints.

Three planes, all deterministic and identity-neutral when idle:

* :mod:`repro.resilience.faults` — seeded, contextvar-scoped fault
  injection at named sites (``fault_point("stage:replay")``), armed by
  tests or ``repro sweep --inject-faults``.
* :mod:`repro.resilience.policy` — declarative :class:`RetryPolicy` /
  :class:`TimeoutPolicy` / :class:`ExecutionPolicy`, the only place the
  execution stack is allowed to sleep or read a deadline clock (rule R1).
* :mod:`repro.resilience.checkpoint` — schema-versioned sweep checkpoints
  behind ``repro sweep --resume``.

Layering: this package imports only :mod:`repro.errors`,
:mod:`repro.telemetry`, and stdlib/numpy, so every execution layer
(``core``, ``accelerator``, ``gcn``, ``experiments``) may depend on it
without cycles.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_FILENAME,
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA_VERSION,
    SweepCheckpoint,
)
from repro.resilience.faults import (
    FAULT_ACTIONS,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    active_faults,
    arm_faults,
    disarm_faults,
    fault_point,
    faults_scope,
    load_fault_plan,
)
from repro.resilience.policy import (
    ExecutionPolicy,
    RetryPolicy,
    TimeoutPolicy,
    active_policy,
    check_deadline,
    deadline_scope,
    policy_scope,
)

__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA_VERSION",
    "ExecutionPolicy",
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SweepCheckpoint",
    "TimeoutPolicy",
    "active_faults",
    "active_policy",
    "arm_faults",
    "check_deadline",
    "deadline_scope",
    "disarm_faults",
    "fault_point",
    "faults_scope",
    "load_fault_plan",
    "policy_scope",
]
