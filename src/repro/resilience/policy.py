"""Execution policies: retries, timeouts, and degradation as declared data.

The sweep runner (and, later, the ``repro serve`` daemon) should never
hand-roll a retry loop or a ``time.sleep`` backoff — the R1 lint rule bans
both outside this package.  Instead callers declare an
:class:`ExecutionPolicy`:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* seeded jitter (``np.random.default_rng([seed, attempt,
  crc32(key)])``), so two reruns of the same sweep sleep the same amounts in
  the same places.  Retryability is decided by an exception-name allowlist;
  by default everything transient retries while configuration errors (a bad
  scenario will not get better) fail fast.
* :class:`TimeoutPolicy` — a per-run wall-clock budget.  Pool workers are
  reclaimed by the parent (``AsyncResult``-based dispatch in
  :class:`~repro.experiments.runner.SweepRunner`); the serial path enforces
  the budget *cooperatively* via :func:`deadline_scope` /
  :func:`check_deadline` at pipeline stage boundaries.
* ``degrade`` — whether a failed measured-sparsity harvest may fall back to
  the synthetic provider with the run marked ``degraded`` instead of failed
  (:meth:`repro.core.session.Session.run` consults :func:`active_policy`).

Policies are frozen dataclasses that round-trip through plain dictionaries,
so they cross the worker pool boundary next to the scenario payloads.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple
from zlib import crc32

import numpy as np

from repro.errors import ConfigurationError, RunTimeoutError

#: Exception types that never retry: a configuration problem is permanent.
_NON_RETRYABLE: Tuple[type, ...] = (ConfigurationError,)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry with exponential backoff.

    Attributes:
        max_attempts: Total tries per run (1 = no retries).
        backoff_base_s: Sleep before the first retry.
        backoff_factor: Multiplier per further retry.
        max_backoff_s: Upper clamp on any single sleep.
        jitter: Fractional jitter width; a sleep is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter]`` with a seeded RNG.
        seed: Jitter seed (deterministic across reruns and workers).
        retryable: Exception *class names* that may retry; ``None`` retries
            any ``Exception`` except :class:`ConfigurationError`.  Names keep
            the policy JSON-serialisable across the pool boundary.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if self.seed < 0:
            raise ConfigurationError("seed must be >= 0")
        if self.retryable is not None:
            object.__setattr__(self, "retryable", tuple(self.retryable))

    # ------------------------------------------------------------------ #
    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether ``exc`` on try number ``attempt`` (1-based) may retry."""
        if attempt >= self.max_attempts:
            return False
        if not isinstance(exc, Exception):
            return False  # KeyboardInterrupt/SystemExit always propagate
        if self.retryable is None:
            return not isinstance(exc, _NON_RETRYABLE)
        names = {klass.__name__ for klass in type(exc).__mro__}
        return bool(names & set(self.retryable))

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Deterministic sleep before retry number ``attempt`` (1-based).

        ``key`` (typically the scenario id) decorrelates the jitter of
        different runs retrying in lockstep, without ever consulting the
        wall clock or global RNG state.
        """
        base = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        base = min(base, self.max_backoff_s)
        if self.jitter and base > 0:
            rng = np.random.default_rng(
                [self.seed, attempt, crc32(key.encode("utf-8"))]
            )
            base *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return min(base, self.max_backoff_s)

    def sleep_before(self, attempt: int, key: str = "") -> float:
        """Sleep the backoff for retry ``attempt``; returns seconds slept.

        The one blessed ``time.sleep`` of the execution stack (rule R1).
        """
        seconds = self.backoff_s(attempt, key)
        if seconds > 0:
            time.sleep(seconds)
        return seconds

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (crosses the worker pool boundary)."""
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
            "seed": self.seed,
            "retryable": None if self.retryable is None else list(self.retryable),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output (validates afresh)."""
        retryable = document.get("retryable")
        return cls(
            max_attempts=int(document.get("max_attempts", 3)),  # type: ignore[arg-type]
            backoff_base_s=float(document.get("backoff_base_s", 0.05)),  # type: ignore[arg-type]
            backoff_factor=float(document.get("backoff_factor", 2.0)),  # type: ignore[arg-type]
            max_backoff_s=float(document.get("max_backoff_s", 2.0)),  # type: ignore[arg-type]
            jitter=float(document.get("jitter", 0.1)),  # type: ignore[arg-type]
            seed=int(document.get("seed", 0)),  # type: ignore[arg-type]
            retryable=None if retryable is None else tuple(str(name) for name in retryable),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class TimeoutPolicy:
    """A per-run wall-clock budget.

    Attributes:
        run_timeout_s: Budget in seconds; ``None`` disables the budget.
        grace_s: Extra slack the *parent* grants a pool worker beyond the
            cooperative budget before reclaiming the task (the worker checks
            the deadline at stage boundaries; reclamation is the backstop
            for a truly hung stage).
    """

    run_timeout_s: Optional[float] = None
    grace_s: float = 5.0

    def __post_init__(self) -> None:
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ConfigurationError("run_timeout_s must be positive (or None)")
        if self.grace_s < 0:
            raise ConfigurationError("grace_s must be >= 0")

    @property
    def reclaim_timeout_s(self) -> Optional[float]:
        """Parent-side reclamation budget (cooperative budget + grace)."""
        if self.run_timeout_s is None:
            return None
        return self.run_timeout_s + self.grace_s

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (crosses the worker pool boundary)."""
        return {"run_timeout_s": self.run_timeout_s, "grace_s": self.grace_s}

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "TimeoutPolicy":
        """Rebuild a policy from :meth:`to_dict` output (validates afresh)."""
        timeout = document.get("run_timeout_s")
        return cls(
            run_timeout_s=None if timeout is None else float(timeout),  # type: ignore[arg-type]
            grace_s=float(document.get("grace_s", 5.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ExecutionPolicy:
    """The full failure-handling contract of one sweep (or one run).

    Attributes:
        retry: Retry behaviour; ``None`` means one attempt, fail fast.
        timeout: Wall-clock budget; ``None`` means unbounded.
        degrade: Whether a measured-sparsity harvest failure may fall back
            to the synthetic provider (run marked ``degraded``) and a broken
            cache may fall back to uncached execution.
    """

    retry: Optional[RetryPolicy] = None
    timeout: Optional[TimeoutPolicy] = None
    degrade: bool = True

    @property
    def max_attempts(self) -> int:
        """Total tries per run under this policy."""
        return self.retry.max_attempts if self.retry is not None else 1

    @property
    def run_timeout_s(self) -> Optional[float]:
        """Cooperative per-run budget, or ``None`` when unbounded."""
        return self.timeout.run_timeout_s if self.timeout is not None else None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (crosses the worker pool boundary)."""
        return {
            "retry": None if self.retry is None else self.retry.to_dict(),
            "timeout": None if self.timeout is None else self.timeout.to_dict(),
            "degrade": self.degrade,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "ExecutionPolicy":
        """Rebuild a policy from :meth:`to_dict` output (validates afresh)."""
        retry = document.get("retry")
        timeout = document.get("timeout")
        return cls(
            retry=None if retry is None else RetryPolicy.from_dict(retry),  # type: ignore[arg-type]
            timeout=None if timeout is None else TimeoutPolicy.from_dict(timeout),  # type: ignore[arg-type]
            degrade=bool(document.get("degrade", True)),
        )


# --------------------------------------------------------------------------- #
# Active-policy and cooperative-deadline context
# --------------------------------------------------------------------------- #
_ACTIVE_POLICY: ContextVar[Optional[ExecutionPolicy]] = ContextVar(
    "repro_active_policy", default=None
)

_DEADLINE: ContextVar[Optional[float]] = ContextVar("repro_deadline", default=None)


def active_policy() -> Optional[ExecutionPolicy]:
    """The :class:`ExecutionPolicy` governing the current context, if any."""
    return _ACTIVE_POLICY.get()


@contextmanager
def policy_scope(policy: Optional[ExecutionPolicy]) -> Iterator[Optional[ExecutionPolicy]]:
    """Make ``policy`` the active policy for a ``with`` block."""
    token = _ACTIVE_POLICY.set(policy)
    try:
        yield policy
    finally:
        _ACTIVE_POLICY.reset(token)


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[None]:
    """Arm a cooperative wall-clock deadline ``seconds`` from now.

    ``None`` leaves any enclosing deadline in force.  The deadline is only
    *observed* — it never feeds results — so the clock read stays
    identity-neutral (and lives in ``resilience/``, which rule N1 blesses).
    """
    if seconds is None:
        yield
        return
    token = _DEADLINE.set(time.monotonic() + seconds)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def check_deadline(stage: str) -> None:
    """Raise :class:`RunTimeoutError` if the armed deadline has passed.

    Called at pipeline stage boundaries (schedule, replay, timing, energy) —
    the cooperative half of :class:`TimeoutPolicy`; pool reclamation is the
    non-cooperative backstop.  A no-op when no deadline is armed.
    """
    deadline = _DEADLINE.get()
    if deadline is not None and time.monotonic() > deadline:
        raise RunTimeoutError(
            f"run exceeded its wall-clock budget before stage {stage!r}"
        )


__all__ = [
    "ExecutionPolicy",
    "RetryPolicy",
    "TimeoutPolicy",
    "active_policy",
    "check_deadline",
    "deadline_scope",
    "policy_scope",
]
