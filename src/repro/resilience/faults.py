"""Deterministic fault injection: break the system on purpose, repeatably.

A :class:`FaultPlan` is a seeded, contextvar-scoped description of *where*
and *when* the execution stack should misbehave.  Production code is dotted
with named :func:`fault_point` hooks (the catalogue is :data:`FAULT_SITES`);
each hook is a single contextvar load plus one branch when no plan is armed,
so the unarmed fast path costs nothing measurable.  When a plan *is* armed —
by a test, or by the ``repro sweep --inject-faults spec.json`` CLI flag —
matching sites raise :class:`~repro.errors.FaultInjectionError`, sleep,
corrupt their result, or SIGKILL the hosting process, on a deterministic
per-visit schedule.

Determinism contract: a spec triggers on exact visit numbers (``after`` /
``times``), and probabilistic specs (``probability < 1``) draw from
``np.random.default_rng([seed, crc32(site), visit])`` — the same plan against
the same execution order injects the same faults, every time, in every
worker.  Plans cross the pool boundary as plain dictionaries
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict`); each worker
process arms its own copy with fresh counters.

Design constraints mirror :mod:`repro.telemetry.spans`: identity-neutral
when unarmed (golden digests are byte-identical with the hooks compiled in),
near-zero unarmed overhead, stdlib + numpy only, importable from every layer
without cycles.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, FaultInjectionError

logger = logging.getLogger(__name__)

#: The named injection sites threaded through the execution stack.
FAULT_SITES: Tuple[str, ...] = (
    "cache:trace",
    "gcn:train",
    "stage:replay",
    "stage:schedule",
    "store:get",
    "store:put",
    "worker:execute",
)

#: What a triggering spec does to the hosting call.
FAULT_ACTIONS: Tuple[str, ...] = ("raise", "delay", "corrupt", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic misbehaviour at one site.

    Attributes:
        site: Which :func:`fault_point` this spec arms (see
            :data:`FAULT_SITES`).
        action: ``"raise"`` (raise :class:`FaultInjectionError`),
            ``"delay"`` (sleep ``delay_s`` then continue), ``"corrupt"``
            (return the spec so the call site damages its own payload), or
            ``"kill"`` (SIGKILL the hosting process — worker-death chaos).
        times: How many visits trigger; ``None`` means every eligible visit.
        after: Skip this many visits before becoming eligible (``after=1``
            with ``times=1`` means "fail exactly the second visit").
        probability: Trigger eligible visits with this probability, drawn
            from the plan-seeded RNG; ``1.0`` (the default) is unconditional.
        message: Optional text carried into the injected error.
        delay_s: Sleep duration for ``action="delay"``.
    """

    site: str
    action: str = "raise"
    times: Optional[int] = 1
    after: int = 0
    probability: float = 1.0
    message: str = ""
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(FAULT_SITES)}"
            )
        if self.action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{', '.join(FAULT_ACTIONS)}"
            )
        if self.times is not None and self.times < 1:
            raise ConfigurationError("times must be >= 1 (or None for unlimited)")
        if self.after < 0:
            raise ConfigurationError("after must be >= 0")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")
        if self.delay_s < 0:
            raise ConfigurationError("delay_s must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (crosses the worker pool boundary as JSON)."""
        return {
            "site": self.site,
            "action": self.action,
            "times": self.times,
            "after": self.after,
            "probability": self.probability,
            "message": self.message,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output (validates afresh)."""
        unknown = set(document) - {
            "site", "action", "times", "after", "probability", "message", "delay_s",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec field(s): {', '.join(sorted(unknown))}"
            )
        if "site" not in document:
            raise ConfigurationError("fault spec requires a 'site'")
        times = document.get("times", 1)
        return cls(
            site=str(document["site"]),
            action=str(document.get("action", "raise")),
            times=None if times is None else int(times),  # type: ignore[arg-type]
            after=int(document.get("after", 0)),  # type: ignore[arg-type]
            probability=float(document.get("probability", 1.0)),  # type: ignore[arg-type]
            message=str(document.get("message", "")),
            delay_s=float(document.get("delay_s", 0.0)),  # type: ignore[arg-type]
        )


class FaultPlan:
    """A seeded collection of :class:`FaultSpec` with per-site visit state.

    The plan owns two kinds of state: a visit counter per site (how many
    times execution reached each :func:`fault_point`) and a trigger counter
    per spec.  Both start at zero in every process the plan is armed in, so
    a plan shipped to a pool worker injects on that *worker's* nth visit —
    deterministic as long as the per-worker execution order is.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        if seed < 0:
            raise ConfigurationError("fault plan seed must be >= 0")
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.visits: Dict[str, int] = {}
        self.triggered: Dict[str, int] = {}
        self._by_site: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        self._fired: Dict[int, int] = {}
        for position, spec in enumerate(self.specs):
            self._by_site.setdefault(spec.site, []).append((position, spec))
            self._fired[position] = 0

    # ------------------------------------------------------------------ #
    def check(self, site: str) -> Optional[FaultSpec]:
        """Record a visit to ``site``; return the triggering spec, if any.

        Specs for a site are consulted in plan order; the first eligible one
        (past its ``after`` skip, under its ``times`` budget, passing its
        probability draw) fires and has its trigger counters bumped.
        """
        visit = self.visits.get(site, 0) + 1
        self.visits[site] = visit
        for position, spec in self._by_site.get(site, ()):
            if visit <= spec.after:
                continue
            if spec.times is not None and self._fired[position] >= spec.times:
                continue
            if spec.probability < 1.0 and not self._draw(site, visit, spec):
                continue
            self._fired[position] += 1
            self.triggered[site] = self.triggered.get(site, 0) + 1
            return spec
        return None

    def _draw(self, site: str, visit: int, spec: FaultSpec) -> bool:
        from zlib import crc32

        rng = np.random.default_rng([self.seed, crc32(site.encode("utf-8")), visit])
        return bool(rng.random() < spec.probability)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form: specs + seed, no counters (state stays local)."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "FaultPlan":
        """Rebuild a plan (fresh counters) from :meth:`to_dict` output."""
        faults = document.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ConfigurationError("'faults' must be a list of fault specs")
        specs = [FaultSpec.from_dict(item) for item in faults]
        seed = document.get("seed", 0)
        return cls(specs=specs, seed=int(seed))  # type: ignore[arg-type]


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Load a ``--inject-faults`` JSON spec file into a :class:`FaultPlan`.

    The document shape is :meth:`FaultPlan.to_dict`'s::

        {"seed": 0, "faults": [{"site": "stage:replay", "times": 1}, ...]}
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read fault spec {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(f"fault spec {path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ConfigurationError(f"fault spec {path} must be a JSON object")
    return FaultPlan.from_dict(document)


# --------------------------------------------------------------------------- #
# Arming
# --------------------------------------------------------------------------- #
_ACTIVE_FAULTS: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_active_faults", default=None
)


def active_faults() -> Optional[FaultPlan]:
    """The currently armed :class:`FaultPlan`, or ``None``."""
    return _ACTIVE_FAULTS.get()


def arm_faults(plan: Optional[FaultPlan]) -> "Token[Optional[FaultPlan]]":
    """Arm ``plan`` for the current context; returns the reset token.

    Long-lived arming (a worker process arming the plan it received over the
    wire) holds the token for the process lifetime; scoped arming should use
    :func:`faults_scope` instead.
    """
    return _ACTIVE_FAULTS.set(plan)


def disarm_faults(token: "Token[Optional[FaultPlan]]") -> None:
    """Restore the arming state captured by an :func:`arm_faults` token."""
    _ACTIVE_FAULTS.reset(token)


@contextmanager
def faults_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for the duration of a ``with`` block (tests)."""
    token = arm_faults(plan)
    try:
        yield plan
    finally:
        disarm_faults(token)


def fault_point(site: str) -> Optional[FaultSpec]:
    """Consult the armed plan at a named site; the production no-op hook.

    Unarmed (the overwhelmingly common case) this is one contextvar load and
    one branch.  Armed, a matching spec acts: ``raise`` raises
    :class:`FaultInjectionError`, ``delay`` sleeps in place, ``kill``
    SIGKILLs the hosting process (worker-death chaos), and ``corrupt`` is
    returned to the caller, which owns damaging its own payload.
    """
    plan = _ACTIVE_FAULTS.get()
    if plan is None:
        return None
    spec = plan.check(site)
    if spec is None:
        return None
    if spec.action == "raise":
        logger.warning("injected fault: raise at %s", site)
        raise FaultInjectionError(site, spec.message)
    if spec.action == "delay":
        logger.warning("injected fault: delay %.3fs at %s", spec.delay_s, site)
        time.sleep(spec.delay_s)
        return spec
    if spec.action == "kill":
        logger.warning("injected fault: SIGKILL at %s (pid %d)", site, os.getpid())
        os.kill(os.getpid(), signal.SIGKILL)
    return spec  # "corrupt": the call site applies the damage


__all__ = [
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "active_faults",
    "arm_faults",
    "disarm_faults",
    "fault_point",
    "faults_scope",
    "load_fault_plan",
]
