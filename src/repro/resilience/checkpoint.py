"""Sweep checkpointing: crash, restart, resume — only the missing work runs.

A :class:`SweepCheckpoint` is a schema-versioned JSON document the sweep
runner flushes atomically every few outcomes (and once at the end) next to
the :class:`~repro.experiments.store.ResultStore`.  It records, per scenario
id, whether the run completed (``ok`` / ``cached`` / ``degraded``) or failed
(error type + attempts + timeout flag), plus the merged telemetry deltas of
profiled sweeps.  ``repro sweep <pack> --resume`` loads the document and
skips every completed scenario whose result the store can still produce;
failures and never-started scenarios re-execute.

The checkpoint deliberately stores *accounting*, not results — results live
in the content-addressed store; the checkpoint is the sweep-shaped index
over it that survives a SIGKILL mid-flight.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping, Optional, Set, Union

from repro.telemetry.metrics import merge_counters, merge_spans

logger = logging.getLogger(__name__)

#: Bump when the checkpoint document shape changes; loaders reject other
#: versions (a stale checkpoint must not silently skip work).
CHECKPOINT_SCHEMA_VERSION = 1

CHECKPOINT_KIND = "sweep-checkpoint"

#: Default file name, placed next to the sweep's output/store root.
CHECKPOINT_FILENAME = "checkpoint.json"


class SweepCheckpoint:
    """Accumulates per-scenario outcomes and flushes them atomically."""

    def __init__(
        self,
        path: Union[str, Path],
        total: int,
        flush_interval: int = 8,
    ) -> None:
        self.path = Path(path)
        self.total = int(total)
        self.flush_interval = max(1, int(flush_interval))
        self.completed: Dict[str, Dict[str, object]] = {}
        self.failures: Dict[str, Dict[str, object]] = {}
        self.telemetry: Dict[str, Dict[str, object]] = {"spans": {}, "caches": {}}
        self._dirty = 0

    # ------------------------------------------------------------------ #
    def record_success(
        self,
        scenario_id: str,
        status: str = "ok",
        attempts: int = 1,
        telemetry: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record a completed scenario (``ok`` / ``cached`` / ``degraded``)."""
        self.completed[scenario_id] = {"status": status, "attempts": attempts}
        self.failures.pop(scenario_id, None)
        self._absorb_telemetry(telemetry)
        self._dirty += 1
        if self._dirty >= self.flush_interval:
            self.flush()

    def record_failure(
        self,
        scenario_id: str,
        error_type: str,
        error: str,
        attempts: int = 1,
        timed_out: bool = False,
        telemetry: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record a failed scenario (kept so ``--resume`` retries it)."""
        self.failures[scenario_id] = {
            "error_type": error_type,
            "error": error,
            "attempts": attempts,
            "timed_out": timed_out,
        }
        self.completed.pop(scenario_id, None)
        self._absorb_telemetry(telemetry)
        self._dirty += 1
        if self._dirty >= self.flush_interval:
            self.flush()

    def _absorb_telemetry(self, telemetry: Optional[Mapping[str, object]]) -> None:
        if not telemetry:
            return
        spans = telemetry.get("spans")
        if isinstance(spans, dict):
            merge_spans(self.telemetry["spans"], spans)
        caches = telemetry.get("caches")
        if isinstance(caches, dict):
            merge_counters(self.telemetry["caches"], caches)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """The schema-versioned checkpoint document."""
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "kind": CHECKPOINT_KIND,
            "total": self.total,
            "completed": dict(sorted(self.completed.items())),
            "failures": dict(sorted(self.failures.items())),
            "telemetry": self.telemetry,
        }

    def flush(self) -> Path:
        """Atomically write the checkpoint document; returns its path."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.path, self.to_dict())
        self._dirty = 0
        return self.path

    # ------------------------------------------------------------------ #
    @staticmethod
    def load(path: Union[str, Path]) -> Optional[Dict[str, object]]:
        """Load a checkpoint document, or ``None`` if absent/unusable.

        A corrupt or wrong-schema checkpoint logs a warning and is treated
        as absent — resuming then simply re-runs everything, which is always
        safe (the result store still deduplicates the actual work).
        """
        path = Path(path)
        if not path.is_file():
            return None
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            logger.warning("ignoring unreadable checkpoint %s (%s)", path, exc)
            return None
        if (
            not isinstance(document, dict)
            or document.get("schema") != CHECKPOINT_SCHEMA_VERSION
            or document.get("kind") != CHECKPOINT_KIND
        ):
            logger.warning(
                "ignoring checkpoint %s with unexpected schema/kind", path
            )
            return None
        return document

    @staticmethod
    def completed_ids(document: Optional[Mapping[str, object]]) -> Set[str]:
        """Scenario ids a loaded checkpoint marks completed."""
        if not document:
            return set()
        completed = document.get("completed")
        if not isinstance(completed, dict):
            return set()
        return set(completed)


def _atomic_write_json(path: Path, payload: object) -> None:
    """Temp-file + ``os.replace`` write; a crash never truncates the target.

    Duplicated from :mod:`repro.experiments.store` rather than imported:
    ``resilience`` sits below ``experiments`` in the layering and must not
    import upward.
    """
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=str(path.parent),
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, path)
    except (KeyboardInterrupt, SystemExit):
        _unlink_quietly(handle.name)
        raise
    except BaseException:
        _unlink_quietly(handle.name)
        raise


def _unlink_quietly(name: str) -> None:
    try:
        os.unlink(name)
    except OSError:
        pass


__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA_VERSION",
    "SweepCheckpoint",
]
