"""Exception hierarchy for the SGCN reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a hardware or experiment configuration is invalid.

    Examples include a cache whose capacity is not a multiple of the line
    size, a systolic array with non-positive dimensions, or an accelerator
    name that is not registered.
    """


class GraphError(ReproError):
    """Raised when a graph structure is malformed or inconsistent.

    Examples include a CSR index pointer that is not monotonically
    non-decreasing, or edge indices that fall outside the vertex range.
    """


class FormatError(ReproError):
    """Raised when a sparse feature format cannot encode or decode data.

    Examples include decoding a buffer whose bitmap population count does not
    match the number of stored non-zero values.
    """


class SimulationError(ReproError):
    """Raised when the performance model is asked to simulate an impossible
    scenario, such as a layer whose feature width is zero or a tile schedule
    that does not cover every edge exactly once.
    """


class DatasetError(ReproError):
    """Raised when a named dataset is unknown or its generation parameters
    are inconsistent (e.g. more edges requested than a simple graph allows).
    """


class AnalysisError(ReproError):
    """Raised when the static-analysis gate (:mod:`repro.analysis`) cannot
    run as requested: an unknown rule id, a lint target that does not exist,
    or an unreadable source file.  Findings are *not* errors — they are
    reported through :class:`repro.analysis.engine.Finding` records.
    """


class SparsityHarvestError(ReproError):
    """Raised when the measured-sparsity provider cannot harvest tables for
    a dataset (GCN training divergence, a corrupted measurement cache, or an
    injected fault).  :meth:`repro.core.session.Session.run` downgrades this
    to a synthetic-sparsity fallback when a degradation-permitting
    :class:`repro.resilience.policy.ExecutionPolicy` is active.
    """


class FaultInjectionError(ReproError):
    """Raised by an armed :class:`repro.resilience.faults.FaultPlan` at a
    matching :func:`~repro.resilience.faults.fault_point`.  Never raised in
    production paths — a plan only triggers when a test or the
    ``--inject-faults`` CLI flag armed one.
    """

    def __init__(self, site: str, message: str = "") -> None:
        self.site = site
        super().__init__(message or f"injected fault at {site}")


class RunTimeoutError(ReproError):
    """Raised when a run exceeds the wall-clock budget of an active
    :class:`repro.resilience.policy.TimeoutPolicy` — cooperatively at a
    pipeline stage boundary on the serial path, or via pool-result
    reclamation on the worker path.
    """
