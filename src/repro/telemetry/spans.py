"""Hierarchical span recorder: where does the wall-clock of a run go?

A *span* is a named, timed region of code.  Spans nest: entering a span while
another is active records the inner one as a child of the outer, so the
recorder accumulates a tree mirroring the call structure — the five pipeline
stages at the top, trace generation / engine construction / memo evaluation /
DeepGCN training underneath.  Spans are **aggregated** as they close (total
seconds + invocation count per tree node), not collected as an event log, so
profiling a million-run sweep costs a dictionary of a few dozen nodes rather
than a trace file.

Design constraints, in order:

1. **Identity neutrality.**  Recording only ever *observes* — no span
   influences seeds, cache decisions, or arithmetic, so results are
   byte-identical with telemetry on or off (pinned by the golden digest
   invariance test).
2. **~0 overhead when disabled.**  Telemetry is off by default; a disabled
   ``span()`` call is one attribute load, one branch, and a shared no-op
   context manager — no allocation, no clock read.  Hot loops stay
   uninstrumented regardless; spans mark phase-level regions only.
3. **Zero dependencies.**  Pure stdlib (``contextvars`` + ``perf_counter``),
   importable from every layer without cycles.

The module-level functions operate on one process-global
:class:`SpanRecorder`.  Worker processes of a sweep each own their global
recorder; their snapshots are merged by
:func:`repro.telemetry.metrics.merge_spans`.

Example::

    from repro import telemetry

    telemetry.set_enabled(True)
    with telemetry.span("replay"):
        with telemetry.span("engine_build"):
            ...
    telemetry.span_snapshot()
    # {"replay": {"total_s": ..., "count": 1,
    #             "children": {"engine_build": {...}}}}
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter
from typing import Dict, Optional, Union


class SpanNode:
    """One node of the aggregated span tree."""

    __slots__ = ("name", "total_s", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.count = 0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """Get-or-create the child node ``name``."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; the ``children`` key is omitted when empty."""
        doc: Dict[str, object] = {"total_s": self.total_s, "count": self.count}
        if self.children:
            doc["children"] = {
                name: child.to_dict() for name, child in self.children.items()
            }
        return doc


class _NullSpan:
    """Shared no-op context manager returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that times one region into the recorder's tree."""

    __slots__ = ("_recorder", "_name", "_node", "_token", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> None:
        recorder = self._recorder
        parent = recorder._current.get()
        if parent is None:
            parent = recorder.root
        self._node = parent.child(self._name)
        self._token = recorder._current.set(self._node)
        self._start = perf_counter()
        return None

    def __exit__(self, *exc: object) -> bool:
        elapsed = perf_counter() - self._start
        node = self._node
        node.total_s += elapsed
        node.count += 1
        self._recorder._current.reset(self._token)
        return False


class SpanRecorder:
    """Accumulates a tree of named, timed regions.

    One process-global instance backs the module-level helpers; independent
    recorders can be constructed for tests.  Nesting is tracked through a
    :class:`~contextvars.ContextVar`, so concurrent asyncio tasks (a future
    ``repro serve``) each see their own active-span chain while sharing one
    aggregate tree.
    """

    def __init__(self) -> None:
        self.root = SpanNode("root")
        self.enabled = False
        self._current: ContextVar[Optional[SpanNode]] = ContextVar(
            "repro_current_span", default=None
        )

    def span(self, name: str) -> Union["_NullSpan", "_ActiveSpan"]:
        """Context manager timing ``name``; a shared no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name)

    def set_enabled(self, enabled: bool) -> bool:
        """Switch recording on/off; returns the previous state."""
        previous = self.enabled
        self.enabled = bool(enabled)
        return previous

    def reset(self) -> None:
        """Drop every recorded span (the enabled flag is untouched)."""
        self.root = SpanNode("root")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The recorded span tree as plain nested dictionaries."""
        return {name: node.to_dict() for name, node in self.root.children.items()}


#: The process-global recorder behind the module-level helpers.
_RECORDER = SpanRecorder()


def recorder() -> SpanRecorder:
    """The process-global :class:`SpanRecorder`."""
    return _RECORDER


def span(name: str) -> Union["_NullSpan", "_ActiveSpan"]:
    """Time a region into the global recorder (no-op while disabled)::

        with telemetry.span("schedule"):
            ...
    """
    return _RECORDER.span(name)


def set_enabled(enabled: bool) -> bool:
    """Enable/disable global span recording; returns the previous state."""
    return _RECORDER.set_enabled(enabled)


def is_enabled() -> bool:
    """Whether global span recording is currently on."""
    return _RECORDER.enabled


def reset_spans() -> None:
    """Drop every span recorded so far in this process."""
    _RECORDER.reset()


def span_snapshot() -> Dict[str, Dict[str, object]]:
    """The global recorder's span tree as nested dictionaries."""
    return _RECORDER.snapshot()


__all__ = [
    "SpanNode",
    "SpanRecorder",
    "is_enabled",
    "recorder",
    "reset_spans",
    "set_enabled",
    "span",
    "span_snapshot",
]
