"""Metrics documents: the stable JSON schema over spans and cache counters.

Everything observable funnels into one shape, the **metrics document**
(``schema_version`` 1):

* ``Session.metrics_snapshot()`` produces the per-process building block —
  the span tree plus every cache's counters;
* sweep workers ship per-run snapshot *deltas* back through the worker dict
  protocol, and :meth:`~repro.experiments.runner.SweepReport.metrics_document`
  merges them into a per-pack aggregate;
* ``repro run --profile`` / ``repro sweep --profile`` write the document as a
  ``metrics.json`` artifact next to the result store, and ``repro stats``
  pretty-prints it (:func:`render_metrics`).

The helpers here are deliberately dumb, order-preserving dictionary algebra:
:func:`merge_spans` sums two span trees, :func:`merge_counters` /
:func:`diff_counters` sum/subtract numeric leaves, :func:`hit_ratio` folds a
counter block into one number.  Counter semantics under merge/diff: monotonic
event counts (``hits``/``misses``/``evictions``) merge exactly; gauge-style
keys (``entries``, ``bytes``) become *net changes* in a delta, which is what
a per-run attribution wants.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

#: Schema version of every metrics document (``metrics.json``, worker
#: telemetry payloads, ``Session.metrics_snapshot()``).
METRICS_SCHEMA_VERSION = 1

#: ``kind`` values of a top-level metrics document.
METRICS_KINDS = ("snapshot", "run-profile", "sweep-profile")


# --------------------------------------------------------------------------- #
# Dictionary algebra
# --------------------------------------------------------------------------- #
def merge_spans(
    base: Dict[str, Dict[str, Any]], extra: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Merge span tree ``extra`` into ``base`` (summing times/counts) and
    return ``base``.  Both trees use the :meth:`SpanNode.to_dict` shape."""
    for name, node in extra.items():
        target = base.get(name)
        if target is None:
            target = {"total_s": 0.0, "count": 0}
            base[name] = target
        target["total_s"] = float(target.get("total_s", 0.0)) + float(
            node.get("total_s", 0.0)
        )
        target["count"] = int(target.get("count", 0)) + int(node.get("count", 0))
        children = node.get("children")
        if children:
            merged = target.setdefault("children", {})
            merge_spans(merged, children)
    return base


def merge_counters(
    base: Dict[str, Any], extra: Mapping[str, Any]
) -> Dict[str, Any]:
    """Recursively sum numeric leaves of ``extra`` into ``base``; returns ``base``."""
    for key, value in extra.items():
        if isinstance(value, Mapping):
            target = base.setdefault(key, {})
            if isinstance(target, dict):
                merge_counters(target, value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            base.setdefault(key, value)
        else:
            base[key] = type(value)(base.get(key, 0) + value)
    return base


def diff_counters(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> Dict[str, Any]:
    """Numeric leaf-wise ``after - before`` (recursive; keys from ``after``)."""
    delta: Dict[str, Any] = {}
    for key, value in after.items():
        if isinstance(value, Mapping):
            delta[key] = diff_counters(
                before.get(key, {}) if isinstance(before.get(key), Mapping) else {},
                value,
            )
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            delta[key] = value
        else:
            previous = before.get(key, 0)
            if isinstance(previous, bool) or not isinstance(previous, (int, float)):
                previous = 0
            delta[key] = type(value)(value - previous)
    return delta


def hit_ratio(counters: Mapping[str, Any]) -> Optional[float]:
    """``hits / (hits + misses)`` of one counter block; ``None`` if untouched."""
    hits = counters.get("hits", 0)
    misses = counters.get("misses", 0)
    if not isinstance(hits, (int, float)) or not isinstance(misses, (int, float)):
        return None
    total = hits + misses
    if total <= 0:
        return None
    return float(hits) / float(total)


def cache_hit_ratios(
    caches: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Optional[float]]:
    """Per-cache hit ratios of a ``caches`` counter block."""
    return {name: hit_ratio(block) for name, block in caches.items()}


# --------------------------------------------------------------------------- #
# Documents
# --------------------------------------------------------------------------- #
def run_metrics_document(
    snapshot: Mapping[str, Any], scenario_id: Optional[str] = None
) -> Dict[str, Any]:
    """``metrics.json`` document of one profiled ``repro run``."""
    document: Dict[str, Any] = {
        "schema_version": METRICS_SCHEMA_VERSION,
        "kind": "run-profile",
        "spans": snapshot.get("spans", {}),
        "caches": snapshot.get("caches", {}),
        "cache_hit_ratios": cache_hit_ratios(snapshot.get("caches", {})),
    }
    if scenario_id is not None:
        document["scenario_id"] = scenario_id
    return document


def sweep_metrics_document(sweeps: List[Dict[str, Any]]) -> Dict[str, Any]:
    """``metrics.json`` document of one profiled ``repro sweep`` invocation.

    ``sweeps`` holds one per-pack aggregate each, as produced by
    :meth:`~repro.experiments.runner.SweepReport.metrics_document`.
    """
    return {
        "schema_version": METRICS_SCHEMA_VERSION,
        "kind": "sweep-profile",
        "sweeps": list(sweeps),
    }


def write_metrics_json(path: Union[str, Path], document: Mapping[str, Any]) -> None:
    """Write a metrics document (stable key order for golden diffs)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


# --------------------------------------------------------------------------- #
# Rendering (the ``repro stats`` view)
# --------------------------------------------------------------------------- #
def _render_span_tree(
    spans: Mapping[str, Mapping[str, Any]],
    lines: List[str],
    indent: int,
    total_s: float,
) -> None:
    width = max((len(name) for name in spans), default=0) + 2
    for name, node in spans.items():
        seconds = float(node.get("total_s", 0.0))
        count = int(node.get("count", 0))
        share = f"{100.0 * seconds / total_s:5.1f}%" if total_s > 0 else "    -"
        lines.append(
            f"{'  ' * indent}{name:<{width}}{seconds:>9.3f}s  {share}  x{count}"
        )
        children = node.get("children")
        if children:
            _render_span_tree(children, lines, indent + 1, total_s)


def _render_counters(
    caches: Mapping[str, Mapping[str, Any]], lines: List[str], indent: int
) -> None:
    for name, block in sorted(caches.items()):
        ratio = hit_ratio(block)
        ratio_text = f"{100.0 * ratio:5.1f}% hit" if ratio is not None else "  (unused)"
        detail = ", ".join(
            f"{key}={block[key]}"
            for key in ("hits", "misses", "evictions", "entries", "bytes")
            if key in block
        )
        lines.append(f"{'  ' * indent}{name:<14}{ratio_text}  [{detail}]")


def _top_level_seconds(spans: Mapping[str, Mapping[str, Any]]) -> float:
    return sum(float(node.get("total_s", 0.0)) for node in spans.values())


def _render_one_profile(entry: Mapping[str, Any], lines: List[str]) -> None:
    spans = entry.get("spans") or entry.get("phases") or {}
    caches = entry.get("caches", {})
    if "total_runs" in entry:
        lines.append(
            f"  runs: {entry.get('total_runs', 0)} total, "
            f"{entry.get('simulated', 0)} simulated, "
            f"{entry.get('cached', 0)} cached, {entry.get('failed', 0)} failed"
        )
    if "elapsed_seconds" in entry:
        throughput = entry.get("runs_per_second")
        throughput_text = (
            f", {throughput:.2f} runs/s" if isinstance(throughput, (int, float)) else ""
        )
        lines.append(
            f"  wall-clock: {float(entry['elapsed_seconds']):.2f}s{throughput_text}"
        )
    if spans:
        lines.append("  phases (wall seconds, share of profiled time, calls):")
        _render_span_tree(spans, lines, 2, _top_level_seconds(spans))
    if caches:
        lines.append("  caches:")
        _render_counters(caches, lines, 2)


def render_metrics(document: Mapping[str, Any]) -> str:
    """Human-readable rendering of any schema-v1 metrics document."""
    kind = document.get("kind", "snapshot")
    lines = [f"metrics schema v{document.get('schema_version', '?')} ({kind})"]
    if kind == "sweep-profile":
        for entry in document.get("sweeps", []):
            lines.append("")
            lines.append(f"sweep {entry.get('pack', '?')}:")
            _render_one_profile(entry, lines)
    else:
        if "scenario_id" in document:
            lines.append(f"scenario: {document['scenario_id']}")
        _render_one_profile(document, lines)
    return "\n".join(lines)


__all__ = [
    "METRICS_KINDS",
    "METRICS_SCHEMA_VERSION",
    "cache_hit_ratios",
    "diff_counters",
    "hit_ratio",
    "merge_counters",
    "merge_spans",
    "render_metrics",
    "run_metrics_document",
    "sweep_metrics_document",
    "write_metrics_json",
]
