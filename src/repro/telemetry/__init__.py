"""Observability for the simulation stack: spans, counters, metrics, logs.

The telemetry plane answers, for any run or sweep, *where the time went and
whether the caches earned their keep* — without ever influencing the results
(instrumentation is identity-neutral; the golden digest tests pin this).

Three pieces:

* :mod:`repro.telemetry.spans` — a zero-dependency hierarchical span
  recorder (off by default, ~0 overhead when disabled) that the phase
  pipeline, the replay engine, the measured-sparsity harvest, and the result
  store time themselves through;
* :mod:`repro.telemetry.metrics` — the stable schema-v1 metrics documents:
  ``Session.metrics_snapshot()`` blocks, worker telemetry payloads,
  ``metrics.json`` artifacts, and the ``repro stats`` renderer;
* :mod:`repro.telemetry.logs` — configuration of the ``repro.*`` structured
  logger tree (``--log-level`` / ``REPRO_LOG_LEVEL``).

Quickstart::

    from repro import RunSpec, Session, telemetry

    telemetry.set_enabled(True)
    session = Session()
    session.run(RunSpec(dataset="cora", accelerator="sgcn"))
    print(telemetry.metrics.render_metrics(
        telemetry.metrics.run_metrics_document(session.metrics_snapshot())
    ))
"""

from repro.telemetry import logs, metrics
from repro.telemetry.logs import configure_logging, resolve_log_level
from repro.telemetry.metrics import (
    METRICS_SCHEMA_VERSION,
    cache_hit_ratios,
    diff_counters,
    hit_ratio,
    merge_counters,
    merge_spans,
    render_metrics,
    run_metrics_document,
    sweep_metrics_document,
    write_metrics_json,
)
from repro.telemetry.spans import (
    SpanNode,
    SpanRecorder,
    is_enabled,
    recorder,
    reset_spans,
    set_enabled,
    span,
    span_snapshot,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "SpanNode",
    "SpanRecorder",
    "cache_hit_ratios",
    "configure_logging",
    "diff_counters",
    "hit_ratio",
    "is_enabled",
    "logs",
    "merge_counters",
    "merge_spans",
    "metrics",
    "recorder",
    "render_metrics",
    "reset_spans",
    "resolve_log_level",
    "run_metrics_document",
    "set_enabled",
    "span",
    "span_snapshot",
    "sweep_metrics_document",
    "write_metrics_json",
]
