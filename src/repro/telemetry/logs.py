"""Structured logging setup for the ``repro.*`` logger hierarchy.

Every module in the package logs through ``logging.getLogger(__name__)``,
which puts the whole tree under the ``repro`` root logger.  This module is
the one place that configures it: the CLI calls :func:`configure_logging`
once at startup, resolving the level from (in priority order) an explicit
``--log-level`` argument, the ``REPRO_LOG_LEVEL`` environment variable, and
the default (``INFO``, preserving the historical CLI behaviour).

Library consumers that embed :mod:`repro` keep full control: nothing here
runs at import time, and :func:`configure_logging` only touches the
``repro`` logger, never the root logger of the host application.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable consulted when no explicit level is given.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Accepted ``--log-level`` / ``REPRO_LOG_LEVEL`` spellings.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Level used when neither the flag nor the environment specifies one.
DEFAULT_LOG_LEVEL = "info"


def resolve_log_level(explicit: Optional[str] = None) -> int:
    """Numeric logging level from flag > environment > default.

    Unknown spellings raise ``ValueError`` (for the flag) or fall back to the
    default with a warning on stderr (for the environment variable, which
    must never make the CLI unusable).
    """
    if explicit is not None:
        name = explicit.strip().lower()
        if name not in LOG_LEVELS:
            raise ValueError(
                f"unknown log level {explicit!r}; choose from {', '.join(LOG_LEVELS)}"
            )
        return getattr(logging, name.upper())
    from_env = os.environ.get(LOG_LEVEL_ENV)
    if from_env:
        name = from_env.strip().lower()
        if name in LOG_LEVELS:
            return getattr(logging, name.upper())
        print(
            f"warning: ignoring {LOG_LEVEL_ENV}={from_env!r} "
            f"(choose from {', '.join(LOG_LEVELS)})",
            file=sys.stderr,
        )
    return getattr(logging, DEFAULT_LOG_LEVEL.upper())


def configure_logging(level: Optional[str] = None) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Idempotent: repeated calls replace the handler/level instead of stacking
    handlers (important for in-process CLI invocations, e.g. the test suite).
    Log lines go to stderr so stdout stays machine-readable.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(resolve_log_level(level))
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


__all__ = [
    "DEFAULT_LOG_LEVEL",
    "LOG_LEVELS",
    "LOG_LEVEL_ENV",
    "configure_logging",
    "resolve_log_level",
]
