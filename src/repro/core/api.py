"""High-level simulation API (classic function shims).

These helpers remain the quickest way to run one simulation, but they are now
thin shims over the canonical run-description API: each call builds a
:class:`~repro.core.runspec.RunSpec` and delegates to a shared default
:class:`~repro.core.session.Session`.  New code — and anything that runs
*batches* of simulations — should use ``RunSpec``/``Session`` directly::

    from repro import RunSpec, Session

    session = Session()
    result = session.run(RunSpec(dataset="pubmed", accelerator="sgcn",
                                 max_vertices=1024))
    comparison = session.compare(
        [RunSpec(dataset="pubmed", accelerator=name, max_vertices=1024)
         for name in ("gcnax", "hygcn", "sgcn")],
        baseline="gcnax",
    )

The shims:

* :func:`simulate` — run one accelerator on one dataset;
* :func:`compare_accelerators` — run several accelerators on the same dataset
  and collect normalised speedups / traffic / energy;
* :func:`available_accelerators` — list the modelled designs.

Example::

    from repro import load_dataset, simulate, compare_accelerators

    dataset = load_dataset("pubmed", max_vertices=1024)
    sgcn = simulate(dataset, "sgcn")
    comparison = compare_accelerators(dataset, ["gcnax", "hygcn", "sgcn"])
    print(comparison.speedups("gcnax"))
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.accelerator.registry import (
    ACCELERATORS,
    PAPER_COMPARISON,
    available_accelerators as _available_accelerators,
)
from repro.accelerator.simulator import GCN_VARIANTS, AcceleratorModel
from repro.core.config import SystemConfig
from repro.core.results import ComparisonResult, SimulationResult
from repro.core.runspec import DEFAULT_MAX_VERTICES, RunSpec
from repro.core.session import Session, default_session
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.datasets import Dataset


def available_accelerators() -> List[str]:
    """Names of every modelled accelerator."""
    return _available_accelerators()


def _validate_variant(variant: str) -> str:
    """Check ``variant`` at the API boundary so bad input fails fast.

    Returns:
        The normalised (lower-case) variant name.

    Raises:
        ConfigurationError: If ``variant`` is not one of the supported
            aggregation variants.
    """
    key = variant.lower() if isinstance(variant, str) else variant
    if key not in GCN_VARIANTS:
        raise ConfigurationError(
            f"unknown GCN variant {variant!r}; supported variants: "
            f"{', '.join(GCN_VARIANTS)}"
        )
    return key


def _resolve_dataset(
    session: Session, dataset: Union[Dataset, str], max_vertices: Optional[int]
) -> Dataset:
    """Resolve a dataset argument, rejecting a cap that cannot apply.

    A :class:`Dataset` instance is already scaled, so an *explicit*
    ``max_vertices`` alongside one is a contradiction — it used to be silently
    dropped; now it raises so the caller notices the cap never applied.
    """
    if isinstance(dataset, Dataset):
        if max_vertices is not None:
            raise ConfigurationError(
                f"max_vertices={max_vertices} conflicts with an explicit "
                f"Dataset instance ({dataset.name!r} is already loaded with "
                f"{dataset.num_vertices} vertices); pass the cap to "
                "load_dataset() instead, or drop it"
            )
        return dataset
    return session.load_dataset(
        dataset,
        max_vertices=DEFAULT_MAX_VERTICES if max_vertices is None else max_vertices,
    )


def _resolve_accelerator(
    session: Session, accelerator: Union[AcceleratorModel, str]
) -> AcceleratorModel:
    if isinstance(accelerator, AcceleratorModel):
        return accelerator
    return session.accelerator(accelerator)


def _shim_spec(
    dataset: Dataset,
    accelerator: AcceleratorModel,
    variant: str,
    max_sampled_layers: int,
    seed: int,
) -> RunSpec:
    return RunSpec(
        dataset=dataset.name,
        accelerator=accelerator.name,
        variant=variant,
        seed=seed,
        max_vertices=dataset.num_vertices,
        max_sampled_layers=max_sampled_layers,
        num_layers=dataset.num_layers,
    )


def simulate(
    dataset: Union[Dataset, str],
    accelerator: Union[AcceleratorModel, str] = "sgcn",
    config: Optional[SystemConfig] = None,
    variant: str = "gcn",
    max_vertices: Optional[int] = None,
    max_sampled_layers: int = 6,
    seed: int = 0,
) -> SimulationResult:
    """Simulate one accelerator running a deep GCN on one dataset.

    A shim over :meth:`repro.core.session.Session.run`; with a pre-loaded
    :class:`Dataset` the result is byte-identical to running the equivalent
    :class:`~repro.core.runspec.RunSpec` through a session.  One historical
    quirk is preserved when the dataset is given by *name*: ``seed`` here
    seeds only the per-row sparsity draws (the topology is generated with
    seed 0, as this function always did), whereas a ``RunSpec``'s seed drives
    both.  Load the dataset yourself — or use ``RunSpec`` — when you want the
    seed to vary the topology too.

    Args:
        dataset: A :class:`~repro.graphs.datasets.Dataset` or a dataset name.
        accelerator: An accelerator model instance or registry name.
        config: System configuration (paper Table III defaults when omitted).
        variant: Aggregation variant (``"gcn"``, ``"gin"``, ``"sage"``).
        max_vertices: Scale cap applied when ``dataset`` is given by name
            (default 2048).  Passing it together with a ``Dataset`` instance
            raises :class:`ConfigurationError` — the instance is already
            scaled, so the cap could never apply.
        max_sampled_layers: Representative-layer sampling budget.
        seed: Seed for the synthetic per-row sparsity draws.

    Returns:
        The :class:`~repro.core.results.SimulationResult` of the run.
    """
    session = default_session()
    variant = _validate_variant(variant)
    dataset_obj = _resolve_dataset(session, dataset, max_vertices)
    model = _resolve_accelerator(session, accelerator)
    spec = _shim_spec(dataset_obj, model, variant, max_sampled_layers, seed)
    return session.run(spec, dataset=dataset_obj, accelerator=model, config=config)


def compare_accelerators(
    dataset: Union[Dataset, str],
    accelerators: Optional[Sequence[Union[AcceleratorModel, str]]] = None,
    config: Optional[SystemConfig] = None,
    variant: str = "gcn",
    baseline: str = "gcnax",
    max_vertices: Optional[int] = None,
    max_sampled_layers: int = 6,
    seed: int = 0,
) -> ComparisonResult:
    """Simulate several accelerators on the same dataset and configuration.

    A shim over :meth:`repro.core.session.Session.run`.  Every accelerator
    reference — including the ``baseline`` — is resolved *before* the first
    simulation, so a typo fails in milliseconds instead of after the whole
    comparison has run.

    Args:
        dataset: Dataset instance or name.
        accelerators: Accelerators to compare; defaults to the paper's main
            comparison set (GCNAX, HyGCN, AWB-GCN, EnGN, I-GCN, SGCN).
        config: Shared system configuration.
        variant: Aggregation variant.
        baseline: Name used as the normalisation baseline.
        max_vertices: Scale cap applied when ``dataset`` is given by name
            (default 2048); conflicts with a ``Dataset`` instance, as in
            :func:`simulate`.
        max_sampled_layers: Representative-layer sampling budget.
        seed: Seed for the synthetic per-row sparsity draws.

    Returns:
        A :class:`~repro.core.results.ComparisonResult`.
    """
    session = default_session()
    variant = _validate_variant(variant)
    dataset_obj = _resolve_dataset(session, dataset, max_vertices)
    if accelerators is None:
        names: Iterable[Union[AcceleratorModel, str]] = PAPER_COMPARISON
    else:
        names = list(accelerators)
        if not names:
            raise SimulationError(
                "compare_accelerators() was given an empty accelerator "
                "selection; pass None to compare the paper's main set "
                f"({', '.join(PAPER_COMPARISON)}) or list at least one name"
            )
    # Resolve every entry up front: unknown names fail here, and the baseline
    # is checked against the resolved set before any simulation runs.  An
    # exact match against the models' names (which pre-resolved custom
    # instances may spell any way they like) wins; otherwise the baseline is
    # canonicalised so alias spellings like "awb-gcn" work too.
    models = [_resolve_accelerator(session, entry) for entry in names]
    model_names = {model.name for model in models}
    baseline_key = (
        baseline if baseline in model_names else ACCELERATORS.canonical(baseline)
    )
    if baseline_key not in model_names:
        raise SimulationError(
            f"baseline {baseline!r} was not among the simulated accelerators"
        )
    comparison = ComparisonResult(dataset=dataset_obj.name, baseline=baseline_key)
    for model in models:
        spec = _shim_spec(dataset_obj, model, variant, max_sampled_layers, seed)
        comparison.add(
            session.run(spec, dataset=dataset_obj, accelerator=model, config=config)
        )
    return comparison
