"""High-level simulation API.

Most users interact with the library through three functions:

* :func:`simulate` — run one accelerator on one dataset;
* :func:`compare_accelerators` — run several accelerators on the same dataset
  and collect normalised speedups / traffic / energy;
* :func:`available_accelerators` — list the modelled designs.

Example::

    from repro import load_dataset, simulate, compare_accelerators

    dataset = load_dataset("pubmed", max_vertices=1024)
    sgcn = simulate(dataset, "sgcn")
    comparison = compare_accelerators(dataset, ["gcnax", "hygcn", "sgcn"])
    print(comparison.speedups("gcnax"))
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.accelerator.registry import (
    PAPER_COMPARISON,
    available_accelerators as _available_accelerators,
    get_accelerator,
)
from repro.accelerator.simulator import GCN_VARIANTS, AcceleratorModel
from repro.core.config import SystemConfig
from repro.core.results import ComparisonResult, SimulationResult
from repro.errors import ConfigurationError, SimulationError
from repro.graphs.datasets import Dataset, load_dataset


def available_accelerators() -> List[str]:
    """Names of every modelled accelerator."""
    return _available_accelerators()


def _resolve_dataset(dataset: Union[Dataset, str], max_vertices: int) -> Dataset:
    if isinstance(dataset, Dataset):
        return dataset
    return load_dataset(dataset, max_vertices=max_vertices)


def _resolve_accelerator(accelerator: Union[AcceleratorModel, str]) -> AcceleratorModel:
    if isinstance(accelerator, AcceleratorModel):
        return accelerator
    return get_accelerator(accelerator)


def _validate_variant(variant: str) -> str:
    """Check ``variant`` at the API boundary so bad input fails fast.

    Returns:
        The normalised (lower-case) variant name.

    Raises:
        ConfigurationError: If ``variant`` is not one of the supported
            aggregation variants.
    """
    key = variant.lower() if isinstance(variant, str) else variant
    if key not in GCN_VARIANTS:
        raise ConfigurationError(
            f"unknown GCN variant {variant!r}; supported variants: "
            f"{', '.join(GCN_VARIANTS)}"
        )
    return key


def simulate(
    dataset: Union[Dataset, str],
    accelerator: Union[AcceleratorModel, str] = "sgcn",
    config: Optional[SystemConfig] = None,
    variant: str = "gcn",
    max_vertices: int = 2048,
    max_sampled_layers: int = 6,
    seed: int = 0,
) -> SimulationResult:
    """Simulate one accelerator running a deep GCN on one dataset.

    Args:
        dataset: A :class:`~repro.graphs.datasets.Dataset` or a dataset name.
        accelerator: An accelerator model instance or registry name.
        config: System configuration (paper Table III defaults when omitted).
        variant: Aggregation variant (``"gcn"``, ``"gin"``, ``"sage"``).
        max_vertices: Scale cap applied when ``dataset`` is given by name.
        max_sampled_layers: Representative-layer sampling budget.
        seed: Seed for the synthetic per-row sparsity draws.

    Returns:
        The :class:`~repro.core.results.SimulationResult` of the run.
    """
    variant = _validate_variant(variant)
    dataset_obj = _resolve_dataset(dataset, max_vertices)
    model = _resolve_accelerator(accelerator)
    return model.simulate(
        dataset_obj,
        config=config,
        variant=variant,
        max_sampled_layers=max_sampled_layers,
        seed=seed,
    )


def compare_accelerators(
    dataset: Union[Dataset, str],
    accelerators: Optional[Sequence[Union[AcceleratorModel, str]]] = None,
    config: Optional[SystemConfig] = None,
    variant: str = "gcn",
    baseline: str = "gcnax",
    max_vertices: int = 2048,
    max_sampled_layers: int = 6,
    seed: int = 0,
) -> ComparisonResult:
    """Simulate several accelerators on the same dataset and configuration.

    Args:
        dataset: Dataset instance or name.
        accelerators: Accelerators to compare; defaults to the paper's main
            comparison set (GCNAX, HyGCN, AWB-GCN, EnGN, I-GCN, SGCN).
        config: Shared system configuration.
        variant: Aggregation variant.
        baseline: Name used as the normalisation baseline.
        max_vertices: Scale cap applied when ``dataset`` is given by name.
        max_sampled_layers: Representative-layer sampling budget.
        seed: Seed for the synthetic per-row sparsity draws.

    Returns:
        A :class:`~repro.core.results.ComparisonResult`.
    """
    variant = _validate_variant(variant)
    dataset_obj = _resolve_dataset(dataset, max_vertices)
    if accelerators is None:
        names: Iterable[Union[AcceleratorModel, str]] = PAPER_COMPARISON
    else:
        names = list(accelerators)
        if not names:
            raise SimulationError(
                "compare_accelerators() was given an empty accelerator "
                "selection; pass None to compare the paper's main set "
                f"({', '.join(PAPER_COMPARISON)}) or list at least one name"
            )
    comparison = ComparisonResult(dataset=dataset_obj.name, baseline=baseline)
    for entry in names:
        model = _resolve_accelerator(entry)
        comparison.add(
            model.simulate(
                dataset_obj,
                config=config,
                variant=variant,
                max_sampled_layers=max_sampled_layers,
                seed=seed,
            )
        )
    if baseline not in comparison.results:
        raise SimulationError(
            f"baseline {baseline!r} was not among the simulated accelerators"
        )
    return comparison
