"""Execution façade that owns registry lookups and per-run caching.

A :class:`Session` turns :class:`~repro.core.runspec.RunSpec` descriptions
into :class:`~repro.core.results.SimulationResult` objects.  It is the one
place that touches the registries, and it memoizes the expensive
spec-independent work across runs:

* :meth:`Session.load_dataset` — synthetic-dataset construction is cached
  (LRU) on ``(name, max_vertices, num_layers, seed)``, so a batch that sweeps
  accelerators over one dataset builds the topology once;
* :meth:`Session.accelerator` — accelerator models (including optional
  feature-format overrides) are instantiated once per session;
* :attr:`Session.trace_cache` — aggregation access traces, their replay
  structures (:class:`repro.memory.replay.ReplayEngine`), and derived
  reordered/transposed graphs are memoized across runs; they depend only on
  the topology and the schedule knobs, so a sweep over N accelerators x M
  cache sizes builds each trace once instead of N x M times;
* :meth:`Session.run` / :meth:`Session.run_many` — execute one spec or a
  batch, optionally annotating results with the spec's identity for
  downstream exports;
* :meth:`Session.compare` — run one spec per accelerator and collect a
  normalised :class:`~repro.core.results.ComparisonResult`.

The classic helpers :func:`repro.core.api.simulate` and
:func:`repro.core.api.compare_accelerators` are thin shims over a shared
default session (:func:`default_session`); they behave exactly as they did
before sessions existed (including seeding the topology with 0 when the
dataset is given by name — see :func:`~repro.core.api.simulate`).

Example::

    from repro import RunSpec, Session

    session = Session()
    specs = [RunSpec(dataset="cora", accelerator=name, max_vertices=256)
             for name in ("gcnax", "hygcn", "sgcn")]
    results = session.run_many(specs)      # topology built once, reused 3x
    comparison = session.compare(specs, baseline="gcnax")
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.accelerator.design import DESIGN_KNOBS, DesignPoint
from repro.accelerator.registry import ACCELERATORS
from repro.accelerator.simulator import GCN_VARIANTS, AcceleratorModel
from repro.core.config import SystemConfig
from repro.core.results import ComparisonResult, SimulationResult
from repro.core.runspec import RunSpec, build_config
from repro.errors import ConfigurationError, SimulationError, SparsityHarvestError
from repro.formats.registry import FORMATS
from repro.gcn.providers import (
    MeasuredSparsityCache,
    SparsityProvider,
    make_sparsity_provider,
    resolve_sparsity_mode,
)
from repro.graphs.datasets import DEFAULT_NUM_LAYERS, Dataset
from repro.graphs.datasets import load_dataset as _load_dataset
from repro.memory.replay import ReplayEngine, TraceCache
from repro.resilience.policy import active_policy
from repro.telemetry.metrics import METRICS_SCHEMA_VERSION
from repro.telemetry.spans import is_enabled, span_snapshot

logger = logging.getLogger(__name__)

#: ``progress`` callback signature of :meth:`Session.run_many`:
#: ``(index, spec, result)``.
ProgressCallback = Callable[[int, RunSpec, SimulationResult], None]

#: ``on_error`` callback signature of :meth:`Session.run_many`:
#: ``(index, spec, exception)``.
ErrorCallback = Callable[[int, RunSpec, Exception], None]

#: Config overrides that never change the schedule knobs feeding the access
#: trace: the cache capacity only selects *which* capacity the shared replay
#: structure is evaluated at, and the rest are pure timing/energy pricing
#: (DRAM model, frequency, engine shapes).  Two specs differing only in these
#: knobs form one **replay-knob equivalence class**: run back to back they
#: share every trace-cache entry, and a capacity spectrum covering the class
#: lets the first run seed the replay memo for all of them.  (A capacity
#: override *can* shift the tiling plan and thus the trace; the grouping is
#: then merely less effective — each run still builds and evaluates its own
#: context, so results never depend on the class assignment.)
REPLAY_KNOB_OVERRIDES = frozenset(
    {
        "cache_capacity_bytes",
        "cache_ways",
        "dram",
        "dram_bandwidth_gbps",
        "frequency_ghz",
        "num_combination_engines",
        "pipeline_phases",
        "simd_width",
        "systolic_cols",
        "systolic_rows",
    }
)


def replay_class_key(spec: RunSpec) -> Tuple:
    """Replay-knob equivalence class of ``spec``.

    Everything that feeds trace generation — dataset identity and scale,
    variant, seed, format, design point, sparsity mode, and the
    schedule-shaping config overrides — is part of the key; the
    :data:`REPLAY_KNOB_OVERRIDES` are excluded.
    """
    shared_overrides = tuple(
        (name, value)
        for name, value in sorted(spec.overrides.items())
        if name not in REPLAY_KNOB_OVERRIDES
    )
    design = tuple(sorted(spec.design.items())) if spec.design else None
    return (
        spec.dataset,
        spec.accelerator,
        spec.variant,
        spec.seed,
        spec.max_vertices,
        spec.max_sampled_layers,
        spec.num_layers,
        spec.feature_format,
        design,
        spec.sparsity,
        shared_overrides,
    )


class Session:
    """Executes :class:`RunSpec` runs with memoized registry resolution.

    Args:
        config: Base :class:`SystemConfig` applied to every run (spec
            overrides are layered on top); paper Table III defaults when
            omitted.
        max_cached_datasets: LRU capacity of the dataset cache.  Each cached
            entry holds one scaled synthetic topology; the default comfortably
            covers a full paper-comparison sweep.
        max_cached_traces: LRU capacity of the trace cache (aggregation
            access traces, replay-engine structures, and derived
            reordered/transposed graphs).  Entries depend only on
            (topology, tiling plan, engine partition) — never on timing
            knobs — so a sweep over N accelerators x M cache sizes builds
            each trace once instead of N x M times.
        max_cached_measurements: LRU capacity of the measured-sparsity cache
            (trained :class:`~repro.gcn.model.DeepGCN` models plus their
            harvested non-zero masks); each entry covers every
            measured-sparsity run on one (topology, depth, residual, seed)
            cell.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        max_cached_datasets: int = 32,
        max_cached_traces: int = 256,
        max_cached_measurements: int = 8,
    ) -> None:
        if max_cached_datasets < 1:
            raise ConfigurationError("max_cached_datasets must be at least 1")
        self.base_config = config
        self.max_cached_datasets = max_cached_datasets
        self._traces = TraceCache(max_entries=max_cached_traces)
        # Measured-sparsity harvests (trained DeepGCN + non-zero masks) are
        # memoized per (topology fingerprint, depth, hidden width, residual,
        # epochs, calibration, seed) — see MeasuredSparsityProvider.measure —
        # so a sweep over accelerators / formats / cache sizes trains each
        # cell once.  The provider instances themselves are memoized per
        # canonical mode.
        self._measurements = MeasuredSparsityCache(
            max_entries=max_cached_measurements
        )
        self._sparsity_providers: Dict[str, SparsityProvider] = {}
        self._datasets: "OrderedDict[Tuple[str, int, int, int], Dataset]" = OrderedDict()
        # (name, format, design overrides) -> (accelerator factory, format
        # name, format factory, instance).  Both factories are kept so a
        # cache hit can detect that either registration changed underneath
        # it (unregister(), temporary() shadowing) and not serve a stale
        # model.
        self._accelerators: Dict[
            Tuple[str, Optional[str], Optional[Tuple[Tuple[str, object], ...]]],
            Tuple[Callable[[], AcceleratorModel], str, Optional[object], AcceleratorModel],
        ] = {}
        # Resolved design point -> (accelerator factory, format factory,
        # model): two differently-spelled requests that resolve to an equal
        # DesignPoint (e.g. an accelerator's native format requested as an
        # explicit feature_format override) share one model instance.
        self._design_models: Dict[
            Tuple[Callable[[], AcceleratorModel], DesignPoint],
            Tuple[Optional[object], AcceleratorModel],
        ] = {}
        # Observability counters of the two session-local LRUs (the trace
        # and measurement caches carry their own); surfaced through
        # metrics_snapshot().
        self._dataset_hits = 0
        self._dataset_misses = 0
        self._dataset_evictions = 0
        self._accelerator_hits = 0
        self._accelerator_misses = 0

    # ------------------------------------------------------------------ #
    # Memoized resolution
    # ------------------------------------------------------------------ #
    def load_dataset(
        self,
        name: str,
        max_vertices: int = 2048,
        num_layers: int = DEFAULT_NUM_LAYERS,
        seed: int = 0,
    ) -> Dataset:
        """Memoized :func:`repro.graphs.datasets.load_dataset`.

        Dataset generation is deterministic in ``(name, max_vertices,
        num_layers, seed)``, so the cached instance is interchangeable with a
        fresh load; repeated runs over the same dataset reuse one topology.
        """
        key = (name.strip().lower(), int(max_vertices), int(num_layers), int(seed))
        cached = self._datasets.get(key)
        if cached is not None:
            self._datasets.move_to_end(key)
            self._dataset_hits += 1
            return cached
        self._dataset_misses += 1
        dataset = _load_dataset(
            key[0], max_vertices=key[1], num_layers=key[2], seed=key[3]
        )
        self._datasets[key] = dataset
        while len(self._datasets) > self.max_cached_datasets:
            self._datasets.popitem(last=False)
            self._dataset_evictions += 1
        return dataset

    def accelerator(
        self,
        name: str,
        feature_format: Optional[str] = None,
        design: Optional[Mapping[str, object]] = None,
    ) -> AcceleratorModel:
        """Memoized accelerator instantiation (with optional overrides).

        Args:
            name: Accelerator registry name (aliases accepted).
            feature_format: Optional format registry name replacing the
                design's native intermediate-feature format.
            design: Optional :class:`~repro.accelerator.design.DesignPoint`
                knob overrides applied to the accelerator's design.

        Requests are memoized twice: by the (name, format, design) spelling,
        and by the *resolved* design point — so a request that spells out an
        accelerator's native configuration explicitly shares the plain
        request's model instance instead of instantiating a duplicate.
        """
        # Consult the registries on every call (not just misses): an unknown
        # name must raise even if a model was cached while a temporary()
        # registration was live, and a re-registered accelerator *or format*
        # must rebuild instead of serving a stale instance.
        factory = ACCELERATORS.factory(name)
        if design:
            # Only simulation knobs may be overridden: identity/presentation
            # fields (name, display_name, ...) reaching derive() would make
            # the result document disagree with the spec that produced it.
            # RunSpec.validate() enforces the same bound, but pre-resolved
            # runs (and direct accelerator() calls) skip full validation.
            unknown = sorted(set(design) - set(DESIGN_KNOBS))
            if unknown:
                raise ConfigurationError(
                    f"unknown design knob(s) {unknown}; overridable knobs: "
                    f"{', '.join(DESIGN_KNOBS)}"
                )
            if feature_format is not None and (
                {"feature_format", "slice_size"} & set(design)
            ):
                # use_format runs after use_design, so a design-axis format
                # would be silently discarded while still labelling the run.
                raise ConfigurationError(
                    "design format knobs conflict with the "
                    f"feature_format={feature_format!r} override; set the "
                    "format through one mechanism only"
                )
        design_key = (
            tuple(sorted(design.items())) if design else None
        )
        key = (
            ACCELERATORS.canonical(name),
            None if feature_format is None else FORMATS.canonical(feature_format),
            design_key,
        )
        cached = self._accelerators.get(key)
        if cached is not None:
            cached_factory, format_name, format_factory, model = cached
            if cached_factory is factory and (
                self._format_factory(format_name) is format_factory
            ):
                self._accelerator_hits += 1
                return model
        self._accelerator_misses += 1
        model = factory()
        if design:
            model = model.use_design(model.design.derive(**dict(design)))
        if feature_format is not None:
            model = model.use_format(feature_format)
        format_name = FORMATS.canonical(model.feature_format_name)
        format_factory = self._format_factory(format_name)
        # Dedupe by resolved design point: an equal point built earlier (and
        # with the same live registrations) is the same model.
        point_key = (factory, model.design)
        deduped = self._design_models.get(point_key)
        if deduped is not None and deduped[0] is format_factory:
            model = deduped[1]
        else:
            self._design_models[point_key] = (format_factory, model)
        self._accelerators[key] = (factory, format_name, format_factory, model)
        return model

    @staticmethod
    def _format_factory(format_name: str) -> Optional[object]:
        """Current registry factory of ``format_name`` (None if unregistered)."""
        return FORMATS.factory(format_name) if format_name in FORMATS else None

    def config_for(self, spec: RunSpec) -> Optional[SystemConfig]:
        """Effective :class:`SystemConfig` of ``spec`` under this session.

        ``None`` (meaning "model defaults", i.e. ``SystemConfig()``) when the
        session has no base config and the spec carries no overrides.
        """
        return self._effective_config(spec, self.base_config)

    @staticmethod
    def _effective_config(
        spec: RunSpec, base: Optional[SystemConfig]
    ) -> Optional[SystemConfig]:
        if spec.overrides:
            return build_config(spec.overrides, base=base)
        return base

    @property
    def trace_cache(self) -> TraceCache:
        """The session's cross-run trace/replay-structure memo."""
        return self._traces

    @property
    def measurement_cache(self) -> MeasuredSparsityCache:
        """The session's cross-run measured-sparsity harvest memo."""
        return self._measurements

    def sparsity_provider(self, mode: Optional[str]) -> Optional[SparsityProvider]:
        """The (memoized) provider backing a spec's ``sparsity`` axis.

        ``None`` (the default axis value) returns ``None`` — the pipeline
        then runs its built-in synthetic path, byte-identical to the
        pre-provider behaviour.  Measured providers share the session's
        harvest memo, so every run (and every mode) on one topology reuses
        one trained model.
        """
        canonical = resolve_sparsity_mode(mode)
        if canonical is None:
            return None
        provider = self._sparsity_providers.get(canonical)
        if provider is None:
            provider = make_sparsity_provider(canonical, cache=self._measurements)
            self._sparsity_providers[canonical] = provider
        return provider

    def clear_caches(self) -> None:
        """Drop every memoized dataset, accelerator, trace, and measurement."""
        self._datasets.clear()
        self._accelerators.clear()
        self._design_models.clear()
        self._traces.clear()
        self._measurements.clear()
        self._sparsity_providers.clear()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def metrics_snapshot(self) -> Dict[str, object]:
        """Current telemetry state of this session (metrics schema v1).

        The snapshot combines the process-global span tree (empty unless
        telemetry was enabled via :func:`repro.telemetry.set_enabled`) with
        hit/miss/eviction counters of every session cache.  Counters are
        always maintained — they cost one integer increment per lookup — so
        the cache section is meaningful even when spans are off.
        """
        replay_memo = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0,
                       "engines": 0}
        for value in self._traces.values():
            if isinstance(value, ReplayEngine):
                replay_memo["engines"] += 1
                for counter, count in value.memo_stats().items():
                    replay_memo[counter] += count
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "telemetry_enabled": is_enabled(),
            "spans": span_snapshot(),
            "caches": {
                "trace": self._traces.stats(),
                "measurement": self._measurements.stats(),
                "dataset": {
                    "hits": self._dataset_hits,
                    "misses": self._dataset_misses,
                    "evictions": self._dataset_evictions,
                    "entries": len(self._datasets),
                },
                "accelerator": {
                    "hits": self._accelerator_hits,
                    "misses": self._accelerator_misses,
                    "evictions": 0,
                    "entries": len(self._accelerators),
                },
                "replay_memo": replay_memo,
            },
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        spec: RunSpec,
        *,
        dataset: Optional[Dataset] = None,
        accelerator: Optional[AcceleratorModel] = None,
        config: Optional[SystemConfig] = None,
        annotate: bool = False,
        capacity_spectrum: Sequence[int] = (),
    ) -> SimulationResult:
        """Execute one :class:`RunSpec` and return its result.

        Args:
            spec: The run description.
            dataset: Pre-resolved dataset; bypasses the spec's dataset
                reference and scale cap (used by the classic API shims when
                the caller already holds a :class:`Dataset`).
            accelerator: Pre-resolved accelerator model; bypasses the spec's
                accelerator reference.
            config: Base config overriding the session's ``base_config`` for
                this run (spec overrides still apply on top).
            annotate: Record ``scenario_id``/``scenario`` in the result's
                metadata (the experiment harness convention).
            capacity_spectrum: Cache capacities (bytes) the replay should be
                evaluated at alongside this run's own — see
                :func:`repro.accelerator.pipeline.simulate_design`.  The
                result is byte-identical with or without a spectrum; the
                extra capacities only pre-seed the replay memo shared through
                the session's trace cache.
        """
        if accelerator is not None and spec.feature_format is not None:
            raise ConfigurationError(
                f"feature_format={spec.feature_format!r} conflicts with a "
                "pre-resolved accelerator instance; apply the override via "
                "Session.accelerator(name, feature_format=...) instead"
            )
        if accelerator is not None and spec.design:
            raise ConfigurationError(
                f"design overrides {dict(spec.design)!r} conflict with a "
                "pre-resolved accelerator instance; apply them via "
                "Session.accelerator(name, design=...) instead"
            )
        if dataset is None and accelerator is None:
            spec.validate()
        elif spec.variant not in GCN_VARIANTS:
            # Pre-resolved components skip full validation, but the variant
            # still reaches the simulator and must be checked here.
            raise ConfigurationError(
                f"unknown GCN variant {spec.variant!r}; supported variants: "
                f"{', '.join(GCN_VARIANTS)}"
            )
        dataset_obj = (
            dataset
            if dataset is not None
            else self.load_dataset(
                spec.dataset,
                max_vertices=spec.max_vertices,
                num_layers=spec.num_layers,
                seed=spec.seed,
            )
        )
        model = (
            accelerator
            if accelerator is not None
            else self.accelerator(
                spec.accelerator,
                feature_format=spec.feature_format,
                design=spec.design,
            )
        )
        effective = self._effective_config(
            spec, config if config is not None else self.base_config
        )
        try:
            result = model.simulate(
                dataset_obj,
                config=effective,
                variant=spec.variant,
                max_sampled_layers=spec.max_sampled_layers,
                seed=spec.seed,
                trace_cache=self._traces,
                sparsity=self.sparsity_provider(spec.sparsity),
                capacity_spectrum=capacity_spectrum,
            )
        except SparsityHarvestError as exc:
            # Graceful degradation: when an ExecutionPolicy permitting it is
            # active (sweeps arm one), a failed measured harvest falls back
            # to the synthetic provider instead of failing the run.  Library
            # callers with no policy keep the raise — silent fallback would
            # change what "measured" means.
            policy = active_policy()
            if policy is None or not policy.degrade:
                raise
            logger.warning(
                "degrading %s to synthetic sparsity: %s", spec.scenario_id, exc
            )
            result = model.simulate(
                dataset_obj,
                config=effective,
                variant=spec.variant,
                max_sampled_layers=spec.max_sampled_layers,
                seed=spec.seed,
                trace_cache=self._traces,
                sparsity=self.sparsity_provider("synthetic"),
                capacity_spectrum=capacity_spectrum,
            )
            result.metadata["degraded"] = True
            result.metadata["degraded_reason"] = str(exc)
        if annotate:
            result.metadata["scenario_id"] = spec.scenario_id
            result.metadata["scenario"] = spec.to_dict()
        return result

    def _spec_capacity_bytes(self, spec: RunSpec) -> int:
        """Effective cache capacity (bytes) a run of ``spec`` would use."""
        override = spec.overrides.get("cache_capacity_bytes")
        if override is not None:
            return int(override)  # type: ignore[call-overload]
        base = self.base_config if self.base_config is not None else SystemConfig()
        return int(base.cache.capacity_bytes)

    def replay_groups(self, specs: Sequence[RunSpec]) -> List[List[int]]:
        """Partition spec indices into replay-knob equivalence classes.

        Classes appear in order of their first member; members keep their
        original relative order.  See :func:`replay_class_key`.
        """
        groups: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        for index, spec in enumerate(specs):
            groups.setdefault(replay_class_key(spec), []).append(index)
        return list(groups.values())

    def run_many(
        self,
        specs: Sequence[RunSpec],
        *,
        annotate: bool = True,
        progress: Optional[ProgressCallback] = None,
        on_error: Optional[ErrorCallback] = None,
        grouped: bool = True,
    ) -> List[Optional[SimulationResult]]:
        """Execute a batch of specs, reusing memoized datasets/accelerators.

        With ``grouped`` (the default) the batch is partitioned into
        replay-knob equivalence classes (:func:`replay_class_key`) and
        executed class by class: same-class runs share every trace-cache
        entry while it is hottest, and a class sweeping the cache capacity
        passes the whole capacity vector to its runs so the first one
        answers the spectrum in a single replay evaluation
        (:meth:`ReplayEngine.replay_spectrum`).  Results are byte-identical
        to the ungrouped order and are returned in input order; only the
        execution (and therefore ``progress``) order changes, with original
        indices reported.

        Args:
            specs: Run descriptions.
            annotate: Record each spec's identity in its result metadata.
            progress: Called as ``(index, spec, result)`` after each success,
                with ``index`` the spec's position in ``specs``.
            on_error: Called as ``(index, spec, exception)`` when a run fails;
                the failed slot becomes ``None`` and the batch continues.
                Without it the first failure propagates.
            grouped: Group specs by replay-knob equivalence class before
                executing (``False`` restores strict input-order execution).

        Returns:
            One result per spec (``None`` for isolated failures), in input
            order.
        """
        specs = list(specs)
        if grouped and len(specs) > 1:
            groups = self.replay_groups(specs)
        else:
            groups = [[index] for index in range(len(specs))]
        results: List[Optional[SimulationResult]] = [None] * len(specs)
        for group in groups:
            capacities = list(
                dict.fromkeys(self._spec_capacity_bytes(specs[i]) for i in group)
            )
            spectrum: Tuple[int, ...] = (
                tuple(capacities) if len(capacities) > 1 else ()
            )
            for index in group:
                spec = specs[index]
                try:
                    result = self.run(
                        spec, annotate=annotate, capacity_spectrum=spectrum
                    )
                except Exception as exc:  # noqa: BLE001 — isolation is opt-in
                    if on_error is None:
                        raise
                    on_error(index, spec, exc)
                    continue
                if progress is not None:
                    progress(index, spec, result)
                results[index] = result
        return results

    def run_spectrum(
        self,
        spec: RunSpec,
        capacities: Sequence[int],
        *,
        annotate: bool = True,
    ) -> List[SimulationResult]:
        """Run one spec at each cache capacity, sharing everything else.

        Builds one sibling spec per capacity (``cache_capacity_bytes``
        override, in bytes) and executes them as one replay-knob class:
        topology, schedule, trace, and replay structure are built once, and
        the replay itself is answered for the whole capacity vector in one
        evaluation.  Results are byte-identical to running each capacity
        through :meth:`run` individually.

        Args:
            spec: The base run description; an existing
                ``cache_capacity_bytes`` override is replaced per capacity.
            capacities: Cache capacities in bytes, in the order the results
                should come back (duplicates allowed).
            annotate: Record each sibling spec's identity in its result
                metadata.

        Returns:
            One :class:`SimulationResult` per requested capacity, in order.
        """
        siblings = []
        for capacity in capacities:
            overrides = dict(spec.overrides)
            overrides["cache_capacity_bytes"] = int(capacity)
            siblings.append(_dc_replace(spec, overrides=overrides))
        results = self.run_many(siblings, annotate=annotate, grouped=True)
        return [result for result in results if result is not None]

    def compare(
        self, specs: Sequence[RunSpec], baseline: str = "gcnax"
    ) -> ComparisonResult:
        """Run one spec per accelerator and collect a comparison.

        The baseline is checked against the specs' accelerators *before* any
        simulation runs, so a typo fails in milliseconds instead of after the
        whole batch.

        Raises:
            SimulationError: If ``specs`` is empty, spans more than one
                dataset, repeats an accelerator (the comparison is keyed by
                accelerator, so a duplicate would silently drop a run), or
                ``baseline`` is not among the specs' accelerators.
        """
        specs = list(specs)
        if not specs:
            raise SimulationError("compare() needs at least one run spec")
        datasets = {spec.dataset for spec in specs}
        if len(datasets) > 1:
            raise SimulationError(
                "compare() needs every spec on the same dataset; got "
                f"{', '.join(sorted(datasets))}"
            )
        names = [spec.accelerator for spec in specs]
        if len(set(names)) != len(names):
            raise SimulationError(
                "compare() needs one spec per accelerator; got duplicates in "
                f"{names}"
            )
        baseline_key = ACCELERATORS.canonical(baseline)
        if baseline_key not in names:
            raise SimulationError(
                f"baseline {baseline!r} was not among the simulated accelerators"
            )
        comparison = ComparisonResult(dataset=specs[0].dataset, baseline=baseline_key)
        for result in self.run_many(specs, annotate=False):
            assert result is not None  # run_many without on_error raises
            comparison.add(result)
        return comparison

    def run_pack(
        self,
        name: str,
        max_vertices: Optional[int] = None,
        *,
        progress: Optional[ProgressCallback] = None,
        on_error: Optional[ErrorCallback] = None,
    ) -> List[Tuple[RunSpec, Optional[SimulationResult]]]:
        """Expand a built-in scenario pack and run it through this session.

        A convenience wrapper over :meth:`run_many` for interactive use; the
        multiprocessing sweep path with result caching remains
        :class:`repro.experiments.runner.SweepRunner`.
        """
        # Imported lazily: repro.experiments sits above repro.core.
        from repro.experiments.scenarios import get_pack

        specs = get_pack(name, max_vertices=max_vertices).expand()
        results = self.run_many(specs, progress=progress, on_error=on_error)
        return list(zip(specs, results))


_DEFAULT_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-wide session backing the classic ``simulate()`` shims."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Drop the process-wide default session (tests, long-lived processes)."""
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = None


__all__ = [
    "REPLAY_KNOB_OVERRIDES",
    "Session",
    "default_session",
    "replay_class_key",
    "reset_default_session",
]
