"""The canonical description of one simulation run.

A :class:`RunSpec` is the *single* source of truth for everything that can
change a simulation's output: dataset reference and scale caps, GCN depth,
accelerator reference, aggregation variant, optional feature-format override,
layer-sampling budget, seed, and flat :class:`~repro.core.config.SystemConfig`
overrides.  It is plain data: validated against the library's registries,
hashable, deterministic in identity (:attr:`RunSpec.scenario_id`), JSON
round-trippable (:meth:`to_dict` / :meth:`from_dict`), and cheap to pickle
for multiprocessing sweeps.

Every surface of the library consumes it:

* :class:`repro.core.session.Session` executes ``RunSpec``s (one at a time or
  as memoized batches);
* :func:`repro.core.api.simulate` / ``compare_accelerators`` are thin shims
  that build a ``RunSpec`` and delegate to a default session;
* ``repro.experiments.spec.Scenario`` *is* ``RunSpec`` (an alias), so grid
  expansion, the content-addressed result cache, and the CLI all share this
  one definition.

Identity note: :attr:`scenario_id` hashes exactly the fields that existed
before this class unified the surfaces; optional new axes (the feature-format
override) only enter the identity when they are actually set, so existing
:class:`~repro.experiments.store.ResultStore` caches keep hitting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.accelerator.design import DESIGN_KNOBS
from repro.accelerator.registry import ACCELERATORS, resolve_design
from repro.accelerator.simulator import GCN_VARIANTS
from repro.core.config import HBM1, HBM2, DRAMConfig, SystemConfig
from repro.errors import ConfigurationError
from repro.formats.registry import FORMATS
from repro.gcn.providers import fold_sparsity_mode, resolve_sparsity_mode
from repro.graphs.datasets import DATASET_SPECS, DEFAULT_NUM_LAYERS

#: Named DRAM generations accepted by the ``"dram"`` override.
DRAM_GENERATIONS: Dict[str, DRAMConfig] = {"hbm1": HBM1, "hbm2": HBM2}

#: Default dataset scale cap shared by :class:`RunSpec` and the classic
#: :func:`repro.core.api.simulate` shims (one definition, so they cannot
#: silently diverge).
DEFAULT_MAX_VERTICES = 2048

#: Flat SystemConfig override keys accepted by :meth:`RunSpec.build_config`.
SUPPORTED_OVERRIDES: Tuple[str, ...] = (
    "cache_capacity_bytes",
    "cache_ways",
    "num_engines",
    "num_aggregation_engines",
    "num_combination_engines",
    "frequency_ghz",
    "simd_width",
    "systolic_rows",
    "systolic_cols",
    "dram",
    "dram_bandwidth_gbps",
    "sgcn_slice_size",
    "sac_strip_height",
    "pipeline_phases",
)


def _normalise_overrides(overrides: Mapping[str, Any]) -> Dict[str, object]:
    """Validate override keys and return a plain, sorted dictionary."""
    unknown = sorted(set(overrides) - set(SUPPORTED_OVERRIDES))
    if unknown:
        raise ConfigurationError(
            f"unknown SystemConfig override(s) {unknown}; supported: "
            f"{', '.join(SUPPORTED_OVERRIDES)}"
        )
    return {key: overrides[key] for key in sorted(overrides)}


def build_config(
    overrides: Mapping[str, Any], base: Optional[SystemConfig] = None
) -> SystemConfig:
    """Apply flat override keys to a base :class:`SystemConfig`.

    The frozen config dataclasses perform their own validation, so illegal
    combinations (e.g. a cache capacity that is not a multiple of
    ``ways * line_bytes``) surface as :class:`ConfigurationError` here rather
    than mid-sweep.
    """
    overrides = _normalise_overrides(overrides)
    config = base or SystemConfig()
    engines = config.engines
    cache = config.cache
    dram = config.dram

    if "num_engines" in overrides:
        count = int(overrides["num_engines"])
        engines = replace(
            engines,
            num_aggregation_engines=count,
            num_combination_engines=count,
        )
    for key in ("num_aggregation_engines", "num_combination_engines"):
        if key in overrides:
            engines = replace(engines, **{key: int(overrides[key])})
    for key in ("simd_width", "systolic_rows", "systolic_cols"):
        if key in overrides:
            engines = replace(engines, **{key: int(overrides[key])})
    if "frequency_ghz" in overrides:
        engines = replace(engines, frequency_ghz=float(overrides["frequency_ghz"]))

    if "cache_capacity_bytes" in overrides:
        capacity = int(overrides["cache_capacity_bytes"])
        if capacity != cache.capacity_bytes:
            # A capacity override models resizing the physical cache under the
            # design's nominal schedule: tiling/psum/pinned planning stays at
            # the base capacity so every point of a capacity sweep shares one
            # trace, and only the replay hit test sees the new size.
            cache = replace(
                cache,
                capacity_bytes=capacity,
                schedule_capacity_bytes=cache.schedule_capacity,
            )
    if "cache_ways" in overrides:
        cache = replace(cache, ways=int(overrides["cache_ways"]))

    if "dram" in overrides:
        name = str(overrides["dram"]).lower()
        if name not in DRAM_GENERATIONS:
            raise ConfigurationError(
                f"unknown DRAM generation {overrides['dram']!r}; "
                f"choose from {', '.join(sorted(DRAM_GENERATIONS))}"
            )
        dram = DRAM_GENERATIONS[name]
    if "dram_bandwidth_gbps" in overrides:
        dram = replace(
            dram, peak_bandwidth_gbps=float(overrides["dram_bandwidth_gbps"])
        )

    config = replace(config, engines=engines, cache=cache, dram=dram)
    if "sgcn_slice_size" in overrides:
        config = replace(config, sgcn_slice_size=int(overrides["sgcn_slice_size"]))
    if "sac_strip_height" in overrides:
        config = replace(config, sac_strip_height=int(overrides["sac_strip_height"]))
    if "pipeline_phases" in overrides:
        config = replace(config, pipeline_phases=bool(overrides["pipeline_phases"]))
    return config


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run.

    Attributes:
        dataset: Dataset key (``"cora"``, ... — see Table II).
        accelerator: Accelerator registry name (``"sgcn"``, ``"gcnax"``, ...).
        variant: Aggregation variant (``"gcn"``, ``"gin"``, ``"sage"``).
        seed: Seed for topology generation and per-row sparsity draws.
        max_vertices: Scale cap applied when loading the dataset.
        max_sampled_layers: Representative-layer sampling budget.
        num_layers: GCN depth (paper default 28).
        overrides: Flat :class:`SystemConfig` overrides (see
            :data:`SUPPORTED_OVERRIDES`); empty means Table III defaults.
        feature_format: Optional feature-format registry name that replaces
            the accelerator's native intermediate-feature format (``None``
            keeps the design's own format and, for cache-compatibility, stays
            out of the run identity).
        design: Optional mapping of :class:`~repro.accelerator.design.DesignPoint`
            knob overrides applied on top of the accelerator's design point
            (see :data:`~repro.accelerator.design.DESIGN_KNOBS`).  ``None``
            (or an empty mapping) runs the design as registered and — like
            ``feature_format`` — stays out of the run identity, so caches
            written before the axis existed keep hitting.
        sparsity: Optional sparsity mode (see
            :data:`~repro.gcn.providers.SPARSITY_MODES`): ``"synthetic"``
            runs the calibrated synthetic profile (identical results to
            leaving the axis unset), ``"measured"`` /
            ``"measured-traditional"`` harvest the tables from a
            trained :class:`~repro.gcn.model.DeepGCN` (with / without
            residual connections).  ``None`` keeps the axis out of the run
            identity, so caches written before it existed keep hitting.
        tag: Optional free-form label carried into exports (e.g. the sweep
            axis value the run represents).
    """

    dataset: str
    accelerator: str
    variant: str = "gcn"
    seed: int = 0
    max_vertices: int = DEFAULT_MAX_VERTICES
    max_sampled_layers: int = 6
    num_layers: int = DEFAULT_NUM_LAYERS
    overrides: Mapping[str, object] = field(default_factory=dict)
    feature_format: Optional[str] = None
    design: Optional[Mapping[str, object]] = None
    sparsity: Optional[str] = None
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", self.dataset.strip().lower())
        # Fold accelerator spellings to the canonical registry key (including
        # aliases) so e.g. "i-gcn" and "igcn" share one run identity and
        # cache entry.
        object.__setattr__(
            self, "accelerator", ACCELERATORS.canonical(self.accelerator)
        )
        object.__setattr__(self, "variant", self.variant.strip().lower())
        object.__setattr__(self, "overrides", dict(self.overrides))
        if self.feature_format is not None:
            object.__setattr__(
                self, "feature_format", FORMATS.canonical(self.feature_format)
            )
        if self.sparsity is not None:
            # Case/alias-fold ("measured-residual" -> "measured") so
            # equivalent specs share one identity; unknown modes survive the
            # fold for validate() to reject with a precise error.
            object.__setattr__(self, "sparsity", fold_sparsity_mode(self.sparsity))
        # Normalise the design override axis: a key-sorted plain dict, with
        # "no overrides" collapsing to None so empty mappings do not mint a
        # distinct run identity.  When the accelerator (and every key) is
        # resolvable, values are canonicalised through a derived DesignPoint
        # and redundant knobs — ones whose removal leaves the derived point
        # unchanged, including explicit format defaults like a slice_size of
        # 96 on BEICSR — are dropped, so equivalent spellings share one
        # scenario_id and one cache entry.  Unknown accelerators/knobs keep
        # the raw mapping for validate() to reject with a precise error.
        if self.design is not None:
            design = {key: self.design[key] for key in sorted(self.design)}
            if (
                design
                and self.feature_format is not None
                and {"feature_format", "slice_size"} & set(design)
            ):
                # Checked before normalisation: deriving format knobs against
                # the *base* design while a feature_format axis would replace
                # the format afterwards produces misleading errors (and, if
                # it succeeded, a mislabeled run).
                raise ConfigurationError(
                    "design format knobs "
                    f"{sorted({'feature_format', 'slice_size'} & set(design))} "
                    f"conflict with the feature_format={self.feature_format!r} "
                    "axis; set the format through one mechanism only"
                )
            if (
                design
                and self.accelerator in ACCELERATORS
                and set(design) <= set(DESIGN_KNOBS)
            ):
                base = resolve_design(self.accelerator)
                derived = base.derive(**design)
                if design.get("slice_size") is not None and derived.slice_size is None:
                    raise ConfigurationError(
                        f"slice_size={design['slice_size']} has no effect: "
                        f"format {derived.feature_format!r} has no slice knob"
                    )
                kept = dict(design)
                for key in list(kept):
                    reduced = {k: v for k, v in kept.items() if k != key}
                    if base.derive(**reduced) == derived:
                        del kept[key]
                design = {key: getattr(derived, key) for key in sorted(kept)}
            object.__setattr__(self, "design", design or None)

    def __hash__(self) -> int:
        # The frozen dataclass's generated __hash__ would hash the overrides
        # dict and raise; hash the canonical identity instead so run specs
        # work in sets and as dict keys (consistent with field equality:
        # equal specs have equal keys, hence equal hashes).
        return hash((self.scenario_id, self.tag))

    # ------------------------------------------------------------------ #
    def validate(self) -> "RunSpec":
        """Check every field against the library's registries.

        Returns ``self`` so the call chains; raises
        :class:`ConfigurationError` (or :class:`~repro.errors.FormatError`
        for a bad format override) on the first problem.
        """
        if self.dataset not in DATASET_SPECS:
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; available: "
                f"{', '.join(sorted(DATASET_SPECS))}"
            )
        ACCELERATORS.factory(self.accelerator)
        if self.variant not in GCN_VARIANTS:
            raise ConfigurationError(
                f"unknown GCN variant {self.variant!r}; supported: "
                f"{', '.join(GCN_VARIANTS)}"
            )
        if self.feature_format is not None:
            FORMATS.factory(self.feature_format)
        resolve_sparsity_mode(self.sparsity)
        if self.design:
            unknown = sorted(set(self.design) - set(DESIGN_KNOBS))
            if unknown:
                raise ConfigurationError(
                    f"unknown design knob(s) {unknown}; overridable knobs: "
                    f"{', '.join(DESIGN_KNOBS)}"
                )
            # (The feature_format-axis vs design-format-knob conflict is
            # rejected in __post_init__, before normalisation could derive
            # against the wrong base format.)
            resolve_design(self.accelerator).derive(**self.design)
        if self.num_layers <= 0:
            raise ConfigurationError("num_layers must be positive")
        if self.max_vertices < 2:
            raise ConfigurationError("max_vertices must be at least 2")
        if self.max_sampled_layers <= 0:
            raise ConfigurationError("max_sampled_layers must be positive")
        build_config(self.overrides)
        return self

    def build_config(self, base: Optional[SystemConfig] = None) -> SystemConfig:
        """The :class:`SystemConfig` this run executes under."""
        return build_config(self.overrides, base=base)

    # ------------------------------------------------------------------ #
    def key(self) -> Dict[str, object]:
        """Canonical mapping that determines the run's identity.

        Everything that can change the simulation output is included; the
        display-only ``tag`` is not.  The optional ``feature_format`` axis
        joins the key only when set, so identities (and therefore
        content-addressed cache entries) of runs written before the axis
        existed are unchanged.
        """
        data: Dict[str, object] = {
            "dataset": self.dataset,
            "accelerator": self.accelerator,
            "variant": self.variant,
            "seed": int(self.seed),
            "max_vertices": int(self.max_vertices),
            "max_sampled_layers": int(self.max_sampled_layers),
            "num_layers": int(self.num_layers),
            "overrides": _normalise_overrides(self.overrides),
        }
        if self.feature_format is not None:
            data["feature_format"] = self.feature_format
        if self.design:
            data["design"] = dict(self.design)
        if self.sparsity is not None:
            data["sparsity"] = self.sparsity
        return data

    @property
    def scenario_id(self) -> str:
        """Deterministic 12-hex-digit identity derived from :meth:`key`."""
        payload = json.dumps(self.key(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    @property
    def run_id(self) -> str:
        """Alias of :attr:`scenario_id` under the RunSpec vocabulary."""
        return self.scenario_id

    def label(self) -> str:
        """Human-readable one-line description used in logs."""
        parts = [self.dataset, self.accelerator]
        if self.variant != "gcn":
            parts.append(self.variant)
        if self.feature_format is not None:
            parts.append(self.feature_format)
        if self.sparsity is not None:
            parts.append(self.sparsity)
        if self.num_layers != DEFAULT_NUM_LAYERS:
            parts.append(f"L{self.num_layers}")
        if self.seed:
            parts.append(f"seed{self.seed}")
        for key, value in sorted(self.overrides.items()):
            parts.append(f"{key}={value}")
        if self.design:
            for key, value in self.design.items():
                parts.append(f"{key}={value}")
        return "/".join(str(part) for part in parts)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        data = self.key()
        data["tag"] = self.tag  # repro: identity-exempt[RunSpec.tag] human-facing label only; results and scenario_id are tag-invariant by design
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec produced by :meth:`to_dict`."""
        raw_format = data.get("feature_format")
        raw_design = data.get("design")
        raw_sparsity = data.get("sparsity")
        return cls(
            dataset=str(data["dataset"]),
            accelerator=str(data["accelerator"]),
            variant=str(data.get("variant", "gcn")),
            seed=int(data.get("seed", 0)),
            max_vertices=int(data.get("max_vertices", DEFAULT_MAX_VERTICES)),
            max_sampled_layers=int(data.get("max_sampled_layers", 6)),
            num_layers=int(data.get("num_layers", DEFAULT_NUM_LAYERS)),
            overrides=dict(data.get("overrides", {})),
            feature_format=None if raw_format is None else str(raw_format),
            design=None if raw_design is None else dict(raw_design),
            sparsity=None if raw_sparsity is None else str(raw_sparsity),
            tag=str(data.get("tag", "")),
        )


__all__ = [
    "DEFAULT_MAX_VERTICES",
    "DRAM_GENERATIONS",
    "RunSpec",
    "SUPPORTED_OVERRIDES",
    "build_config",
]
