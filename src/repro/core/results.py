"""Result containers for accelerator simulations.

The performance model produces, per layer, a cycle count, a breakdown of the
off-chip traffic, the work done by the compute engines, and the energy those
imply.  :class:`SimulationResult` aggregates the layers for one
(dataset, accelerator, configuration) run; :class:`ComparisonResult` holds a
set of runs over the same dataset/config and computes the normalised
speedups and traffic ratios the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.memory.energy import EnergyBreakdown


@dataclass
class TrafficBreakdown:
    """Off-chip DRAM traffic of one layer or one run, in bytes.

    Attributes:
        topology_bytes: Graph topology (CSR adjacency) reads.
        feature_read_bytes: Intermediate/input feature reads.
        feature_write_bytes: Output feature writes (next layer's input).
        weight_bytes: Layer weight reads.
        psum_bytes: Partial-sum spills and refills (column-product designs).
    """

    topology_bytes: float = 0.0
    feature_read_bytes: float = 0.0
    feature_write_bytes: float = 0.0
    weight_bytes: float = 0.0
    psum_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Total off-chip traffic."""
        return (
            self.topology_bytes
            + self.feature_read_bytes
            + self.feature_write_bytes
            + self.weight_bytes
            + self.psum_bytes
        )

    def __add__(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        return TrafficBreakdown(
            topology_bytes=self.topology_bytes + other.topology_bytes,
            feature_read_bytes=self.feature_read_bytes + other.feature_read_bytes,
            feature_write_bytes=self.feature_write_bytes + other.feature_write_bytes,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            psum_bytes=self.psum_bytes + other.psum_bytes,
        )

    def scaled(self, factor: float) -> "TrafficBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return TrafficBreakdown(
            topology_bytes=self.topology_bytes * factor,
            feature_read_bytes=self.feature_read_bytes * factor,
            feature_write_bytes=self.feature_write_bytes * factor,
            weight_bytes=self.weight_bytes * factor,
            psum_bytes=self.psum_bytes * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view including the total."""
        return {
            "topology": self.topology_bytes,
            "feature_read": self.feature_read_bytes,
            "feature_write": self.feature_write_bytes,
            "weights": self.weight_bytes,
            "psum": self.psum_bytes,
            "total": self.total_bytes,
        }


@dataclass
class LayerResult:
    """Performance model output for one GCN layer.

    Attributes:
        layer_index: Zero-based layer index.
        cycles: Total cycles of the layer (phases overlapped if pipelined).
        aggregation_cycles: Cycles of the aggregation phase alone.
        combination_cycles: Cycles of the combination phase alone.
        aggregation_compute_cycles: Compute-bound portion of aggregation.
        combination_compute_cycles: Compute-bound portion of combination.
        memory_cycles: Cycles needed to move the layer's off-chip traffic.
        macs: Multiply-accumulate operations performed.
        traffic: Off-chip traffic breakdown.
        cache_accesses: On-chip cache accesses (for energy accounting).
        cache_hit_rate: Feature-read hit rate observed in the cache model.
        energy: Energy breakdown of this layer.
        weight: How many network layers this simulated layer represents
            (representative-layer sampling uses weights > 1).
    """

    layer_index: int
    cycles: float
    aggregation_cycles: float
    combination_cycles: float
    aggregation_compute_cycles: float
    combination_compute_cycles: float
    memory_cycles: float
    macs: float
    traffic: TrafficBreakdown
    cache_accesses: float
    cache_hit_rate: float
    energy: EnergyBreakdown
    weight: float = 1.0


@dataclass
class SimulationResult:
    """Aggregate result of simulating one accelerator on one dataset."""

    accelerator: str
    dataset: str
    layers: List[LayerResult] = field(default_factory=list)
    frequency_ghz: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> float:
        """Total execution cycles (layer weights applied)."""
        return float(sum(layer.cycles * layer.weight for layer in self.layers))

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock execution time implied by the cycle count."""
        return self.total_cycles / (self.frequency_ghz * 1e9)

    @property
    def traffic(self) -> TrafficBreakdown:
        """Total off-chip traffic (layer weights applied)."""
        total = TrafficBreakdown()
        for layer in self.layers:
            total = total + layer.traffic.scaled(layer.weight)
        return total

    @property
    def dram_traffic_bytes(self) -> float:
        """Total off-chip traffic in bytes."""
        return self.traffic.total_bytes

    @property
    def total_macs(self) -> float:
        """Total multiply-accumulate operations."""
        return float(sum(layer.macs * layer.weight for layer in self.layers))

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy (layer weights applied)."""
        total = EnergyBreakdown(0.0, 0.0, 0.0)
        for layer in self.layers:
            total = total + layer.energy.scaled(layer.weight)
        return total

    @property
    def average_cache_hit_rate(self) -> float:
        """Access-weighted average feature-read hit rate."""
        weights = [layer.cache_accesses * layer.weight for layer in self.layers]
        rates = [layer.cache_hit_rate for layer in self.layers]
        total = sum(weights)
        if total == 0:
            return 0.0
        return float(sum(w * r for w, r in zip(weights, rates)) / total)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (same dataset)."""
        if self.total_cycles <= 0:
            raise SimulationError("cannot compute a speedup from zero cycles")
        return baseline.total_cycles / self.total_cycles

    def summary(self) -> Dict[str, object]:
        """One-line summary used by the experiment reports."""
        return {
            "accelerator": self.accelerator,
            "dataset": self.dataset,
            "cycles": self.total_cycles,
            "runtime_s": self.runtime_seconds,
            "dram_bytes": self.dram_traffic_bytes,
            "macs": self.total_macs,
            "energy_j": self.energy.total_joules,
            "cache_hit_rate": self.average_cache_hit_rate,
        }


@dataclass
class ComparisonResult:
    """A set of simulation results over the same dataset and configuration."""

    dataset: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    baseline: str = "gcnax"

    def add(self, result: SimulationResult) -> None:
        """Add one accelerator's result."""
        self.results[result.accelerator] = result

    def accelerators(self) -> List[str]:
        """Names of the accelerators present."""
        return list(self.results)

    def speedups(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Speedup of every accelerator relative to ``baseline``."""
        base = self._baseline_result(baseline)
        return {
            name: base.total_cycles / result.total_cycles
            for name, result in self.results.items()
        }

    def normalized_traffic(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Off-chip traffic of every accelerator normalised to ``baseline``."""
        base = self._baseline_result(baseline)
        base_bytes = base.dram_traffic_bytes
        return {
            name: result.dram_traffic_bytes / base_bytes
            for name, result in self.results.items()
        }

    def normalized_energy(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Energy of every accelerator normalised to ``baseline``."""
        base = self._baseline_result(baseline)
        base_energy = base.energy.total_joules
        return {
            name: result.energy.total_joules / base_energy
            for name, result in self.results.items()
        }

    def _baseline_result(self, baseline: Optional[str]) -> SimulationResult:
        key = baseline or self.baseline
        if key not in self.results:
            raise SimulationError(
                f"baseline {key!r} missing from comparison "
                f"(have: {sorted(self.results)})"
            )
        return self.results[key]


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of positive values (used for cross-dataset summaries)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise SimulationError("cannot take the geometric mean of no values")
    if np.any(array <= 0):
        raise SimulationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
