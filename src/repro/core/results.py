"""Result containers for accelerator simulations.

The performance model produces, per layer, a cycle count, a breakdown of the
off-chip traffic, the work done by the compute engines, and the energy those
imply.  :class:`SimulationResult` aggregates the layers for one
(dataset, accelerator, configuration) run; :class:`ComparisonResult` holds a
set of runs over the same dataset/config and computes the normalised
speedups and traffic ratios the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.memory.energy import EnergyBreakdown


def _json_safe(value: object) -> object:
    """Coerce numpy scalars/arrays and containers to JSON-encodable values."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


@dataclass
class TrafficBreakdown:
    """Off-chip DRAM traffic of one layer or one run, in bytes.

    Attributes:
        topology_bytes: Graph topology (CSR adjacency) reads.
        feature_read_bytes: Intermediate/input feature reads.
        feature_write_bytes: Output feature writes (next layer's input).
        weight_bytes: Layer weight reads.
        psum_bytes: Partial-sum spills and refills (column-product designs).
    """

    topology_bytes: float = 0.0
    feature_read_bytes: float = 0.0
    feature_write_bytes: float = 0.0
    weight_bytes: float = 0.0
    psum_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Total off-chip traffic."""
        return (
            self.topology_bytes
            + self.feature_read_bytes
            + self.feature_write_bytes
            + self.weight_bytes
            + self.psum_bytes
        )

    def __add__(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        return TrafficBreakdown(
            topology_bytes=self.topology_bytes + other.topology_bytes,
            feature_read_bytes=self.feature_read_bytes + other.feature_read_bytes,
            feature_write_bytes=self.feature_write_bytes + other.feature_write_bytes,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            psum_bytes=self.psum_bytes + other.psum_bytes,
        )

    def scaled(self, factor: float) -> "TrafficBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return TrafficBreakdown(
            topology_bytes=self.topology_bytes * factor,
            feature_read_bytes=self.feature_read_bytes * factor,
            feature_write_bytes=self.feature_write_bytes * factor,
            weight_bytes=self.weight_bytes * factor,
            psum_bytes=self.psum_bytes * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view including the total."""
        return {
            "topology": self.topology_bytes,
            "feature_read": self.feature_read_bytes,
            "feature_write": self.feature_write_bytes,
            "weights": self.weight_bytes,
            "psum": self.psum_bytes,
            "total": self.total_bytes,
        }

    def to_dict(self) -> Dict[str, float]:
        """Round-trip serialisation keyed by field name (see :meth:`from_dict`).

        Unlike :meth:`as_dict` (a display view that renames components and
        adds the total), this mapping reconstructs the object exactly.
        """
        return {
            "topology_bytes": self.topology_bytes,
            "feature_read_bytes": self.feature_read_bytes,
            "feature_write_bytes": self.feature_write_bytes,
            "weight_bytes": self.weight_bytes,
            "psum_bytes": self.psum_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "TrafficBreakdown":
        """Rebuild a breakdown produced by :meth:`to_dict`."""
        return cls(
            topology_bytes=float(data["topology_bytes"]),
            feature_read_bytes=float(data["feature_read_bytes"]),
            feature_write_bytes=float(data["feature_write_bytes"]),
            weight_bytes=float(data["weight_bytes"]),
            psum_bytes=float(data["psum_bytes"]),
        )


@dataclass
class LayerResult:
    """Performance model output for one GCN layer.

    Attributes:
        layer_index: Zero-based layer index.
        cycles: Total cycles of the layer (phases overlapped if pipelined).
        aggregation_cycles: Cycles of the aggregation phase alone.
        combination_cycles: Cycles of the combination phase alone.
        aggregation_compute_cycles: Compute-bound portion of aggregation.
        combination_compute_cycles: Compute-bound portion of combination.
        memory_cycles: Cycles needed to move the layer's off-chip traffic.
        macs: Multiply-accumulate operations performed.
        traffic: Off-chip traffic breakdown.
        cache_accesses: On-chip cache accesses (for energy accounting).
        cache_hit_rate: Feature-read hit rate observed in the cache model.
        energy: Energy breakdown of this layer.
        weight: How many network layers this simulated layer represents
            (representative-layer sampling uses weights > 1).
    """

    layer_index: int
    cycles: float
    aggregation_cycles: float
    combination_cycles: float
    aggregation_compute_cycles: float
    combination_compute_cycles: float
    memory_cycles: float
    macs: float
    traffic: TrafficBreakdown
    cache_accesses: float
    cache_hit_rate: float
    energy: EnergyBreakdown
    weight: float = 1.0

    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        return {
            "layer_index": int(self.layer_index),
            "cycles": float(self.cycles),
            "aggregation_cycles": float(self.aggregation_cycles),
            "combination_cycles": float(self.combination_cycles),
            "aggregation_compute_cycles": float(self.aggregation_compute_cycles),
            "combination_compute_cycles": float(self.combination_compute_cycles),
            "memory_cycles": float(self.memory_cycles),
            "macs": float(self.macs),
            "traffic": self.traffic.to_dict(),
            "cache_accesses": float(self.cache_accesses),
            "cache_hit_rate": float(self.cache_hit_rate),
            "energy": self.energy.to_dict(),
            "weight": float(self.weight),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LayerResult":
        """Rebuild a layer result produced by :meth:`to_dict`."""
        return cls(
            layer_index=int(data["layer_index"]),
            cycles=float(data["cycles"]),
            aggregation_cycles=float(data["aggregation_cycles"]),
            combination_cycles=float(data["combination_cycles"]),
            aggregation_compute_cycles=float(data["aggregation_compute_cycles"]),
            combination_compute_cycles=float(data["combination_compute_cycles"]),
            memory_cycles=float(data["memory_cycles"]),
            macs=float(data["macs"]),
            traffic=TrafficBreakdown.from_dict(data["traffic"]),
            cache_accesses=float(data["cache_accesses"]),
            cache_hit_rate=float(data["cache_hit_rate"]),
            energy=EnergyBreakdown.from_dict(data["energy"]),
            weight=float(data.get("weight", 1.0)),
        )


@dataclass
class SimulationResult:
    """Aggregate result of simulating one accelerator on one dataset."""

    accelerator: str
    dataset: str
    layers: List[LayerResult] = field(default_factory=list)
    frequency_ghz: float = 1.0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> float:
        """Total execution cycles (layer weights applied)."""
        return float(sum(layer.cycles * layer.weight for layer in self.layers))

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock execution time implied by the cycle count."""
        return self.total_cycles / (self.frequency_ghz * 1e9)

    @property
    def traffic(self) -> TrafficBreakdown:
        """Total off-chip traffic (layer weights applied)."""
        total = TrafficBreakdown()
        for layer in self.layers:
            total = total + layer.traffic.scaled(layer.weight)
        return total

    @property
    def dram_traffic_bytes(self) -> float:
        """Total off-chip traffic in bytes."""
        return self.traffic.total_bytes

    @property
    def total_macs(self) -> float:
        """Total multiply-accumulate operations."""
        return float(sum(layer.macs * layer.weight for layer in self.layers))

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy (layer weights applied)."""
        total = EnergyBreakdown(0.0, 0.0, 0.0)
        for layer in self.layers:
            total = total + layer.energy.scaled(layer.weight)
        return total

    @property
    def average_cache_hit_rate(self) -> float:
        """Access-weighted average feature-read hit rate."""
        weights = [layer.cache_accesses * layer.weight for layer in self.layers]
        rates = [layer.cache_hit_rate for layer in self.layers]
        total = sum(weights)
        if total == 0:
            return 0.0
        return float(sum(w * r for w, r in zip(weights, rates)) / total)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (same dataset)."""
        if self.total_cycles <= 0:
            raise SimulationError("cannot compute a speedup from zero cycles")
        return baseline.total_cycles / self.total_cycles

    def summary(self) -> Dict[str, object]:
        """One-line summary used by the experiment reports."""
        return {
            "accelerator": self.accelerator,
            "dataset": self.dataset,
            "cycles": self.total_cycles,
            "runtime_s": self.runtime_seconds,
            "dram_bytes": self.dram_traffic_bytes,
            "macs": self.total_macs,
            "energy_j": self.energy.total_joules,
            "cache_hit_rate": self.average_cache_hit_rate,
        }

    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation of the full result (see :meth:`from_dict`).

        The payload is JSON-safe: numpy scalars in ``metadata`` are coerced to
        plain Python numbers.
        """
        return {
            "accelerator": self.accelerator,
            "dataset": self.dataset,
            "frequency_ghz": float(self.frequency_ghz),
            "metadata": {key: _json_safe(value) for key, value in self.metadata.items()},
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulationResult":
        """Rebuild a result produced by :meth:`to_dict`."""
        return cls(
            accelerator=str(data["accelerator"]),
            dataset=str(data["dataset"]),
            layers=[LayerResult.from_dict(layer) for layer in data.get("layers", [])],
            frequency_ghz=float(data.get("frequency_ghz", 1.0)),
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class ComparisonResult:
    """A set of simulation results over the same dataset and configuration."""

    dataset: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    baseline: str = "gcnax"

    def add(self, result: SimulationResult) -> None:
        """Add one accelerator's result."""
        self.results[result.accelerator] = result

    def accelerators(self) -> List[str]:
        """Names of the accelerators present."""
        return list(self.results)

    def speedups(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Speedup of every accelerator relative to ``baseline``."""
        base = self._baseline_result(baseline)
        return {
            name: base.total_cycles / result.total_cycles
            for name, result in self.results.items()
        }

    def normalized_traffic(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Off-chip traffic of every accelerator normalised to ``baseline``."""
        base = self._baseline_result(baseline)
        base_bytes = base.dram_traffic_bytes
        return {
            name: result.dram_traffic_bytes / base_bytes
            for name, result in self.results.items()
        }

    def normalized_energy(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Energy of every accelerator normalised to ``baseline``."""
        base = self._baseline_result(baseline)
        base_energy = base.energy.total_joules
        return {
            name: result.energy.total_joules / base_energy
            for name, result in self.results.items()
        }

    def _baseline_result(self, baseline: Optional[str]) -> SimulationResult:
        key = baseline or self.baseline
        if key not in self.results:
            raise SimulationError(
                f"baseline {key!r} missing from comparison "
                f"(have: {sorted(self.results)})"
            )
        return self.results[key]

    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        return {
            "dataset": self.dataset,
            "baseline": self.baseline,
            "results": {
                name: result.to_dict() for name, result in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ComparisonResult":
        """Rebuild a comparison produced by :meth:`to_dict`."""
        comparison = cls(
            dataset=str(data["dataset"]),
            baseline=str(data.get("baseline", "gcnax")),
        )
        for result in data.get("results", {}).values():
            comparison.add(SimulationResult.from_dict(result))
        return comparison


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of positive values (used for cross-dataset summaries)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise SimulationError("cannot take the geometric mean of no values")
    if np.any(array <= 0):
        raise SimulationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))
