"""Cross-dataset comparison helpers.

The paper's headline numbers are geometric means across the nine datasets
(e.g. "SGCN achieves 1.66x speedup over GCNAX in geometric mean").  This
module aggregates per-dataset :class:`~repro.core.results.ComparisonResult`
objects into those summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.results import ComparisonResult, geometric_mean
from repro.errors import SimulationError


def geomean_speedups(
    comparisons: Sequence[ComparisonResult],
    baseline: str = "gcnax",
) -> Dict[str, float]:
    """Geometric-mean speedup of every accelerator across datasets.

    Args:
        comparisons: One :class:`ComparisonResult` per dataset; every one
            must contain the baseline and the same set of accelerators.
        baseline: Normalisation baseline.
    """
    if not comparisons:
        raise SimulationError("need at least one comparison")
    accelerators = set(comparisons[0].accelerators())
    for comparison in comparisons:
        accelerators &= set(comparison.accelerators())
    summary: Dict[str, float] = {}
    for name in sorted(accelerators):
        per_dataset = [comparison.speedups(baseline)[name] for comparison in comparisons]
        summary[name] = geometric_mean(per_dataset)
    return summary


def geomean_normalized_energy(
    comparisons: Sequence[ComparisonResult],
    baseline: str = "gcnax",
) -> Dict[str, float]:
    """Geometric-mean normalised energy of every accelerator across datasets."""
    if not comparisons:
        raise SimulationError("need at least one comparison")
    accelerators = set(comparisons[0].accelerators())
    for comparison in comparisons:
        accelerators &= set(comparison.accelerators())
    summary: Dict[str, float] = {}
    for name in sorted(accelerators):
        per_dataset = [
            comparison.normalized_energy(baseline)[name] for comparison in comparisons
        ]
        summary[name] = geometric_mean(per_dataset)
    return summary


def speedup_table(
    comparisons: Sequence[ComparisonResult],
    baseline: str = "gcnax",
    accelerators: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Tabulate per-dataset speedups (rows) per accelerator (columns).

    The returned list of dictionaries is what the benchmark harness prints as
    the regenerated Fig. 11 data, with a final geometric-mean row.
    """
    if not comparisons:
        raise SimulationError("need at least one comparison")
    names = list(accelerators) if accelerators else sorted(comparisons[0].accelerators())
    rows: List[Dict[str, object]] = []
    for comparison in comparisons:
        speedups = comparison.speedups(baseline)
        row: Dict[str, object] = {"dataset": comparison.dataset}
        for name in names:
            row[name] = speedups.get(name)
        rows.append(row)
    geo = geomean_speedups(comparisons, baseline)
    geo_row: Dict[str, object] = {"dataset": "geomean"}
    for name in names:
        geo_row[name] = geo.get(name)
    rows.append(geo_row)
    return rows
