"""High-level API: configuration, simulation entry points, and results."""

from __future__ import annotations

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    EngineConfig,
    SystemConfig,
    HBM1,
    HBM2,
)
from repro.core.results import LayerResult, SimulationResult, ComparisonResult
from repro.core.api import simulate, compare_accelerators, available_accelerators

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "EngineConfig",
    "SystemConfig",
    "HBM1",
    "HBM2",
    "LayerResult",
    "SimulationResult",
    "ComparisonResult",
    "simulate",
    "compare_accelerators",
    "available_accelerators",
]
