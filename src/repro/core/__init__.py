"""High-level API: configuration, run descriptions, sessions, and results."""

from __future__ import annotations

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    EngineConfig,
    SystemConfig,
    HBM1,
    HBM2,
)
from repro.core.results import LayerResult, SimulationResult, ComparisonResult
from repro.core.runspec import (
    DRAM_GENERATIONS,
    RunSpec,
    SUPPORTED_OVERRIDES,
    build_config,
)
from repro.core.session import Session, default_session, reset_default_session
from repro.core.api import simulate, compare_accelerators, available_accelerators

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "EngineConfig",
    "SystemConfig",
    "HBM1",
    "HBM2",
    "LayerResult",
    "SimulationResult",
    "ComparisonResult",
    "DRAM_GENERATIONS",
    "RunSpec",
    "SUPPORTED_OVERRIDES",
    "build_config",
    "Session",
    "default_session",
    "reset_default_session",
    "simulate",
    "compare_accelerators",
    "available_accelerators",
]
