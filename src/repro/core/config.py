"""Hardware configuration dataclasses (paper Table III).

The configuration mirrors the system configuration used by SGCN's evaluation:

* accelerator engines run at 1 GHz,
* the combination engine is a 32x32 systolic array,
* the aggregation engine is a 16-way SIMD unit,
* there are 8 aggregation and 8 combination engines,
* a 512 KB, 16-way, LRU global cache,
* HBM2 off-chip memory with 256 GB/s peak bandwidth, 8 channels and 4x4 banks.

All values are overridable so the sensitivity studies (cache size, number of
engines, HBM generation) can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.errors import ConfigurationError

#: Size of a cacheline / minimum DRAM access granularity in bytes.
CACHELINE_BYTES = 64

#: Bytes per feature element (32-bit fixed point per Table III).
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of the on-chip global cache.

    Attributes:
        capacity_bytes: Total cache capacity in bytes (paper default 512 KB).
        ways: Set associativity (paper default 16).
        line_bytes: Cacheline size in bytes (64 B).
        replacement: Replacement policy name; only ``"lru"`` is implemented.
        schedule_capacity_bytes: Capacity the *static schedule* (tiling, psum
            buffer split, pinned-row selection) is planned for.  ``None`` means
            the schedule is planned for ``capacity_bytes`` — the default, and
            the only behaviour before capacity sensitivity sweeps existed.
            Sweeps that resize the physical cache under a fixed design set this
            to the nominal capacity so every capacity point shares one trace
            and schedule and only the replay hit test changes.
    """

    capacity_bytes: int = 512 * 1024
    ways: int = 16
    line_bytes: int = CACHELINE_BYTES
    replacement: str = "lru"
    schedule_capacity_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.ways <= 0:
            raise ConfigurationError("cache associativity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("cache line size must be a positive power of two")
        if self.capacity_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError(
                "cache capacity must be divisible by ways * line size "
                f"(got {self.capacity_bytes} / ({self.ways} * {self.line_bytes}))"
            )
        if self.replacement not in ("lru",):
            raise ConfigurationError(f"unsupported replacement policy: {self.replacement!r}")
        if self.schedule_capacity_bytes is not None and self.schedule_capacity_bytes <= 0:
            raise ConfigurationError("schedule capacity must be positive")

    @property
    def schedule_capacity(self) -> int:
        """Capacity in bytes the static schedule is planned for."""
        # The schedule-at-nominal contract (PR 9): a replay-time capacity
        # override pins schedule_capacity_bytes to the nominal value, so
        # reading it here never lets a replay knob reshape the schedule.
        if self.schedule_capacity_bytes is not None:  # repro: identity-exempt[CacheConfig.schedule_capacity_bytes] pinned to nominal by build_config when capacity is overridden
            return self.schedule_capacity_bytes  # repro: identity-exempt[CacheConfig.schedule_capacity_bytes] pinned to nominal by build_config when capacity is overridden
        return self.capacity_bytes  # repro: identity-exempt[CacheConfig.capacity_bytes] fallback only when no override pinned a schedule capacity, i.e. capacity is nominal

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.capacity_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        """Total number of cachelines the cache can hold."""
        # Schedule-side use sizes the trace at nominal capacity; capacity
        # overrides replay against the capacity spectrum instead of
        # re-planning, and line size is a structural constant (never
        # overridable), so neither read can desynchronise a cache key.
        return self.capacity_bytes // self.line_bytes  # repro: identity-exempt[CacheConfig.capacity_bytes, CacheConfig.line_bytes] schedule sizes traces at nominal capacity; line size is structural

    def scaled(self, factor: float) -> "CacheConfig":
        """Return a copy whose capacity is scaled by ``factor``.

        The capacity is rounded to the nearest legal value (a multiple of
        ``ways * line_bytes``) and clamped to at least one line per way.
        Used when datasets are scaled down so that the working-set-to-cache
        ratio of the paper's configuration is preserved.
        """
        unit = self.ways * self.line_bytes
        capacity = max(unit, int(round(self.capacity_bytes * factor / unit)) * unit)
        schedule = self.schedule_capacity_bytes
        if schedule is not None:
            schedule = max(unit, int(round(schedule * factor / unit)) * unit)
        return replace(self, capacity_bytes=capacity, schedule_capacity_bytes=schedule)


@dataclass(frozen=True)
class DRAMConfig:
    """Configuration of the off-chip HBM memory.

    Attributes:
        name: Human readable name, e.g. ``"HBM2"``.
        peak_bandwidth_gbps: Peak bandwidth in GB/s.
        channels: Number of independent channels.
        banks_per_channel: Banks per channel (paper lists 4x4 = 16).
        burst_bytes: Minimum burst size in bytes.
        row_buffer_bytes: Row buffer (page) size per bank.
        base_efficiency: Fraction of peak bandwidth achievable for perfectly
            streamed, aligned accesses.
        random_efficiency: Fraction of peak bandwidth achievable for fully
            random single-burst accesses.
    """

    name: str = "HBM2"
    peak_bandwidth_gbps: float = 256.0
    channels: int = 8
    banks_per_channel: int = 16
    burst_bytes: int = 64
    row_buffer_bytes: int = 1024
    base_efficiency: float = 0.80
    random_efficiency: float = 0.50

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ConfigurationError("peak bandwidth must be positive")
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigurationError("channels and banks must be positive")
        if self.burst_bytes <= 0:
            raise ConfigurationError("burst size must be positive")
        if not (0.0 < self.random_efficiency <= self.base_efficiency <= 1.0):
            raise ConfigurationError(
                "efficiencies must satisfy 0 < random <= base <= 1 "
                f"(got random={self.random_efficiency}, base={self.base_efficiency})"
            )

    def bytes_per_cycle(self, frequency_ghz: float) -> float:
        """Peak deliverable bytes per accelerator cycle at ``frequency_ghz``."""
        if frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        return self.peak_bandwidth_gbps / frequency_ghz


#: The two HBM generations used in the scalability study (Fig. 18).
HBM2 = DRAMConfig(name="HBM2", peak_bandwidth_gbps=256.0)
HBM1 = DRAMConfig(name="HBM1", peak_bandwidth_gbps=128.0, row_buffer_bytes=1024)


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of the compute engines.

    Attributes:
        frequency_ghz: Accelerator clock (1 GHz in the paper).
        num_aggregation_engines: Number of parallel aggregation engines.
        num_combination_engines: Number of parallel combination engines.
        simd_width: SIMD lanes (multipliers) per aggregation engine; 16 lanes
            process one 64-byte cacheline of fp32/fixed32 values per cycle.
        systolic_rows: Rows of the combination systolic array.
        systolic_cols: Columns of the combination systolic array.
    """

    frequency_ghz: float = 1.0
    num_aggregation_engines: int = 8
    num_combination_engines: int = 8
    simd_width: int = 16
    systolic_rows: int = 32
    systolic_cols: int = 32

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        for name in (
            "num_aggregation_engines",
            "num_combination_engines",
            "simd_width",
            "systolic_rows",
            "systolic_cols",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Full system configuration (Table III of the paper).

    Attributes:
        engines: Compute-engine configuration.
        cache: Global cache configuration.
        dram: Off-chip memory configuration.
        sgcn_slice_size: BEICSR unit slice size ``C`` (elements); paper
            default 96.
        sac_strip_height: Strip height used by sparsity-aware cooperation;
            paper default 32 vertices.
        pipeline_phases: Whether aggregation and combination are pipelined
            (overlapped) as in the SGCN/HyGCN/GCNAX designs.
    """

    engines: EngineConfig = field(default_factory=EngineConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMConfig = field(default_factory=lambda: HBM2)
    sgcn_slice_size: int = 96
    sac_strip_height: int = 32
    pipeline_phases: bool = True

    def __post_init__(self) -> None:
        if self.sgcn_slice_size <= 0:
            raise ConfigurationError("slice size must be positive")
        if self.sac_strip_height <= 0:
            raise ConfigurationError("SAC strip height must be positive")

    def with_cache_capacity(self, capacity_bytes: int) -> "SystemConfig":
        """Return a copy with a different cache capacity."""
        return replace(self, cache=replace(self.cache, capacity_bytes=capacity_bytes))

    def with_engines(self, num_engines: int) -> "SystemConfig":
        """Return a copy with ``num_engines`` aggregation and combination engines."""
        return replace(
            self,
            engines=replace(
                self.engines,
                num_aggregation_engines=num_engines,
                num_combination_engines=num_engines,
            ),
        )

    def with_dram(self, dram: DRAMConfig) -> "SystemConfig":
        """Return a copy using a different DRAM configuration."""
        return replace(self, dram=dram)

    def with_slice_size(self, slice_size: int) -> "SystemConfig":
        """Return a copy with a different BEICSR unit slice size."""
        return replace(self, sgcn_slice_size=slice_size)

    def describe(self) -> Dict[str, object]:
        """Return a flat dictionary describing the configuration.

        This is the representation used to regenerate the paper's Table III.
        """
        return {
            "frequency": f"{self.engines.frequency_ghz:g} GHz",
            "combination": (
                f"{self.engines.systolic_rows}x{self.engines.systolic_cols} systolic array"
            ),
            "aggregation": f"{self.engines.simd_width}-way SIMD",
            "aggregation_engines": self.engines.num_aggregation_engines,
            "combination_engines": self.engines.num_combination_engines,
            "cache_capacity": f"{self.cache.capacity_bytes // 1024} KB",
            "cache_ways": self.cache.ways,
            "cache_replacement": self.cache.replacement.upper(),
            "dram": self.dram.name,
            "dram_peak_bandwidth": f"{self.dram.peak_bandwidth_gbps:g} GB/s",
            "dram_channels": self.dram.channels,
            "dram_banks": self.dram.banks_per_channel,
        }
