"""Generic name-to-factory registry shared by every pluggable subsystem.

The library exposes several families of pluggable components — accelerator
models and sparse feature formats today, more backends tomorrow.  Each family
needs the same machinery: case/dash/space folding, alternative spellings
(aliases), registration of user extensions, a consistent "unknown name" error,
and a way for tests to register a component *temporarily* without leaking
global state into the next test module.  :class:`Registry` implements that
machinery once; :mod:`repro.accelerator.registry` and
:mod:`repro.formats.registry` are thin instantiations of it.

Example::

    from repro.registry import Registry

    WIDGETS: Registry[Widget] = Registry("widget")
    WIDGETS.register("fancy", FancyWidget, aliases=("fw",))
    WIDGETS.get("Fancy")          # case-insensitive
    WIDGETS.get("fw")             # alias
    with WIDGETS.temporary("mock", MockWidget):
        ...                       # visible only inside the block
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Type,
    TypeVar,
)

from repro.errors import ConfigurationError, ReproError

T = TypeVar("T")


class Registry(Generic[T]):
    """A case-folding registry mapping names (and aliases) to factories.

    Args:
        kind: Human-readable component family name used in error messages
            (e.g. ``"accelerator"``, ``"format"``).
        error_cls: :class:`~repro.errors.ReproError` subclass raised for
            unknown names and duplicate registrations, so each family keeps
            its established exception type.
    """

    def __init__(
        self, kind: str, error_cls: Type[ReproError] = ConfigurationError
    ) -> None:
        self.kind = kind
        self.error_cls = error_cls
        self._factories: Dict[str, Callable[[], T]] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Name resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def fold(name: str) -> str:
        """Normalise spelling: lower-case, dashes/spaces become underscores."""
        return name.strip().lower().replace("-", "_").replace(" ", "_")

    def canonical(self, name: str) -> str:
        """The canonical registry key ``name`` resolves to.

        Folds case/dashes/spaces and follows aliases; never raises, so it is
        safe to use for identity folding before a name is validated.
        """
        key = self.fold(name)
        return self._aliases.get(key, key)

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._factories

    def __len__(self) -> int:
        return len(self._factories)

    def names(self) -> List[str]:
        """Sorted canonical names of every registered component."""
        return sorted(self._factories)

    def aliases(self) -> Dict[str, str]:
        """Copy of the alias map (alias key -> canonical name)."""
        return dict(self._aliases)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        factory: Callable[[], T],
        *,
        aliases: Sequence[str] = (),
        overwrite: bool = False,
    ) -> None:
        """Register ``factory`` under ``name`` (plus optional ``aliases``).

        Raises:
            error_cls: If ``name`` (or an alias) collides with an existing
                name or alias and ``overwrite`` is false.
        """
        key = self.fold(name)
        if not overwrite and (key in self._factories or key in self._aliases):
            raise self.error_cls(f"{self.kind} {name!r} is already registered")
        # Validate every alias before mutating anything, so a collision cannot
        # leave a half-registered component behind.
        alias_keys = []
        for alias in aliases:
            alias_key = self.fold(alias)
            if alias_key == key or alias_key in alias_keys:
                continue
            taken = alias_key in self._factories or alias_key in self._aliases
            if not overwrite and taken:
                raise self.error_cls(
                    f"{self.kind} alias {alias!r} is already registered"
                )
            alias_keys.append(alias_key)
        self._aliases.pop(key, None)
        self._factories[key] = factory
        for alias_key in alias_keys:
            # Only reachable with overwrite=True: an alias taking over an
            # existing canonical name must also evict that factory, or it
            # would linger in names() while being unreachable.
            self._factories.pop(alias_key, None)
            self._aliases[alias_key] = key

    def unregister(self, name: str) -> None:
        """Remove ``name`` (and any aliases pointing at it).

        Raises:
            error_cls: If ``name`` is not registered.
        """
        key = self.canonical(name)
        if key not in self._factories:
            raise self.error_cls(
                f"cannot unregister unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names())}"
            )
        del self._factories[key]
        for alias in [a for a, target in self._aliases.items() if target == key]:
            del self._aliases[alias]

    @contextmanager
    def temporary(
        self, name: str, factory: Callable[[], T]
    ) -> Iterator[Callable[[], T]]:
        """Register ``factory`` for the duration of a ``with`` block.

        An existing registration under the same name — including a name
        reached through an alias, e.g. ``"awb-gcn"`` — is shadowed and
        restored on exit, so tests can plug in mocks without leaking state::

            with ACCELERATORS.temporary("mock", MockModel):
                simulate("cora", "mock")
        """
        key = self.canonical(name)
        previous: Optional[Callable[[], T]] = self._factories.get(key)
        self._factories[key] = factory
        try:
            yield factory
        finally:
            if previous is None:
                self._factories.pop(key, None)
            else:
                self._factories[key] = previous

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def factory(self, name: str) -> Callable[[], T]:
        """The registered factory for ``name``.

        Raises:
            error_cls: If ``name`` is not registered.
        """
        key = self.canonical(name)
        if key not in self._factories:
            raise self.error_cls(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            )
        return self._factories[key]

    def get(self, name: str) -> T:
        """Instantiate the component registered under ``name``.

        Raises:
            error_cls: If ``name`` is not registered.
        """
        return self.factory(name)()


__all__ = ["Registry"]
