"""F1/F2/F3: identity-coverage contracts re-derived from the whole program.

These rules run on the interprocedural layer (:mod:`repro.analysis.flow`)
and, like C1, arm themselves only when the contract's endpoints are inside
the linted module set — linting a single file never produces whole-program
noise.

* **F1 ``identity-covers-reads``** — every ``RunSpec``/``DesignPoint``/
  ``CacheConfig`` attribute transitively read by the five pipeline stages
  (or the ``Session`` entry points that feed them) must be covered by the
  corresponding identity derivation (``RunSpec.key()``; the design-point
  field serialisation; the ``build_config`` override surface that flows
  into ``scenario_id``) or carry a reasoned
  ``# repro: identity-exempt[Class.attr] reason`` ledger comment.
* **F2 ``replay-class-partition``** — the schedule-stage vs replay-stage
  read partition is re-derived from the AST and checked against
  ``REPLAY_KNOB_OVERRIDES``: no schedule-stage read may be classed as a
  replay knob, and every replay-only override key must be.
* **F3 ``memo-key-purity``** — functions feeding a memoized/cached path
  (the five stages plus the ``ReplayEngine``/``TraceCache`` methods) must
  not read mutable module globals, environment variables, or undeclared
  ``self`` state: anything outside the blessed setter/registry surfaces
  either joins a cache key or carries a ledger entry explaining why it
  cannot change results.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, LintModule, Rule
from repro.analysis.flow import (
    IDENTITY_CLASS_NAMES,
    PIPELINE_STAGES,
    PURITY_EXEMPT_MODULE_PREFIXES,
    REPLAY_STAGES,
    SCHEDULE_STAGES,
    Exemption,
    GlobalRead,
    ProjectFlow,
    ReadSite,
)

#: Name of the assignment declaring the replay-knob equivalence class.
REPLAY_KNOB_SET_NAME = "REPLAY_KNOB_OVERRIDES"

#: Name of the assignment declaring the supported override keys.
SUPPORTED_SET_NAME = "SUPPORTED_OVERRIDES"

#: Function-name prefixes blessed to touch module globals (the setter
#: surfaces W1 already polices).
BLESSED_PREFIXES = ("set_", "reset_", "register_")

_FlowKey = Tuple[Tuple[str, int], ...]
_FLOW_CACHE: List[Tuple[_FlowKey, ProjectFlow]] = []


def project_flow(modules: Sequence[LintModule]) -> ProjectFlow:
    """The shared :class:`ProjectFlow` of ``modules`` (built once per run).

    All three F-rules (and ``repro audit``) receive the same module list
    within one ``run_lint`` call; a single-slot cache keyed on the parsed
    trees keeps the graph construction from running three times.
    """
    key: _FlowKey = tuple((m.display_path, id(m.tree)) for m in modules)
    if _FLOW_CACHE and _FLOW_CACHE[0][0] == key:
        return _FLOW_CACHE[0][1]
    flow = ProjectFlow(modules)
    _FLOW_CACHE[:] = [(key, flow)]
    return flow


def _site_finding(
    rule: Rule, site: ReadSite, message: str
) -> Finding:
    return Finding(
        path=site.module.display_path,
        line=site.line,
        col=site.col,
        rule=rule.rule_id,
        name=rule.name,
        message=message,
    )


def _ledger_ok(exemption: Optional[Exemption]) -> bool:
    return exemption is not None and bool(exemption.reason)


class IdentityCoverageRule(Rule):
    """F1: every stage-read identity-class attribute joins an identity."""

    rule_id = "F1"
    name = "identity-covers-reads"
    summary = (
        "attributes read by the pipeline stages must appear in the "
        "corresponding identity derivation or the identity-exempt ledger"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        flow = project_flow(modules)
        roots = flow.stage_roots() + flow.session_roots()
        if not flow.stage_roots():
            return
        reads = flow.reads_from(roots)
        coverage: Dict[Tuple[str, str], Optional[Set[str]]] = {}
        for (class_key, attr), sites in sorted(reads.items()):
            bare = class_key[1]
            if bare not in IDENTITY_CLASS_NAMES:
                continue
            if class_key not in coverage:
                coverage[class_key] = flow.identity_coverage(class_key)
            covered = coverage[class_key]
            if covered is None or attr in covered:
                continue
            subject = f"{bare}.{attr}"
            for site in sites:
                exemption = flow.exemption_for(site.module, site.line, subject)
                if _ledger_ok(exemption):
                    continue
                surface = _surface_name(bare)
                yield _site_finding(
                    self,
                    site,
                    f"{subject} is read on the pipeline path (via "
                    f"{site.function.split(':', 1)[1]}) but missing from "
                    f"{surface}; add it to the identity or a "
                    f"'# repro: identity-exempt[{subject}] reason' ledger entry",
                )
        yield from self._reasonless_ledger_entries(flow)

    def _reasonless_ledger_entries(self, flow: ProjectFlow) -> Iterator[Finding]:
        for entry in flow.all_exemptions():
            if not entry.reason:
                yield Finding(
                    path=entry.path,
                    line=entry.line,
                    col=1,
                    rule=self.rule_id,
                    name=self.name,
                    message=(
                        f"identity-exempt[{entry.subject}] ledger entry has no "
                        "reason; every exemption must say why the read cannot "
                        "change cached results"
                    ),
                )


def _surface_name(bare: str) -> str:
    if bare == "RunSpec":
        return "RunSpec.key() (scenario_id)"
    if bare == "DesignPoint":
        return "the DesignPoint field serialisation"
    return "the build_config override surface"


class ReplayClassPartitionRule(Rule):
    """F2: the replay-knob class matches the derived stage read partition."""

    rule_id = "F2"
    name = "replay-class-partition"
    summary = (
        "REPLAY_KNOB_OVERRIDES must match the AST-derived schedule-stage vs "
        "replay-stage read partition of the override surface"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        flow = project_flow(modules)
        if not flow.stage_roots():
            return
        knob_sets = flow.declared_sets(REPLAY_KNOB_SET_NAME)
        supported_sets = flow.declared_sets(SUPPORTED_SET_NAME)
        builders = flow.build_config_functions()
        if not knob_sets or not builders:
            return
        sched_reads = flow.reads_from(flow.stage_roots(SCHEDULE_STAGES))
        replay_reads = flow.reads_from(flow.stage_roots(REPLAY_STAGES))
        union_knobs: Set[str] = set()
        for _, values in knob_sets.values():
            union_knobs.update(values)
        union_supported: Set[str] = set()
        for _, values in supported_sets.values():
            union_supported.update(values)

        # Stale class entries: a declared replay knob that is not a
        # supported override key can never be exercised.
        if supported_sets:
            for mod in sorted(knob_sets):
                node, knobs = knob_sets[mod]
                for key in sorted(knobs - union_supported):
                    yield self.finding(
                        flow.modules_by_name[mod],
                        node,
                        f"replay knob {key!r} is not a supported override "
                        f"key; remove it from {REPLAY_KNOB_SET_NAME} or add "
                        f"it to {SUPPORTED_SET_NAME}",
                    )

        for builder in builders:
            mod = builder.qual.split(":", 1)[0]
            writes = flow.override_writes_for(builder)
            knob_entry = knob_sets.get(mod)
            knobs = knob_entry[1] if knob_entry is not None else union_knobs
            yield from self._schedule_reads_of_replay_knobs(
                flow, knobs, writes, sched_reads
            )
            supported_entry = supported_sets.get(mod)
            if supported_entry is None:
                continue
            if knob_entry is not None:
                anchor_mod, anchor_node = mod, knob_entry[0]
            else:
                anchor_mod = sorted(knob_sets)[0]
                anchor_node = knob_sets[anchor_mod][0]
            yield from self._unclassified_replay_knobs(
                flow.modules_by_name[anchor_mod],
                anchor_node,
                supported_entry[1],
                knobs,
                writes,
                sched_reads,
                replay_reads,
            )

    def _schedule_reads_of_replay_knobs(
        self,
        flow: ProjectFlow,
        knobs: Set[str],
        writes: Dict[str, Set[Tuple[Tuple[str, str], str]]],
        sched_reads: Dict[Tuple[Tuple[str, str], str], List[ReadSite]],
    ) -> Iterator[Finding]:
        for key in sorted(knobs):
            for write in sorted(writes.get(key, set())):
                sites = sched_reads.get(write, [])
                subject = f"{write[0][1]}.{write[1]}"
                for site in sites:
                    exemption = flow.exemption_for(site.module, site.line, subject)
                    if _ledger_ok(exemption):
                        continue
                    yield _site_finding(
                        self,
                        site,
                        f"replay knob {key!r} writes {subject}, which the "
                        f"schedule stage reads (via "
                        f"{site.function.split(':', 1)[1]}); a schedule-time "
                        "read must not be classed replay-only — fix the read "
                        "or ledger it with "
                        f"'# repro: identity-exempt[{subject}] reason'",
                    )

    def _unclassified_replay_knobs(
        self,
        anchor_module: LintModule,
        anchor_node: ast.AST,
        supported: Set[str],
        knobs: Set[str],
        writes: Dict[str, Set[Tuple[Tuple[str, str], str]]],
        sched_reads: Dict[Tuple[Tuple[str, str], str], List[ReadSite]],
        replay_reads: Dict[Tuple[Tuple[str, str], str], List[ReadSite]],
    ) -> Iterator[Finding]:
        for key in sorted(supported - knobs):
            written = writes.get(key, set())
            if not written:
                continue
            replay_hit = any(write in replay_reads for write in written)
            sched_hit = any(write in sched_reads for write in written)
            if replay_hit and not sched_hit:
                yield self.finding(
                    anchor_module,
                    anchor_node,
                    f"override key {key!r} is only read by the replay/timing "
                    f"stages; add it to {REPLAY_KNOB_SET_NAME} so grouped "
                    "sweeps amortise its trace",
                )


class MemoKeyPurityRule(Rule):
    """F3: memo-path functions read no un-keyed ambient state."""

    rule_id = "F3"
    name = "memo-key-purity"
    summary = (
        "functions feeding a memoized/cached path must not read mutable "
        "module globals, environment variables, or undeclared self state"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        flow = project_flow(modules)
        roots = flow.memo_roots()
        if not flow.stage_roots() and not roots:
            return
        for qual in sorted(flow.reachable(roots)):
            info = flow.functions[qual]
            mod = qual.split(":", 1)[0]
            if any(
                mod == prefix or mod.startswith(prefix + ".")
                for prefix in PURITY_EXEMPT_MODULE_PREFIXES
            ):
                continue
            if info.name.startswith(BLESSED_PREFIXES):
                continue
            for read in info.global_reads:
                exemption = flow.exemption_for(info.module, read.line, read.subject)
                if _ledger_ok(exemption):
                    continue
                yield Finding(
                    path=info.module.display_path,
                    line=read.line,
                    col=read.col,
                    rule=self.rule_id,
                    name=self.name,
                    message=self._message(info.name, read),
                )

    @staticmethod
    def _message(function: str, read: GlobalRead) -> str:
        if read.kind == "env":
            what = "reads the process environment"
        elif read.kind == "self":
            what = f"reads undeclared self state {read.subject}"
        else:
            what = f"reads mutable module global {read.subject.split(':', 1)[1]!r}"
        return (
            f"{function} feeds a memoized path but {what}; key it, move it "
            "behind a blessed setter surface, or ledger it with "
            f"'# repro: identity-exempt[{read.subject}] reason'"
        )


__all__ = [
    "BLESSED_PREFIXES",
    "IdentityCoverageRule",
    "MemoKeyPurityRule",
    "REPLAY_KNOB_SET_NAME",
    "ReplayClassPartitionRule",
    "SUPPORTED_SET_NAME",
    "project_flow",
]
