"""Resilience rules: failure handling goes through the policy layer.

* **R1** — ad-hoc waiting/retrying outside ``repro.resilience``.  Two
  patterns are flagged:

  - ``time.sleep(...)`` anywhere except under a ``resilience/`` path
    component.  Sleeps in simulation or orchestration code are either a
    hand-rolled backoff (use :class:`repro.resilience.policy.RetryPolicy` —
    its ``sleep_before`` is the one blessed sleep of the execution stack)
    or dead wall-clock weight that slows sweeps for nothing.
  - ``while True:`` loops whose ``try`` handler ends in ``continue`` — an
    unbounded retry loop with no attempt budget.  A transient error then
    spins forever instead of failing the run after ``max_attempts``.

  Both carry the usual escape hatch: ``# repro: noqa[R1] reason`` on the
  reported line when a sleep/loop is genuinely not a retry (rare).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.analysis.engine import Finding, LintModule, Rule

#: Path components whose modules own sleeping (the policy layer itself).
_SLEEP_ALLOWED_COMPONENTS = frozenset({"resilience"})


def _path_components(module: LintModule) -> FrozenSet[str]:
    return frozenset(module.path.parts)


def _handler_retries_forever(loop: ast.While) -> bool:
    """Whether ``loop`` is ``while True`` retrying via ``except: continue``."""
    if not (isinstance(loop.test, ast.Constant) and loop.test.value is True):
        return False
    for statement in loop.body:
        if not isinstance(statement, ast.Try):
            continue
        for handler in statement.handlers:
            if handler.body and isinstance(handler.body[-1], ast.Continue):
                return True
    return False


class AdHocRetryRule(Rule):
    """R1: no sleeps or unbounded retry loops outside ``repro.resilience``."""

    rule_id = "R1"
    name = "ad-hoc-retry"
    summary = (
        "no time.sleep or while-True/except-continue retry loops outside "
        "resilience/; use RetryPolicy (bounded attempts, seeded backoff)"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if _SLEEP_ALLOWED_COMPONENTS & _path_components(module):
            return iter(())
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if module.resolve(node.func) == "time.sleep":
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "time.sleep outside resilience/ is a hand-rolled "
                            "backoff; route waiting through "
                            "RetryPolicy.sleep_before (bounded, seeded)",
                        )
                    )
            elif isinstance(node, ast.While) and _handler_retries_forever(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "while True with an except handler ending in "
                        "continue retries without an attempt budget; use "
                        "RetryPolicy.should_retry to bound it",
                    )
                )
        return iter(findings)


__all__ = ["AdHocRetryRule"]
