"""Determinism rules: the byte-identical-golden-digest contract.

Every result in this repo is pinned by content digests (243 golden design
digests, scenario ids, trace-cache keys).  Two things break that silently:

* **D1** — random draws from *unseeded* or *global-state* RNGs.  The blessed
  pattern is ``np.random.default_rng(seed)`` with an explicit seed threaded
  from the RunSpec (see ``graphs/generators.py``); the legacy
  ``np.random.*`` module functions and the stdlib ``random`` module share
  hidden global state that any import can perturb.
* **D2** — hash/identity construction that iterates a dict or set without
  ``sorted(...)``.  Dict order is insertion order (an accident of code
  path), set order is salted per process, and either leaking into
  ``scenario_id``/fingerprint/cache-key bytes forks the content-addressed
  store.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.analysis.engine import ContextVisitor, Finding, LintModule, Rule

#: ``numpy.random`` attributes that do *not* touch the legacy global state.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # explicit-instance form; seeding is checked at call
    }
)

#: stdlib ``random`` module functions drawing from the hidden global RNG.
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "seed",
    }
)

_IDENTITY_NAME = re.compile(
    r"(scenario_id|run_id|fingerprint|digest|cache_key|identity)", re.IGNORECASE
)


def _is_identity_name(name: str) -> bool:
    return name == "key" or name.endswith("_key") or bool(_IDENTITY_NAME.search(name))


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class UnseededRngRule(Rule):
    """D1: only explicitly seeded generators may draw random numbers."""

    rule_id = "D1"
    name = "unseeded-rng"
    summary = (
        "no unseeded np.random.*/random.* draws; use "
        "np.random.default_rng(seed) with an explicit seed"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        findings: List[Finding] = []
        imports_stdlib_random = module.imports().get("random") == "random"
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith("np.random."):
                # Unimported shorthand (fixtures, doctest-extracted code).
                resolved = "numpy" + resolved[len("np") :]
            if resolved.startswith("numpy.random."):
                tail = resolved.split(".")[-1]
                if tail in ("default_rng", "RandomState"):
                    if not node.args or _is_none(node.args[0]):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"numpy.random.{tail} without an explicit "
                                "seed is nondeterministic; thread the run's "
                                "seed through (the default_rng(seed) pattern "
                                "in graphs/generators.py)",
                            )
                        )
                elif tail not in _NP_RANDOM_ALLOWED:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"numpy.random.{tail} draws from the hidden "
                            "global RNG; use np.random.default_rng(seed)",
                        )
                    )
            elif resolved.startswith("random.") and resolved.count(".") == 1:
                tail = resolved.split(".")[-1]
                named_directly = isinstance(node.func, ast.Name)
                if tail in _STDLIB_RANDOM_FUNCS and (
                    imports_stdlib_random or named_directly
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"random.{tail} uses the stdlib's process-global "
                            "RNG; use np.random.default_rng(seed)",
                        )
                    )
                elif tail == "Random" and not node.args and imports_stdlib_random:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "random.Random() without an explicit seed is "
                            "nondeterministic",
                        )
                    )
        return iter(findings)


class _IdentityIterationVisitor(ContextVisitor):
    def __init__(self, rule: "UnsortedIdentityIterationRule", module: LintModule):
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------ #
    def _in_identity_function(self) -> bool:
        return any(_is_identity_name(fn.name) for fn in self.function_stack)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, node, message))

    def _directly_sorted(self, node: ast.AST) -> bool:
        parent = self.module.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        )

    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        if self._in_identity_function():
            resolved = self.module.resolve(node.func)
            if resolved == "json.dumps":
                sort_keys = next(
                    (
                        keyword.value
                        for keyword in node.keywords
                        if keyword.arg == "sort_keys"
                    ),
                    None,
                )
                if not (
                    isinstance(sort_keys, ast.Constant) and sort_keys.value is True
                ):
                    self._flag(
                        node,
                        "json.dumps in an identity/digest function must pass "
                        "sort_keys=True, or dict insertion order leaks into "
                        "the digest",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("items", "keys", "values")
                and not node.args
                and not self._directly_sorted(node)
            ):
                self._flag(
                    node,
                    f".{node.func.attr}() feeding an identity/digest "
                    "function must be wrapped in sorted(...): dict order is "
                    "an accident of code path, not part of the identity",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def _check_iteration(self, iter_node: ast.expr) -> None:
        if not self._in_identity_function():
            return
        if isinstance(iter_node, ast.Set):
            self._flag(
                iter_node,
                "iterating a set literal in an identity/digest function is "
                "order-salted per process; sort it first",
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        ):
            self._flag(
                iter_node,
                f"iterating {iter_node.func.id}(...) in an identity/digest "
                "function is order-salted per process; sort it first",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)


class UnsortedIdentityIterationRule(Rule):
    """D2: identity/digest construction must not depend on dict/set order."""

    rule_id = "D2"
    name = "unsorted-identity-iteration"
    summary = (
        "identity/digest functions (key, *_key, scenario_id, fingerprint, "
        "digest) must sort dict/set iteration and json.dumps(sort_keys=True)"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        visitor = _IdentityIterationVisitor(self, module)
        visitor.visit(module.tree)
        return iter(visitor.findings)


__all__ = ["UnseededRngRule", "UnsortedIdentityIterationRule"]
