"""Identity-neutrality rules: observation must never touch the results.

PR 6's telemetry plane is pinned identity-neutral (243 golden digests are
byte-identical with spans on).  Two leak vectors are mechanical enough to
lint:

* **N1** — wall-clock reads (``time.time``/``perf_counter``/``monotonic``)
  outside the layers that own timing (``telemetry/``, ``bench/``,
  ``resilience/``).  A timing call in simulation code is either dead weight
  or — worse — an input to a result.  Intentional CLI progress/ETA timing
  carries an explicit ``# repro: noqa[N1]`` with its reason.
* **N2** — ``print(...)`` outside the CLI's ``OutputWriter`` and
  ``telemetry.logs``.  Everything else narrates through the ``repro.*``
  logger, so ``--quiet`` and machine-readable stdout stay trustworthy.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from repro.analysis.engine import ContextVisitor, Finding, LintModule, Rule

#: Wall-clock entry points of the stdlib ``time`` module.
_TIMING_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

#: Path components whose modules own wall-clock access.  ``resilience`` is
#: timing infrastructure by definition (deadlines, backoff, reclamation);
#: none of it ever enters a simulated result.
_TIMING_ALLOWED_COMPONENTS = frozenset({"telemetry", "bench", "resilience"})

#: Class whose methods are the CLI's one print funnel.
_PRINT_FUNNEL_CLASS = "OutputWriter"


def _path_components(module: LintModule) -> FrozenSet[str]:
    return frozenset(module.path.parts)


class TimingOutsideTelemetryRule(Rule):
    """N1: wall-clock reads live in telemetry/ and bench/ only."""

    rule_id = "N1"
    name = "timing-outside-telemetry"
    summary = (
        "no time.time/perf_counter/monotonic outside telemetry/ and bench/ "
        "(intentional CLI timing carries a noqa with its reason)"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if _TIMING_ALLOWED_COMPONENTS & _path_components(module):
            return iter(())
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.resolve(node.func)
            if resolved in _TIMING_CALLS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{resolved} outside telemetry//bench/ risks leaking "
                        "wall-clock into simulated results; route timing "
                        "through repro.telemetry spans",
                    )
                )
        return iter(findings)


class _PrintVisitor(ContextVisitor):
    def __init__(self, rule: "PrintOutsideWriterRule", module: LintModule):
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not any(cls.name == _PRINT_FUNNEL_CLASS for cls in self.class_stack)
        ):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    node,
                    "print() outside OutputWriter/telemetry.logs; route "
                    "narration through the repro.* logger or OUT.data/info/"
                    "error so --quiet and redirection behave",
                )
            )
        self.generic_visit(node)


class PrintOutsideWriterRule(Rule):
    """N2: every printed line goes through the one CLI funnel."""

    rule_id = "N2"
    name = "print-outside-writer"
    summary = (
        "no print() under src/ outside the CLI OutputWriter and "
        "telemetry.logs; use the repro.* logger or the OUT funnel"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        if module.path.name == "logs.py" and "telemetry" in module.path.parts:
            return iter(())
        visitor = _PrintVisitor(self, module)
        visitor.visit(module.tree)
        return iter(visitor.findings)


__all__ = ["PrintOutsideWriterRule", "TimingOutsideTelemetryRule"]
