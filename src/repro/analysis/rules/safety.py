"""General safety rules: patterns that corrupt state or swallow failures.

* **S1** — mutable default arguments.  A shared ``[]``/``{}`` default is
  cross-call state: the first sweep that appends to it poisons every later
  call in the process (and every later scenario in a worker).
* **S2** — bare ``except:`` / swallowed ``except BaseException:``.  Both
  catch ``KeyboardInterrupt``/``SystemExit``, so a sweep that should abort
  keeps running with half-updated state.  The repo's convention is ``except
  Exception`` with an explanatory noqa where isolation is the point (see
  ``runner._execute_payload``); ``except BaseException`` is tolerated only
  in cleanup handlers whose last statement re-raises (the atomic-write
  pattern in ``experiments.store`` / ``resilience.checkpoint``).
* **S3** — ``object.__setattr__`` on frozen dataclasses outside
  ``__post_init__``.  Frozen dataclasses are hashed and cached by identity
  fields; mutating one after construction silently invalidates every cache
  key and golden digest derived from it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.engine import ContextVisitor, Finding, LintModule, Rule

#: Callables whose results are mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _mutable_default(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it is a mutable default value, else ``None``."""
    if isinstance(node, ast.List):
        return "[]"
    if isinstance(node, ast.Dict):
        return "{}"
    if isinstance(node, ast.Set):
        return "{...}"
    if isinstance(node, ast.Call):
        dotted = node.func
        name = dotted.id if isinstance(dotted, ast.Name) else None
        if name in _MUTABLE_FACTORIES:
            return f"{name}()"
    return None


class MutableDefaultArgRule(Rule):
    """S1: no mutable default arguments."""

    rule_id = "S1"
    name = "mutable-default-arg"
    summary = "no mutable default arguments ([]/{}/set()); default to None"

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                description = _mutable_default(default)
                if description is not None:
                    findings.append(
                        self.finding(
                            module,
                            default,
                            f"mutable default {description} on {node.name}() "
                            "is shared across calls (and across pool-worker "
                            "scenarios); default to None and build inside",
                        )
                    )
        return iter(findings)


def _mentions_base_exception(node: Optional[ast.expr]) -> bool:
    """Whether an except clause's type names ``BaseException``."""
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_mentions_base_exception(element) for element in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's last statement is a bare ``raise``."""
    return (
        bool(handler.body)
        and isinstance(handler.body[-1], ast.Raise)
        and handler.body[-1].exc is None
    )


class BareExceptRule(Rule):
    """S2: no bare ``except:`` or swallowed ``except BaseException:``."""

    rule_id = "S2"
    name = "bare-except"
    summary = (
        "no bare except:, and except BaseException must end in a bare "
        "raise; catch Exception (or narrower) explicitly"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "bare except: swallows KeyboardInterrupt/SystemExit; "
                        "catch Exception (or narrower) explicitly",
                    )
                )
            elif _mentions_base_exception(node.type) and not _reraises(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "except BaseException without a trailing bare raise "
                        "swallows KeyboardInterrupt/SystemExit; re-raise "
                        "after cleanup or catch Exception instead",
                    )
                )
        return iter(findings)


class _FrozenSetattrVisitor(ContextVisitor):
    def __init__(self, rule: "FrozenSetattrRule", module: LintModule):
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        if self.module.resolve(node.func) == "object.__setattr__":
            function = self.current_function
            if function is None or function.name != "__post_init__":
                where = function.name + "()" if function else "module scope"
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        "object.__setattr__ outside __post_init__ (in "
                        f"{where}) mutates a frozen dataclass after its "
                        "hash/cache identity was minted; derive a new "
                        "instance instead",
                    )
                )
        self.generic_visit(node)


class FrozenSetattrRule(Rule):
    """S3: frozen dataclasses are only written during ``__post_init__``."""

    rule_id = "S3"
    name = "frozen-setattr-outside-post-init"
    summary = (
        "object.__setattr__ only inside __post_init__; frozen instances "
        "are immutable once their identity exists"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        visitor = _FrozenSetattrVisitor(self, module)
        visitor.visit(module.tree)
        return iter(visitor.findings)


__all__ = ["BareExceptRule", "FrozenSetattrRule", "MutableDefaultArgRule"]
