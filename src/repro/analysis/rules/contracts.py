"""Cross-module contract rule: the worker wire protocol stays closed.

Sweep results cross the pool boundary as plain dictionaries: produced by
``runner._execute_payload`` (and the ``_worker_execute`` pool entry point),
consumed by ``SweepRunner._finish`` and the telemetry aggregation on
``SweepReport``; session snapshots produced by ``Session.metrics_snapshot``
are consumed by ``telemetry.metrics.run_metrics_document``.  Nothing ties
the two ends together at runtime — a consumer reading a key the producer
stopped emitting just sees ``None`` (or raises deep inside a sweep).

**C1** re-derives both key sets from the AST and flags every key consumed
but never produced:

* top-level payload keys read in ``_finish`` vs. written in
  ``_execute_payload``/``_worker_execute``;
* error-block keys read off the payload's ``error`` value vs. the error
  dict literals produced;
* telemetry-delta keys read in ``SweepReport`` methods vs. the ``telemetry``
  dict built in ``_execute_payload``;
* snapshot keys read in ``run_metrics_document`` vs. the dict returned by
  ``Session.metrics_snapshot`` (metrics schema v1).

Each check only arms when both of its endpoints are present in the linted
module set, so linting a single unrelated file stays silent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.engine import Finding, LintModule, Rule

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _find_function(
    modules: Sequence[LintModule], name: str
) -> Optional[Tuple[LintModule, _FunctionNode]]:
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == name:
                    return module, node
    return None


def _find_class(
    modules: Sequence[LintModule], name: str
) -> Optional[Tuple[LintModule, ast.ClassDef]]:
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return module, node
    return None


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _dict_keys(node: ast.Dict) -> Set[str]:
    keys: Set[str] = set()
    for key in node.keys:
        if key is not None:
            value = _const_str(key)
            if value is not None:
                keys.add(value)
    return keys


def _dict_value(node: ast.Dict, key: str) -> Optional[ast.expr]:
    for candidate, value in zip(node.keys, node.values):
        if candidate is not None and _const_str(candidate) == key:
            return value
    return None


def _top_level_dicts(expr: ast.AST) -> List[ast.Dict]:
    """Dict literals in ``expr`` that are not nested inside another dict."""
    collected: List[ast.Dict] = []

    def descend(node: ast.AST, inside: bool) -> None:
        nested = inside
        if isinstance(node, ast.Dict):
            if not inside:
                collected.append(node)
            nested = True
        for child in ast.iter_child_nodes(node):
            descend(child, nested)

    descend(expr, False)
    return collected


def _produced_keys(function: _FunctionNode, var: str) -> Tuple[Set[str], Set[str]]:
    """(top-level, error-block) keys written to dictionaries named ``var``.

    Covers dict literals assigned to ``var``, dict literals in ``return``
    statements, and ``var["key"] = ...`` subscript stores.
    """
    top: Set[str] = set()
    error: Set[str] = set()

    def absorb(dictionary: ast.Dict) -> None:
        top.update(_dict_keys(dictionary))
        error_value = _dict_value(dictionary, "error")
        if isinstance(error_value, ast.Dict):
            error.update(_dict_keys(error_value))

    for node in ast.walk(function):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if not isinstance(value, ast.Dict):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == var:
                    absorb(value)
        elif isinstance(node, ast.Return) and node.value is not None:
            for dictionary in _top_level_dicts(node.value):
                absorb(dictionary)
        elif isinstance(node, ast.Subscript):
            parent_store = isinstance(node.ctx, ast.Store)
            if (
                parent_store
                and isinstance(node.value, ast.Name)
                and node.value.id == var
            ):
                key = _const_str(node.slice)
                if key is not None:
                    top.add(key)
    return top, error


def _assigned_dict_keys(function: _FunctionNode, var: str) -> Set[str]:
    """Keys of dict literals assigned to the name ``var`` inside ``function``."""
    keys: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == var:
                    keys.update(_dict_keys(node.value))
    return keys


def _consumed_keys(root: ast.AST, var: str) -> List[Tuple[str, ast.AST]]:
    """``(key, node)`` pairs read from the name ``var`` via ``[...]``/``.get``."""
    consumed: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(root):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if isinstance(node.value, ast.Name) and node.value.id == var:
                key = _const_str(node.slice)
                if key is not None:
                    consumed.append((key, node))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Name)
                and func.value.id == var
                and node.args
            ):
                key = _const_str(node.args[0])
                if key is not None:
                    consumed.append((key, node))
    return consumed


def _attribute_consumed_keys(
    root: ast.AST, attribute: str
) -> List[Tuple[str, ast.AST]]:
    """Keys read from any ``<expr>.<attribute>`` via ``[...]``/``.get(...)``."""
    consumed: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(root):
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == attribute
            ):
                key = _const_str(node.slice)
                if key is not None:
                    consumed.append((key, node))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == attribute
                and node.args
            ):
                key = _const_str(node.args[0])
                if key is not None:
                    consumed.append((key, node))
    return consumed


def _first_parameter(function: _FunctionNode) -> Optional[str]:
    for arg in function.args.posonlyargs + function.args.args:
        if arg.arg not in ("self", "cls"):
            return arg.arg
    return None


class WorkerPayloadContractRule(Rule):
    """C1: worker-payload/metrics keys consumed must be keys produced."""

    rule_id = "C1"
    name = "worker-payload-contract"
    summary = (
        "keys consumed from the sweep worker payload (SweepRunner._finish, "
        "SweepReport telemetry) and from metrics snapshots must be produced "
        "by _execute_payload/_worker_execute/Session.metrics_snapshot"
    )

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_payload(modules))
        findings.extend(self._check_telemetry_delta(modules))
        findings.extend(self._check_snapshot(modules))
        return iter(findings)

    # ------------------------------------------------------------------ #
    def _check_payload(self, modules: Sequence[LintModule]) -> List[Finding]:
        producer = _find_function(modules, "_execute_payload")
        consumer = _find_function(modules, "_finish")
        if producer is None or consumer is None:
            return []
        produced_top, produced_error = _produced_keys(producer[1], "payload")
        pool_entry = _find_function(modules, "_worker_execute")
        if pool_entry is not None:
            pool_top, pool_error = _produced_keys(pool_entry[1], "payload")
            produced_top |= pool_top
            produced_error |= pool_error
        consumer_module, consumer_fn = consumer
        findings: List[Finding] = []
        for key, node in _consumed_keys(consumer_fn, "payload"):
            if key not in produced_top:
                findings.append(
                    self.finding(
                        consumer_module,
                        node,
                        f"_finish reads payload[{key!r}] but "
                        "_execute_payload/_worker_execute never produce that "
                        "key; the worker wire protocol is out of sync",
                    )
                )
        for key, node in _consumed_keys(consumer_fn, "error"):
            if produced_error and key not in produced_error:
                findings.append(
                    self.finding(
                        consumer_module,
                        node,
                        f"_finish reads error block key {key!r} but the "
                        "producer's error dict only carries "
                        f"{sorted(produced_error)}",
                    )
                )
        return findings

    # ------------------------------------------------------------------ #
    def _check_telemetry_delta(
        self, modules: Sequence[LintModule]
    ) -> List[Finding]:
        producer = _find_function(modules, "_execute_payload")
        report = _find_class(modules, "SweepReport")
        if producer is None or report is None:
            return []
        produced = _assigned_dict_keys(producer[1], "telemetry")
        if not produced:
            return []
        report_module, report_class = report
        findings: List[Finding] = []
        for key, node in _attribute_consumed_keys(report_class, "telemetry"):
            if key not in produced:
                findings.append(
                    self.finding(
                        report_module,
                        node,
                        f"SweepReport reads telemetry[{key!r}] but "
                        "_execute_payload's telemetry delta only carries "
                        f"{sorted(produced)}",
                    )
                )
        return findings

    # ------------------------------------------------------------------ #
    def _check_snapshot(self, modules: Sequence[LintModule]) -> List[Finding]:
        producer = _find_function(modules, "metrics_snapshot")
        consumer = _find_function(modules, "run_metrics_document")
        if producer is None or consumer is None:
            return []
        produced: Set[str] = set()
        for node in ast.walk(producer[1]):
            if isinstance(node, ast.Return) and node.value is not None:
                for dictionary in _top_level_dicts(node.value):
                    produced.update(_dict_keys(dictionary))
        if not produced:
            return []
        parameter = _first_parameter(consumer[1])
        if parameter is None:
            return []
        consumer_module, consumer_fn = consumer
        findings: List[Finding] = []
        for key, node in _consumed_keys(consumer_fn, parameter):
            if key not in produced:
                findings.append(
                    self.finding(
                        consumer_module,
                        node,
                        f"run_metrics_document reads snapshot[{key!r}] but "
                        "Session.metrics_snapshot never produces that key "
                        "(metrics schema v1 drift)",
                    )
                )
        return findings


__all__ = ["WorkerPayloadContractRule"]
