"""Worker-safety rules: the SweepRunner pool protocol.

Pool workers are long-lived processes that execute many scenarios.  State
they mutate outside the session object leaks into every later scenario on
that worker — and *differs* from what a serial run of the same sweep sees.
The repo's convention is that module-level mutables (``_replay_backend``,
``_DEFAULT_SESSION``, registries) are written only through a small set of
explicit setter/reset functions, which callers use symmetrically
(set/restore) and tests patch knowingly.

**W1** flags the two write shapes that violate this:

* rebinding a module global (``global name`` + assignment) from a function
  that is not a blessed setter;
* assigning attributes on an *imported* name (``pipeline._replay_backend =
  "legacy"``) — cross-module monkeypatching that bypasses the setter and
  its validation entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from repro.analysis.engine import ContextVisitor, Finding, LintModule, Rule

#: Function-name prefixes blessed to write module globals.
_SETTER_PREFIXES = ("set_", "reset_", "configure_", "register_", "unregister_")

#: Exact function names additionally blessed (memoizing process-wide getters).
_SETTER_NAMES = frozenset({"default_session", "_worker_session"})


def _is_blessed(name: str) -> bool:
    return name.startswith(_SETTER_PREFIXES) or name in _SETTER_NAMES


def _assigned_names(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef]
) -> Set[str]:
    """Names assigned anywhere inside ``function`` (plain targets only)."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


class _GlobalWriteVisitor(ContextVisitor):
    def __init__(self, rule: "WorkerGlobalWriteRule", module: LintModule):
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------ #
    def visit_Global(self, node: ast.Global) -> None:
        function = self.current_function
        if function is not None and not _is_blessed(function.name):
            written = sorted(set(node.names) & _assigned_names(function))
            if written:
                self.findings.append(
                    self.rule.finding(
                        self.module,
                        node,
                        f"{function.name}() rebinds module global(s) "
                        f"{', '.join(written)}; pool workers inherit and "
                        "keep such state across scenarios — route the write "
                        "through an explicit set_*/reset_* setter",
                    )
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------ #
    def _check_attribute_write(self, target: ast.expr, node: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if not isinstance(base, ast.Name):
            return
        if base.id not in self.module.imports():
            return
        function = self.current_function
        if function is not None and _is_blessed(function.name):
            return
        origin = self.module.imports()[base.id]
        self.findings.append(
            self.rule.finding(
                self.module,
                node,
                f"assignment to {base.id}.{target.attr} monkeypatches "
                f"imported state ({origin}); call its setter instead — "
                "direct writes skip validation and desynchronize pool "
                "workers from the parent process",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_attribute_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_attribute_write(node.target, node)
        self.generic_visit(node)


class WorkerGlobalWriteRule(Rule):
    """W1: module-global state is written only through blessed setters."""

    rule_id = "W1"
    name = "worker-global-write"
    summary = (
        "no module-global rebinding or imported-module attribute writes "
        "outside set_*/reset_*/configure_* setters (pool-worker safety)"
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        visitor = _GlobalWriteVisitor(self, module)
        visitor.visit(module.tree)
        return iter(visitor.findings)


__all__ = ["WorkerGlobalWriteRule"]
