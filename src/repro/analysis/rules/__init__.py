"""The rule battery: every invariant the lint gate enforces.

Rules are instantiated once, in a stable order (determinism, neutrality,
worker safety, general safety, contracts, resilience); ``repro lint`` runs
all of them
unless ``--rule`` narrows the set.  INVARIANTS.md catalogues what each rule
protects and how to suppress it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Rule
from repro.analysis.rules.contracts import WorkerPayloadContractRule
from repro.analysis.rules.determinism import (
    UnseededRngRule,
    UnsortedIdentityIterationRule,
)
from repro.analysis.rules.identity import (
    IdentityCoverageRule,
    MemoKeyPurityRule,
    ReplayClassPartitionRule,
)
from repro.analysis.rules.neutrality import (
    PrintOutsideWriterRule,
    TimingOutsideTelemetryRule,
)
from repro.analysis.rules.resilience import AdHocRetryRule
from repro.analysis.rules.safety import (
    BareExceptRule,
    FrozenSetattrRule,
    MutableDefaultArgRule,
)
from repro.analysis.rules.workers import WorkerGlobalWriteRule
from repro.errors import AnalysisError

#: Every active rule, in reporting order.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRngRule(),
    UnsortedIdentityIterationRule(),
    TimingOutsideTelemetryRule(),
    PrintOutsideWriterRule(),
    WorkerGlobalWriteRule(),
    MutableDefaultArgRule(),
    BareExceptRule(),
    FrozenSetattrRule(),
    WorkerPayloadContractRule(),
    AdHocRetryRule(),
    IdentityCoverageRule(),
    ReplayClassPartitionRule(),
    MemoKeyPurityRule(),
)

#: Short ids of the active battery, in order.
RULE_IDS: Tuple[str, ...] = tuple(rule.rule_id for rule in ALL_RULES)


def get_rules(selection: Optional[Sequence[str]] = None) -> List[Rule]:
    """The rule battery, optionally narrowed to ids/names in ``selection``.

    Selection entries match a rule's short id (``D1``) or long name
    (``unseeded-rng``), case-insensitively.  Unknown entries raise
    :class:`~repro.errors.AnalysisError` listing the battery.
    """
    if selection is None:
        return list(ALL_RULES)
    by_key: Dict[str, Rule] = {}
    for rule in ALL_RULES:
        by_key[rule.rule_id.casefold()] = rule
        by_key[rule.name.casefold()] = rule
    chosen: List[Rule] = []
    for entry in selection:
        rule = by_key.get(entry.strip().casefold())
        if rule is None:
            raise AnalysisError(
                f"unknown lint rule {entry!r}; active rules: "
                + ", ".join(f"{r.rule_id} ({r.name})" for r in ALL_RULES)
            )
        if rule not in chosen:
            chosen.append(rule)
    return chosen


__all__ = [
    "ALL_RULES",
    "RULE_IDS",
    "AdHocRetryRule",
    "BareExceptRule",
    "FrozenSetattrRule",
    "IdentityCoverageRule",
    "MemoKeyPurityRule",
    "MutableDefaultArgRule",
    "PrintOutsideWriterRule",
    "ReplayClassPartitionRule",
    "TimingOutsideTelemetryRule",
    "UnseededRngRule",
    "UnsortedIdentityIterationRule",
    "WorkerGlobalWriteRule",
    "WorkerPayloadContractRule",
    "get_rules",
]
