"""Interprocedural identity-flow analysis over a linted module set.

This is the whole-program layer under the F-rules (``repro.analysis.rules.
identity``) and ``repro audit``: it builds a project call graph from the
parsed :class:`~repro.analysis.engine.LintModule` records (import-alias
aware, with method calls resolved through the known class inventory),
summarises which *tracked-class* attributes every function reads, and
propagates those summaries transitively so a pipeline stage's read-set
includes everything its callees consume.

The point of the exercise: the repo's caches are only sound while their
identity derivations (``RunSpec.key()`` / ``scenario_id``, the TraceCache
key tuple, the replay memo, ``REPLAY_KNOB_OVERRIDES``) cover every
attribute the computation actually reads.  Those identity sets are
re-derived here from the AST — not trusted — so a stage growing a new knob
read without a matching identity entry fails the lint gate instead of
silently corrupting every grouped sweep.

Reads that are *deliberately* outside an identity carry a ledger comment::

    floor = config.cache.line_bytes  # repro: identity-exempt[CacheConfig.line_bytes] structural constant

The subject in brackets is ``Class.attr`` for attribute reads,
``global:name`` for module-global reads, and ``env:os.environ`` /
``env:os.getenv`` for environment reads (the F3 subjects).  The free text
after the bracket is the *reason* and is mandatory — F1 flags reasonless
ledger entries.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.engine import LintModule, dotted_name

#: Classes whose attribute reads the flow layer records.  Everything else
#: is typed (so chains like ``context.config.cache`` resolve) but not
#: reported.
TRACKED_CLASS_NAMES: FrozenSet[str] = frozenset(
    {
        "RunSpec",
        "DesignPoint",
        "CacheConfig",
        "SystemConfig",
        "EngineConfig",
        "DRAMConfig",
    }
)

#: Tracked classes whose reads F1 checks against an identity derivation.
IDENTITY_CLASS_NAMES: Tuple[str, ...] = ("RunSpec", "DesignPoint", "CacheConfig")

#: The five pipeline stages, by module-level function name.
PIPELINE_STAGES: Tuple[str, ...] = (
    "build_context",
    "schedule",
    "replay",
    "timing",
    "energy",
)

#: Stages whose reads shape the static schedule (F2's schedule side).
SCHEDULE_STAGES: Tuple[str, ...] = ("build_context", "schedule")

#: Stages whose reads only affect replay/timing/energy (F2's replay side).
REPLAY_STAGES: Tuple[str, ...] = ("replay", "timing", "energy")

#: ``Session`` methods that feed specs into the pipeline (extra F1 roots).
SESSION_ENTRY_POINTS: Tuple[str, ...] = ("run", "run_many", "run_spectrum")

#: Classes whose methods feed a memoized path (extra F3 roots).
MEMO_CLASS_NAMES: Tuple[str, ...] = ("ReplayEngine", "TraceCache")

#: Module prefixes excluded from F3 purity analysis: their global state is
#: pinned identity-neutral by the N1/R1 contracts (spans, counters, fault
#: points never change results).
PURITY_EXEMPT_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.telemetry",
    "repro.resilience",
)

_EXEMPT_RE = re.compile(
    r"#\s*repro:\s*identity-exempt\[([^\]]+)\]\s*(.*)", re.IGNORECASE
)

#: (module dotted name, class name) — the project-unique key of a class.
ClassKey = Tuple[str, str]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


# --------------------------------------------------------------------------- #
# Ledger
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Exemption:
    """One ``# repro: identity-exempt[SUBJECT] reason`` ledger entry."""

    subject: str
    path: str
    line: int
    reason: str


def parse_exemptions(module: LintModule) -> List[Exemption]:
    """Every ledger entry of ``module`` (comma-separated subjects expand)."""
    entries: List[Exemption] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(module.source).readline))
    except (tokenize.TokenError, IndentationError):
        return entries
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _EXEMPT_RE.search(token.string)
        if match is None:
            continue
        reason = match.group(2).strip()
        for part in match.group(1).split(","):
            subject = part.strip()
            if subject:
                entries.append(
                    Exemption(
                        subject=subject,
                        path=module.display_path,
                        line=token.start[0],
                        reason=reason,
                    )
                )
    return entries


# --------------------------------------------------------------------------- #
# Inventory records
# --------------------------------------------------------------------------- #
@dataclass
class ClassInfo:
    """One class definition and the attribute surfaces rules reason about."""

    key: ClassKey
    module: LintModule
    node: ast.ClassDef
    fields: Dict[str, Optional[ast.expr]] = field(default_factory=dict)
    field_types: Dict[str, Optional[ClassKey]] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    methods: Set[str] = field(default_factory=set)
    base_dotted: List[str] = field(default_factory=list)
    self_assigned: Set[str] = field(default_factory=set)
    class_assigned: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.key[1]

    def declared_attrs(self) -> Set[str]:
        """Every attribute name the class declares through any surface."""
        return (
            set(self.fields)
            | self.properties
            | self.methods
            | self.self_assigned
            | self.class_assigned
        )


@dataclass
class GlobalRead:
    """One F3-relevant impure read inside a function body."""

    kind: str  # "global" | "env" | "self"
    subject: str  # "global:_replay_backend" | "env:os.environ" | "Cls.attr"
    line: int
    col: int


@dataclass
class ReadSite:
    """One direct attribute read of a tracked class."""

    class_key: ClassKey
    attr: str
    function: str
    module: LintModule
    line: int
    col: int

    @property
    def display(self) -> str:
        return f"{self.class_key[1]}.{self.attr}"


@dataclass
class FunctionInfo:
    """One function/method plus its direct summary."""

    qual: str
    name: str
    module: LintModule
    node: _FunctionNode
    class_key: Optional[ClassKey] = None
    calls: Set[str] = field(default_factory=set)
    reads: List[ReadSite] = field(default_factory=list)
    global_reads: List[GlobalRead] = field(default_factory=list)
    final_env: Dict[str, ClassKey] = field(default_factory=dict)
    return_class: Optional[ClassKey] = None


def module_dotted_name(module: LintModule) -> str:
    """Importable dotted name of ``module`` derived from its display path.

    ``src/repro/core/session.py`` maps to ``repro.core.session`` (everything
    up to the last ``src`` component is stripped, matching the repo layout);
    paths without a ``src`` component keep all their parts, so fixture files
    still get project-unique names.
    """
    parts = list(module.path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    cleaned = [part for part in parts if part not in ("/", "\\", "..", ".")]
    return ".".join(cleaned) if cleaned else module.path.stem


# --------------------------------------------------------------------------- #
# The project graph
# --------------------------------------------------------------------------- #
class ProjectFlow:
    """Call graph + per-function read summaries for one module set."""

    def __init__(self, modules: Sequence[LintModule]) -> None:
        self.modules: List[LintModule] = list(modules)
        self.module_names: Dict[str, str] = {}
        self.modules_by_name: Dict[str, LintModule] = {}
        self.classes: Dict[ClassKey, ClassInfo] = {}
        self.classes_by_bare: Dict[str, List[ClassKey]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.module_bindings: Dict[str, Dict[str, str]] = {}
        self.exemptions: Dict[str, List[Exemption]] = {}
        self.constant_sets: Dict[Tuple[str, str], Tuple[ast.stmt, Set[str]]] = {}
        self._transitive: Dict[FrozenSet[str], Dict[Tuple[ClassKey, str], List[ReadSite]]] = {}
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        for module in self.modules:
            name = module_dotted_name(module)
            self.module_names[module.display_path] = name
            self.modules_by_name[name] = module
            self.exemptions[module.display_path] = parse_exemptions(module)
            self.module_bindings[name] = _module_bindings(module)
            self._collect_classes(module, name)
            self._collect_constant_sets(module, name)
        for info in self.classes.values():
            for attr, annotation in info.fields.items():
                info.field_types[attr] = self._annotation_class(info.module, annotation)
        for module in self.modules:
            self._collect_functions(module, self.module_names[module.display_path])
        for info in self.functions.values():
            info.return_class = self._annotation_class(info.module, info.node.returns)
        for info in self.functions.values():
            _FunctionSummarizer(self, info).run()

    def _collect_classes(self, module: LintModule, mod_name: str) -> None:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            key = (mod_name, node.name)
            info = ClassInfo(key=key, module=module, node=node)
            for base in node.bases:
                resolved = module.resolve(base)
                if resolved is not None:
                    info.base_dotted.append(resolved)
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    info.fields[stmt.target.id] = stmt.annotation
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            info.class_assigned.add(target.id)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_property(stmt):
                        info.properties.add(stmt.name)
                    else:
                        info.methods.add(stmt.name)
                    info.self_assigned |= _self_assignments(stmt)
            self.classes[key] = info
            self.classes_by_bare.setdefault(node.name, []).append(key)

    def _collect_constant_sets(self, module: LintModule, mod_name: str) -> None:
        """Top-level ``NAME = (frozen)set/tuple/list of str`` assignments
        (plain or annotated)."""
        for node in module.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            values = _string_collection(value)
            if values is not None:
                self.constant_sets[(mod_name, target.id)] = (node, values)

    def _collect_functions(self, module: LintModule, mod_name: str) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod_name}:{node.name}"
                self.functions[qual] = FunctionInfo(
                    qual=qual, name=node.name, module=module, node=node
                )
            elif isinstance(node, ast.ClassDef):
                class_key = (mod_name, node.name)
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{mod_name}:{node.name}.{stmt.name}"
                        self.functions[qual] = FunctionInfo(
                            qual=qual,
                            name=stmt.name,
                            module=module,
                            node=stmt,
                            class_key=class_key,
                        )

    # ------------------------------------------------------------------ #
    # Name/type resolution
    # ------------------------------------------------------------------ #
    def class_for_dotted(self, dotted: Optional[str], module: LintModule) -> Optional[ClassKey]:
        """Class key for a resolved dotted name, if it names a known class."""
        if dotted is None:
            return None
        mod_part, _, last = dotted.rpartition(".")
        if mod_part:
            key = (mod_part, last)
            if key in self.classes:
                return key
        else:
            local = (self.module_names[module.display_path], last)
            if local in self.classes:
                return local
        candidates = self.classes_by_bare.get(last, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _annotation_class(
        self, module: LintModule, annotation: Optional[ast.expr]
    ) -> Optional[ClassKey]:
        """Class key named by an annotation (unwraps Optional/Union/strings)."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            for ident in re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation.value):
                found = self.class_for_dotted(
                    module.imports().get(ident, ident), module
                )
                if found is not None:
                    return found
            return None
        if isinstance(annotation, ast.Subscript):
            base = module.resolve(annotation.value)
            if base is not None and base.rsplit(".", 1)[-1] in ("Optional", "Union"):
                inner = annotation.slice
                elements = (
                    list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
                )
                for element in elements:
                    found = self._annotation_class(module, element)
                    if found is not None:
                        return found
            return None
        return self.class_for_dotted(module.resolve(annotation), module)

    def class_attr_type(self, key: ClassKey, attr: str) -> Optional[ClassKey]:
        """Declared type of ``key.attr``, searching the known base chain."""
        info = self.classes.get(key)
        seen: Set[ClassKey] = set()
        while info is not None and info.key not in seen:
            seen.add(info.key)
            if attr in info.field_types:
                return info.field_types[attr]
            info = self._first_known_base(info)
        return None

    def _first_known_base(self, info: ClassInfo) -> Optional[ClassInfo]:
        for dotted in info.base_dotted:
            base_key = self.class_for_dotted(dotted, info.module)
            if base_key is not None:
                return self.classes.get(base_key)
        return None

    def class_declares(self, key: ClassKey, attr: str) -> Optional[bool]:
        """Whether ``attr`` is declared anywhere on ``key`` or a known base.

        Returns ``None`` when the class inherits from something outside the
        module set — the inventory is incomplete, so no judgement is made.
        """
        info = self.classes.get(key)
        seen: Set[ClassKey] = set()
        while info is not None and info.key not in seen:
            seen.add(info.key)
            if attr in info.declared_attrs():
                return True
            unknown_base = any(
                self.class_for_dotted(dotted, info.module) is None
                for dotted in info.base_dotted
            ) or len(info.base_dotted) < len(info.node.bases)
            if unknown_base:
                return None
            if not info.base_dotted:
                return False
            info = self._first_known_base(info)
        return False

    def attr_kind(self, key: ClassKey, attr: str) -> str:
        """``"field"``, ``"property"``, ``"method"`` or ``"unknown"``."""
        info = self.classes.get(key)
        seen: Set[ClassKey] = set()
        while info is not None and info.key not in seen:
            seen.add(info.key)
            if attr in info.fields:
                return "field"
            if attr in info.properties:
                return "property"
            if attr in info.methods:
                return "method"
            info = self._first_known_base(info)
        return "unknown"

    def method_qual(self, key: ClassKey, attr: str) -> Optional[str]:
        """Qualified name of method/property ``attr`` on ``key`` or a base."""
        info = self.classes.get(key)
        seen: Set[ClassKey] = set()
        while info is not None and info.key not in seen:
            seen.add(info.key)
            qual = f"{info.key[0]}:{info.key[1]}.{attr}"
            if qual in self.functions:
                return qual
            info = self._first_known_base(info)
        return None

    def unique_method(self, attr: str) -> Optional[str]:
        """Qualified name of ``attr`` when exactly one known class defines it."""
        found: List[str] = []
        for info in self.classes.values():
            qual = f"{info.key[0]}:{info.key[1]}.{attr}"
            if qual in self.functions:
                found.append(qual)
                if len(found) > 1:
                    return None
        return found[0] if len(found) == 1 else None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def stage_roots(self, stages: Iterable[str] = PIPELINE_STAGES) -> List[str]:
        """Qualified names of every module-level stage function present."""
        wanted = set(stages)
        return sorted(
            qual
            for qual, info in self.functions.items()
            if info.class_key is None and info.name in wanted
        )

    def session_roots(self) -> List[str]:
        """Qualified names of the ``Session`` pipeline entry points."""
        roots: List[str] = []
        for key in self.classes_by_bare.get("Session", []):
            for name in SESSION_ENTRY_POINTS:
                qual = f"{key[0]}:{key[1]}.{name}"
                if qual in self.functions:
                    roots.append(qual)
        return sorted(roots)

    def memo_roots(self) -> List[str]:
        """The five stages plus every method of the memo-owning classes."""
        roots = set(self.stage_roots())
        for bare in MEMO_CLASS_NAMES:
            for key in self.classes_by_bare.get(bare, []):
                prefix = f"{key[0]}:{key[1]}."
                roots.update(
                    qual for qual in self.functions if qual.startswith(prefix)
                )
        return sorted(roots)

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Functions reachable from ``roots`` over the call graph."""
        seen: Set[str] = set()
        stack = [qual for qual in roots if qual in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(
                callee
                for callee in self.functions[qual].calls
                if callee not in seen and callee in self.functions
            )
        return seen

    def reads_from(
        self, roots: Iterable[str]
    ) -> Dict[Tuple[ClassKey, str], List[ReadSite]]:
        """Transitive tracked-class reads of ``roots``, with direct sites."""
        cache_key = frozenset(roots)
        cached = self._transitive.get(cache_key)
        if cached is not None:
            return cached
        table: Dict[Tuple[ClassKey, str], List[ReadSite]] = {}
        for qual in sorted(self.reachable(cache_key)):
            for site in self.functions[qual].reads:
                table.setdefault((site.class_key, site.attr), []).append(site)
        self._transitive[cache_key] = table
        return table

    def stage_read_map(self) -> Dict[str, List[str]]:
        """Stage name -> sorted ``Class.attr`` display strings (the golden map)."""
        result: Dict[str, List[str]] = {}
        for stage in PIPELINE_STAGES:
            roots = self.stage_roots([stage])
            if not roots:
                continue
            reads = self.reads_from(roots)
            result[stage] = sorted(
                {f"{key[1]}.{attr}" for (key, attr) in reads}
            )
        return result

    # ------------------------------------------------------------------ #
    # Identity surfaces
    # ------------------------------------------------------------------ #
    def identity_coverage(self, key: ClassKey) -> Optional[Set[str]]:
        """Attributes of ``key`` its identity derivation covers.

        ``None`` means the surface is absent from the module set, so F1
        stays disarmed for that class (mirrors C1's both-endpoints rule).
        """
        bare = key[1]
        if bare == "RunSpec":
            return self._self_reads_of_method(key, "key")
        if bare == "DesignPoint":
            info = self.classes.get(key)
            if info is None or not info.fields:
                return None
            # to_dict() serialises ``fields(self)`` dynamically, so by
            # construction every declared field is identity-bearing.
            return set(info.fields)
        if bare == "CacheConfig":
            writes = self.override_writes()
            if not writes:
                return None
            covered = {
                attr
                for attrs in writes.values()  # repro: noqa[D2] builds an unordered membership set, no digest
                for (write_key, attr) in attrs
                if write_key == key
            }
            return covered or None
        return None

    def _self_reads_of_method(self, key: ClassKey, method: str) -> Optional[Set[str]]:
        """``self.X`` field reads of ``key.method`` plus same-class callees."""
        start = self.method_qual(key, method)
        if start is None:
            return None
        covered: Set[str] = set()
        seen: Set[str] = set()
        stack = [start]
        prefix = f"{key[0]}:{key[1]}."
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            info = self.functions[qual]
            for site in info.reads:
                if site.class_key == key:
                    covered.add(site.attr)
            stack.extend(
                callee
                for callee in info.calls
                if callee.startswith(prefix) and callee in self.functions
            )
        return covered

    def override_writes(self) -> Dict[str, Set[Tuple[ClassKey, str]]]:
        """Override key -> attributes written, derived from ``build_config``."""
        writes: Dict[str, Set[Tuple[ClassKey, str]]] = {}
        for info in self.build_config_functions():
            for key, attrs in self.override_writes_for(info).items():
                writes.setdefault(key, set()).update(attrs)
        return writes

    def override_writes_for(
        self, info: FunctionInfo
    ) -> Dict[str, Set[Tuple[ClassKey, str]]]:
        """Override writes derived from one ``build_config`` definition."""
        return _derive_override_writes(self, info)

    def build_config_functions(self) -> List[FunctionInfo]:
        return [
            info
            for qual, info in sorted(self.functions.items())
            if info.class_key is None and info.name == "build_config"
        ]

    def declared_sets(self, name: str) -> Dict[str, Tuple[ast.stmt, Set[str]]]:
        """Module dotted name -> (assignment node, values) for constant ``name``."""
        return {
            mod: entry
            for (mod, bound), entry in self.constant_sets.items()
            if bound == name
        }

    # ------------------------------------------------------------------ #
    # Ledger
    # ------------------------------------------------------------------ #
    def exemption_for(
        self, module: LintModule, line: int, subject: str
    ) -> Optional[Exemption]:
        """The ledger entry covering ``subject`` at ``line``, if any.

        The entry matches when its comment sits anywhere in the suppression
        span of the statement owning ``line`` (same normalisation as
        ``# repro: noqa``), so a trailing comment on a multi-line expression
        or a decorator line still counts.
        """
        entries = self.exemptions.get(module.display_path, [])
        if not entries:
            return None
        start, end = module.suppression_span(line)
        for entry in entries:
            if entry.subject == subject and start <= entry.line <= end:
                return entry
        return None

    def all_exemptions(self) -> List[Exemption]:
        return sorted(
            (entry for entries in self.exemptions.values() for entry in entries),
            key=lambda entry: (entry.path, entry.line, entry.subject),
        )


# --------------------------------------------------------------------------- #
# Module-level binding classification (F3)
# --------------------------------------------------------------------------- #
def _module_bindings(module: LintModule) -> Dict[str, str]:
    """Top-level name -> kind: ``constant``/``logger``/``def``/``other``.

    ``other`` is the interesting kind — a module-level binding that is
    neither an UPPER_CASE constant, a logger, a TypeVar/ContextVar, nor a
    def/class: i.e. plausible mutable module state.
    """
    table: Dict[str, str] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            table[node.name] = "def"
            continue
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            table[target.id] = _binding_kind(module, target.id, value)
    return table


def _binding_kind(module: LintModule, name: str, value: Optional[ast.expr]) -> str:
    if name == name.upper():
        return "constant"
    if isinstance(value, ast.Call):
        dotted = module.resolve(value.func)
        if dotted is not None:
            last = dotted.rsplit(".", 1)[-1]
            if dotted == "logging.getLogger":
                return "logger"
            if last in ("TypeVar", "ContextVar", "ParamSpec"):
                return "constant"
    return "other"


def _is_property(node: _FunctionNode) -> bool:
    for decorator in node.decorator_list:
        dotted = dotted_name(decorator)
        if dotted is None:
            continue
        last = dotted.rsplit(".", 1)[-1]
        if last in ("property", "cached_property") or dotted.endswith(".getter"):
            return True
    return False


def _self_assignments(node: _FunctionNode) -> Set[str]:
    """Attributes assigned on ``self`` anywhere in ``node`` (incl. setattr)."""
    assigned: Set[str] = set()
    for inner in ast.walk(node):
        if isinstance(inner, ast.Attribute) and not isinstance(inner.ctx, ast.Load):
            if isinstance(inner.value, ast.Name) and inner.value.id == "self":
                assigned.add(inner.attr)
        elif isinstance(inner, ast.Call):
            dotted = dotted_name(inner.func)
            if dotted in ("object.__setattr__", "setattr") and len(inner.args) >= 2:
                target, attr_node = inner.args[0], inner.args[1]
                if (
                    isinstance(target, ast.Name)
                    and target.id == "self"
                    and isinstance(attr_node, ast.Constant)
                    and isinstance(attr_node.value, str)
                ):
                    assigned.add(attr_node.value)
    return assigned


def _string_collection(node: ast.expr) -> Optional[Set[str]]:
    """The string elements of a (possibly frozenset-wrapped) literal."""
    if isinstance(node, ast.Call) and len(node.args) == 1:
        dotted = dotted_name(node.func)
        if dotted in ("frozenset", "set", "tuple", "list"):
            return _string_collection(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        values: Set[str] = set()
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant) and isinstance(element.value, str)
            ):
                return None
            values.add(element.value)
        return values
    return None


# --------------------------------------------------------------------------- #
# Per-function summarisation
# --------------------------------------------------------------------------- #
class _FunctionSummarizer(ast.NodeVisitor):
    """Builds one function's direct summary: reads, calls, impure reads.

    Nested functions and lambdas are folded into the enclosing summary —
    closures handed to cache getters execute on the memoized path, so their
    reads belong to the function that built them.
    """

    def __init__(self, flow: ProjectFlow, info: FunctionInfo) -> None:
        self.flow = flow
        self.info = info
        self.module = info.module
        self.env: Dict[str, ClassKey] = {}
        self.assigned_names: Set[str] = _assigned_names(info.node)
        self._seed_parameters()

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        for stmt in self.info.node.body:
            self.visit(stmt)
        self.info.final_env = dict(self.env)

    def _seed_parameters(self) -> None:
        node = self.info.node
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            found = self.flow._annotation_class(self.module, arg.annotation)
            if found is not None:
                self.env[arg.arg] = found
        if self.info.class_key is not None and args:
            first = args[0].arg
            if first in ("self", "cls"):
                self.env[first] = self.info.class_key

    # ------------------------------------------------------------------ #
    def expr_class(self, node: ast.expr) -> Optional[ClassKey]:
        """Static class of an expression under the current environment."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.expr_class(node.value)
            if base is not None:
                return self.flow.class_attr_type(base, node.attr)
            return None
        if isinstance(node, ast.Call):
            return self._call_class(node)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                found = self.expr_class(value)
                if found is not None:
                    return found
            return None
        if isinstance(node, ast.IfExp):
            return self.expr_class(node.body) or self.expr_class(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.expr_class(node.value)
        return None

    def _call_class(self, node: ast.Call) -> Optional[ClassKey]:
        dotted = self.module.resolve(node.func)
        if dotted is not None:
            if dotted.rsplit(".", 1)[-1] == "replace" and node.args:
                # dataclasses.replace is type-preserving.
                return self.expr_class(node.args[0])
            as_class = self.flow.class_for_dotted(dotted, self.module)
            if as_class is not None:
                return as_class
            callee = self._function_for_dotted(dotted)
            if callee is not None:
                return callee.return_class
        if isinstance(node.func, ast.Attribute):
            base = self.expr_class(node.func.value)
            if base is not None:
                qual = self.flow.method_qual(base, node.func.attr)
                if qual is not None:
                    return self.flow.functions[qual].return_class
        return None

    def _function_for_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        mod_part, _, last = dotted.rpartition(".")
        if mod_part:
            qual = f"{mod_part}:{last}"
            if qual in self.flow.functions:
                return self.flow.functions[qual]
            return None
        local = f"{self.flow.module_names[self.module.display_path]}:{last}"
        return self.flow.functions.get(local)

    # ------------------------------------------------------------------ #
    # Assignment tracking
    # ------------------------------------------------------------------ #
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        inferred = self.expr_class(node.value)
        for target in node.targets:
            self._bind_target(target, inferred, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        if isinstance(node.target, ast.Name):
            declared = self.flow._annotation_class(self.module, node.annotation)
            inferred = (
                self.expr_class(node.value) if node.value is not None else None
            )
            found = declared or inferred
            if found is not None:
                self.env[node.target.id] = found
            else:
                self.env.pop(node.target.id, None)
        elif node.value is not None:
            self.visit(node.target)

    def _bind_target(
        self,
        target: ast.expr,
        inferred: Optional[ClassKey],
        value: ast.expr,
    ) -> None:
        if isinstance(target, ast.Name):
            if inferred is not None:
                self.env[target.id] = inferred
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, value)
        else:
            self.visit(target)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.visit(node.value)
        if not isinstance(node.ctx, ast.Load):
            return
        base = self.expr_class(node.value)
        if base is not None:
            self._record_member_access(base, node)
            return
        dotted = self.module.resolve(node)
        if dotted is not None and (
            dotted == "os.environ" or dotted.startswith("os.environ.")
        ):
            self.info.global_reads.append(
                GlobalRead(
                    kind="env",
                    subject="env:os.environ",
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )

    def _record_member_access(self, base: ClassKey, node: ast.Attribute) -> None:
        attr = node.attr
        kind = self.flow.attr_kind(base, attr)
        if kind in ("property", "method"):
            qual = self.flow.method_qual(base, attr)
            if qual is not None:
                self.info.calls.add(qual)
            return
        if attr.startswith("__") and attr.endswith("__"):
            return
        attr_type = self.flow.class_attr_type(base, attr)
        if attr_type is not None and attr_type[1] in TRACKED_CLASS_NAMES:
            # Traversal into another tracked object, not a leaf read.
            return
        if base[1] in TRACKED_CLASS_NAMES:
            self.info.reads.append(
                ReadSite(
                    class_key=base,
                    attr=attr,
                    function=self.info.qual,
                    module=self.module,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )
        elif kind == "unknown" and self._is_self_read(node, base):
            declared = self.flow.class_declares(base, attr)
            if declared is False:
                self.info.global_reads.append(
                    GlobalRead(
                        kind="self",
                        subject=f"{base[1]}.{attr}",
                        line=node.lineno,
                        col=node.col_offset + 1,
                    )
                )

    def _is_self_read(self, node: ast.Attribute, base: ClassKey) -> bool:
        return (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.info.class_key == base
        )

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if isinstance(func, ast.Name):
            dotted = self.module.resolve(func)
            if dotted == "os.getenv":
                self._record_env(node)
                return
            if dotted is not None:
                self._link_dotted(dotted)
            return
        if isinstance(func, ast.Attribute):
            resolved = self.module.resolve(func)
            if resolved in ("os.getenv", "os.environ.get"):
                self._record_env(node)
                return
            base = self.expr_class(func.value)
            if base is not None:
                qual = self.flow.method_qual(base, func.attr)
                if qual is not None:
                    self.info.calls.add(qual)
                return
            if resolved is not None and self._link_dotted(resolved):
                return
            # Method-name fallback through the class inventory: link only
            # when the name is unambiguous project-wide.
            unique = self.flow.unique_method(func.attr)
            if unique is not None:
                self.info.calls.add(unique)

    def _record_env(self, node: ast.Call) -> None:
        self.info.global_reads.append(
            GlobalRead(
                kind="env",
                subject="env:os.getenv",
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )

    def _link_dotted(self, dotted: str) -> bool:
        callee = self._function_for_dotted(dotted)
        if callee is not None:
            self.info.calls.add(callee.qual)
            return True
        as_class = self.flow.class_for_dotted(dotted, self.module)
        if as_class is not None:
            init = self.flow.method_qual(as_class, "__init__")
            if init is not None:
                self.info.calls.add(init)
            post = self.flow.method_qual(as_class, "__post_init__")
            if post is not None:
                self.info.calls.add(post)
            return True
        return False

    # ------------------------------------------------------------------ #
    # Module-global reads (F3)
    # ------------------------------------------------------------------ #
    def visit_Name(self, node: ast.Name) -> None:
        if not isinstance(node.ctx, ast.Load):
            return
        if node.id in self.assigned_names or node.id in ("self", "cls"):
            return
        bindings = self.flow.module_bindings.get(
            self.flow.module_names[self.module.display_path], {}
        )
        if bindings.get(node.id) == "other" and node.id not in self.module.imports():
            self.info.global_reads.append(
                GlobalRead(
                    kind="global",
                    subject=f"global:{node.id}",
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )

    # ------------------------------------------------------------------ #
    # Scoping
    # ------------------------------------------------------------------ #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: _FunctionNode) -> None:
        if node is self.info.node:
            self.generic_visit(node)
            return
        # Fold the closure into this summary; its params shadow globals.
        self.assigned_names |= _assigned_names(node)
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            found = self.flow._annotation_class(self.module, arg.annotation)
            if found is not None:
                self.env[arg.arg] = found
        for stmt in node.body:
            self.visit(stmt)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.assigned_names |= {arg.arg for arg in node.args.args}
        self.visit(node.body)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Classes defined inside functions are rare and out of scope.
        return


def _assigned_names(node: _FunctionNode) -> Set[str]:
    """Every name bound anywhere inside ``node`` (shadows module globals)."""
    names: Set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and not isinstance(inner.ctx, ast.Load):
            names.add(inner.id)
        elif isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(inner.name)
            inner_args = inner.args
            for arg in (
                list(inner_args.posonlyargs)
                + list(inner_args.args)
                + list(inner_args.kwonlyargs)
                + ([inner_args.vararg] if inner_args.vararg else [])
                + ([inner_args.kwarg] if inner_args.kwarg else [])
            ):
                names.add(arg.arg)
        elif isinstance(inner, ast.Lambda):
            for arg in inner.args.args:
                names.add(arg.arg)
        elif isinstance(inner, ast.ExceptHandler) and inner.name:
            names.add(inner.name)
        elif isinstance(inner, (ast.Global, ast.Nonlocal)):
            names.update(inner.names)
    return names


# --------------------------------------------------------------------------- #
# build_config override-write derivation
# --------------------------------------------------------------------------- #
def _derive_override_writes(
    flow: ProjectFlow, info: FunctionInfo
) -> Dict[str, Set[Tuple[ClassKey, str]]]:
    """Override key -> (class, attr) writes, re-derived from ``build_config``.

    The walker follows the repo's guard idiom: attribute writes are the
    keyword arguments of ``dataclasses.replace`` calls (or whole-object
    rebinds of a tracked variable) that appear under an
    ``if "KEY" in overrides`` test — including the looped
    ``for key in (...): if key in overrides`` form, where the written
    attribute is the override key itself.
    """
    writes: Dict[str, Set[Tuple[ClassKey, str]]] = {}
    env = info.final_env
    module = info.module

    def expr_class(node: ast.expr) -> Optional[ClassKey]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = expr_class(node.value)
            if base is not None:
                return flow.class_attr_type(base, node.attr)
        if isinstance(node, ast.Call):
            dotted = module.resolve(node.func)
            if dotted is not None:
                if dotted.rsplit(".", 1)[-1] == "replace" and node.args:
                    return expr_class(node.args[0])
                return flow.class_for_dotted(dotted, module)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                found = expr_class(value)
                if found is not None:
                    return found
        return None

    def guard_keys(test: ast.expr, loops: Mapping[str, Set[str]]) -> Set[str]:
        keys: Set[str] = set()
        if isinstance(test, ast.Compare) and any(
            isinstance(op, ast.In) for op in test.ops
        ):
            left = test.left
            if isinstance(left, ast.Constant) and isinstance(left.value, str):
                keys.add(left.value)
            elif isinstance(left, ast.Name) and left.id in loops:
                keys.update(loops[left.id])
        elif isinstance(test, ast.BoolOp):
            for value in test.values:
                keys.update(guard_keys(value, loops))
        return keys

    def record_replace(
        call: ast.Call, active: Set[str], loops: Mapping[str, Set[str]]
    ) -> bool:
        dotted = module.resolve(call.func)
        if dotted is None or dotted.rsplit(".", 1)[-1] != "replace" or not call.args:
            return False
        target_class = expr_class(call.args[0])
        if target_class is None:
            return True
        for keyword in call.keywords:
            if keyword.arg is not None:
                for key in active:
                    writes.setdefault(key, set()).add((target_class, keyword.arg))
            elif isinstance(keyword.value, ast.Dict):
                for dict_key in keyword.value.keys:
                    if isinstance(dict_key, ast.Name) and dict_key.id in loops:
                        for key in loops[dict_key.id] & active:
                            writes.setdefault(key, set()).add((target_class, key))
        return True

    def walk(
        stmts: Sequence[ast.stmt], active: Set[str], loops: Dict[str, Set[str]]
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                keys = guard_keys(stmt.test, loops)
                walk(stmt.body, active | keys, loops)
                walk(stmt.orelse, active, loops)
            elif isinstance(stmt, ast.For):
                inner = dict(loops)
                values = (
                    _string_collection(stmt.iter) if stmt.iter is not None else None
                )
                if isinstance(stmt.target, ast.Name) and values:
                    inner[stmt.target.id] = values
                walk(stmt.body, active, inner)
                walk(stmt.orelse, active, loops)
            elif isinstance(stmt, (ast.With, ast.Try)):
                for body in getattr(stmt, "body", []), getattr(stmt, "orelse", []), getattr(stmt, "finalbody", []):
                    walk(list(body), active, loops)
            elif isinstance(stmt, ast.Assign):
                handled = isinstance(stmt.value, ast.Call) and record_replace(
                    stmt.value, active, loops
                )
                if not handled and active:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            previous = env.get(target.id)
                            if previous is not None:
                                # Whole-object rebind under a guard: every
                                # field of the class is written.
                                info_cls = flow.classes.get(previous)
                                fields = (
                                    set(info_cls.fields) if info_cls else set()
                                )
                                for key in active:
                                    for attr in fields or {"*"}:
                                        writes.setdefault(key, set()).add(
                                            (previous, attr)
                                        )

    walk(list(info.node.body), set(), {})
    return writes


__all__ = [
    "ClassInfo",
    "Exemption",
    "FunctionInfo",
    "GlobalRead",
    "IDENTITY_CLASS_NAMES",
    "MEMO_CLASS_NAMES",
    "PIPELINE_STAGES",
    "ProjectFlow",
    "PURITY_EXEMPT_MODULE_PREFIXES",
    "REPLAY_STAGES",
    "ReadSite",
    "SCHEDULE_STAGES",
    "SESSION_ENTRY_POINTS",
    "TRACKED_CLASS_NAMES",
    "module_dotted_name",
    "parse_exemptions",
]
