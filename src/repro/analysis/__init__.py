"""Static-analysis gate: the repo's invariants, enforced mechanically.

Six PRs of conventions — seeded RNG everywhere, sorted iteration in identity
paths, identity-neutral telemetry, a single CLI print funnel, setter-only
module globals, a closed worker wire protocol — are promoted here from
review lore to lint rules.  ``repro lint src`` runs the battery and exits
non-zero on findings; CI runs it next to a per-module mypy gate.

Layers:

* :mod:`repro.analysis.engine` — file loading, per-rule dispatch,
  :class:`Finding` records, ``# repro: noqa[RULE]`` suppression;
* :mod:`repro.analysis.rules` — the battery (D1/D2 determinism, N1/N2
  identity-neutrality, W1 worker safety, S1–S3 general safety, C1
  cross-module contracts, F1–F3 identity flow);
* :mod:`repro.analysis.flow` — the interprocedural layer under F1–F3 and
  ``repro audit``: project call graph plus transitive attribute-read
  summaries;
* :mod:`repro.analysis.audit` — the ``identity-audit`` document and text
  view (derived read map, coverage table, replay-knob partition, ledger);
* :mod:`repro.analysis.report` — the versioned ``lint-findings`` JSON
  document (schema pinned by a golden test) and the text renderer.

Quickstart::

    from repro.analysis import get_rules, run_lint, findings_document

    report = run_lint(["src"], rules=get_rules())
    assert report.ok, findings_document(report)
"""

from __future__ import annotations

from repro.analysis.audit import (
    AUDIT_DOCUMENT_KIND,
    AuditReport,
    audit_document,
    render_audit,
    run_audit,
)
from repro.analysis.engine import (
    Finding,
    LintModule,
    LintReport,
    Rule,
    run_lint,
)
from repro.analysis.report import (
    LINT_DOCUMENT_KIND,
    LINT_SCHEMA_VERSION,
    findings_document,
    render_findings,
    render_summary,
)
from repro.analysis.rules import ALL_RULES, RULE_IDS, get_rules

__all__ = [
    "ALL_RULES",
    "AUDIT_DOCUMENT_KIND",
    "AuditReport",
    "Finding",
    "LINT_DOCUMENT_KIND",
    "LINT_SCHEMA_VERSION",
    "LintModule",
    "LintReport",
    "RULE_IDS",
    "Rule",
    "audit_document",
    "findings_document",
    "get_rules",
    "render_audit",
    "render_findings",
    "render_summary",
    "run_lint",
]
