"""AST lint engine: file loading, rule dispatch, findings, suppression.

The engine is deliberately small: it knows how to turn paths into parsed
:class:`LintModule` records, run a battery of :class:`Rule` objects over
them, and filter findings through ``# repro: noqa[RULE]`` suppression
comments.  Everything repo-specific lives in the rules
(:mod:`repro.analysis.rules`); everything schema-facing lives in the
reporters (:mod:`repro.analysis.report`).

Two rule scopes:

* :meth:`Rule.check_module` runs once per parsed file — the shape of almost
  every rule (unseeded RNG, stray prints, bare excepts, ...);
* :meth:`Rule.check_project` runs once over the whole module set, for
  cross-module contracts (the worker-payload schema check).

Suppression: a finding is dropped when a ``# repro: noqa[RULE]`` comment
naming the rule's id or name (comma separated for several rules) appears in
the *suppression span* of the statement that owns the reported line,
conventionally followed by a reason::

    started = time.perf_counter()  # repro: noqa[N1] progress ETA only

For simple statements the span is the statement's own lines (so a trailing
comment on any line of a multi-line expression counts); for compound
statements — ``def``/``class`` (including decorators) and block headers —
the span covers decorators through the header line only, never the body.
That normalisation is what lets a noqa on a decorator line silence a
finding reported on the ``def`` line below it.

Comments are read with :mod:`tokenize`, so a ``noqa`` inside a string
literal never suppresses anything.  The noqa table is computed lazily, once
per file, the first time a suppression query touches the module — a clean
file is never tokenized twice.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import AnalysisError

#: Directory names never descended into when expanding lint targets.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".hg", ".mypy_cache", ".pytest_cache", "build", "dist"}
)

#: Rule id attached to findings for files that do not parse.
PARSE_ERROR_RULE = "E0"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([^\]]+)\]", re.IGNORECASE)


# --------------------------------------------------------------------------- #
# Findings
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: Display path of the offending file (as given on the command
            line, so output is stable regardless of the process cwd).
        line: 1-based line of the violation.
        col: 1-based column of the violation.
        rule: Short rule id (``"D1"``, ``"W1"``, ...).
        name: The rule's long kebab-case name (``"unseeded-rng"``).
        message: Human explanation of this specific violation.
    """

    path: str
    line: int
    col: int
    rule: str
    name: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON form; field names are pinned by the lint schema golden test."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": self.name,
            "message": self.message,
        }

    def location(self) -> str:
        """``path:line:col`` rendering (clickable in most terminals)."""
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


# --------------------------------------------------------------------------- #
# Parsed modules
# --------------------------------------------------------------------------- #
@dataclass
class LintModule:
    """One parsed source file plus the derived lookup structures rules need."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    _noqa: Optional[Dict[int, FrozenSet[str]]] = field(default=None, repr=False)
    _parents: Optional[Dict[int, ast.AST]] = field(default=None, repr=False)
    _imports: Optional[Dict[str, str]] = field(default=None, repr=False)
    _spans: Optional[Dict[int, Tuple[int, int]]] = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def noqa(self) -> Dict[int, FrozenSet[str]]:
        """Line -> suppressed rule ids, tokenized once per file on demand."""
        if self._noqa is None:
            self._noqa = parse_noqa(self.source)
        return self._noqa

    # ------------------------------------------------------------------ #
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (``None`` for the module itself)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def imports(self) -> Dict[str, str]:
        """Local-name -> dotted-origin map of this module's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from random import
        shuffle`` maps ``shuffle -> random.shuffle``.  Only module-level and
        nested imports are recorded — the map answers "what does this name
        most plausibly refer to", which is all a lint heuristic needs.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        bound = alias.asname or alias.name.split(".")[0]
                        origin = alias.name if alias.asname else bound
                        table[bound] = origin
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        bound = alias.asname or alias.name
                        table[bound] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted name of an expression with the import table applied.

        ``np.random.randint`` resolves to ``numpy.random.randint`` when the
        module imported ``numpy as np``; unknown roots pass through
        unchanged.  Returns ``None`` for expressions that are not plain
        dotted names (subscripts, calls, ...).
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        first, _, rest = dotted.partition(".")
        origin = self.imports().get(first)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def suppression_span(self, line: int) -> Tuple[int, int]:
        """Inclusive line span a suppression comment for ``line`` may sit on.

        The span of the innermost statement owning ``line``: a simple
        statement spans all its own lines; a compound statement (``def``,
        ``class``, ``if``, ...) spans its decorators and header only, so a
        comment deep inside a block never suppresses findings on the header
        of that block (or vice versa).
        """
        if self._spans is None:
            spans: List[Tuple[int, int]] = []
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.stmt):
                    continue
                start = node.lineno
                decorators = getattr(node, "decorator_list", [])
                if decorators:
                    start = min(start, *(d.lineno for d in decorators))
                body = getattr(node, "body", None)
                if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                    end = max(node.lineno, body[0].lineno - 1)
                else:
                    end = int(getattr(node, "end_lineno", node.lineno) or node.lineno)
                spans.append((start, end))
            # Larger spans first so innermost statements win the lookup.
            table: Dict[int, Tuple[int, int]] = {}
            for start, end in sorted(spans, key=lambda span: span[0] - span[1]):
                for covered in range(start, end + 1):
                    table[covered] = (start, end)
            self._spans = table
        return self._spans.get(line, (line, line))

    def suppressed(self, finding: Finding) -> bool:
        """Whether a ``# repro: noqa[...]`` in the finding's span names it."""
        table = self.noqa
        if not table:
            return False
        start, end = self.suppression_span(finding.line)
        wanted = {finding.rule.casefold(), finding.name.casefold()}
        for noqa_line, ids in table.items():
            if start <= noqa_line <= end and ids & wanted:
                return True
        return False


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; ``None`` for anything else."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Line -> suppressed rule ids/names, from ``# repro: noqa[...]`` comments."""
    found: Dict[int, Set[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            ids = {
                part.strip().casefold()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if ids:
                found.setdefault(token.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError):
        # An untokenizable file will already surface as a parse-error
        # finding; suppression info is best-effort on top.
        pass
    return {line: frozenset(ids) for line, ids in found.items()}


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #
class Rule:
    """Base class of every lint rule.

    Subclasses set the three identity strings and override one (or both) of
    the check hooks.  Hooks yield :class:`Finding` records; the engine owns
    ordering and suppression.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        """Per-file findings (default: none)."""
        return iter(())

    def check_project(self, modules: Sequence[LintModule]) -> Iterator[Finding]:
        """Whole-module-set findings (default: none)."""
        return iter(())

    # ------------------------------------------------------------------ #
    def finding(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` in ``module`` under this rule."""
        return Finding(
            path=module.display_path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)) + 1,
            rule=self.rule_id,
            name=self.name,
            message=message,
        )


class ContextVisitor(ast.NodeVisitor):
    """Node visitor that tracks the enclosing function/class stacks."""

    def __init__(self) -> None:
        self.function_stack: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = []
        self.class_stack: List[ast.ClassDef] = []

    # ------------------------------------------------------------------ #
    @property
    def current_function(
        self,
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        return self.function_stack[-1] if self.function_stack else None

    @property
    def current_class(self) -> Optional[ast.ClassDef]:
        return self.class_stack[-1] if self.class_stack else None

    # ------------------------------------------------------------------ #
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        self.function_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        try:
            self.generic_visit(node)
        finally:
            self.class_stack.pop()


# --------------------------------------------------------------------------- #
# Loading and running
# --------------------------------------------------------------------------- #
def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand lint targets into a sorted, de-duplicated list of ``.py`` files.

    Directories are walked recursively (skipping :data:`EXCLUDED_DIRS` and
    hidden directories); explicit file arguments are taken as-is.  A target
    that does not exist raises :class:`~repro.errors.AnalysisError` — a typo
    must not silently lint nothing.
    """
    seen: Set[Path] = set()
    files: List[Path] = []

    def add(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            files.append(candidate)

    for raw in paths:
        target = Path(raw)
        if target.is_dir():
            for candidate in sorted(target.rglob("*.py")):
                relative = candidate.relative_to(target)
                if any(
                    part in EXCLUDED_DIRS or part.startswith(".")
                    for part in relative.parts[:-1]
                ):
                    continue
                add(candidate)
        elif target.is_file():
            add(target)
        else:
            raise AnalysisError(f"lint target {target} does not exist")
    files.sort(key=lambda path: str(path))
    return files


def load_module(path: Path) -> LintModule:
    """Parse one file into a :class:`LintModule` (raises ``SyntaxError``)."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    tree = ast.parse(source, filename=str(path))
    return LintModule(
        path=path,
        display_path=_display_path(path),
        source=source,
        tree=tree,
    )


def _display_path(path: Path) -> str:
    """Path as printed in findings: cwd-relative when possible, POSIX style."""
    try:
        relative = path.resolve().relative_to(Path.cwd())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` call."""

    findings: List[Finding]
    files: List[str]
    rules: List[Rule]

    @property
    def ok(self) -> bool:
        """Whether the linted tree is clean."""
        return not self.findings

    def counts(self) -> Dict[str, int]:
        """Findings per active rule id (every active rule present, 0 ok)."""
        table: Dict[str, int] = {rule.rule_id: 0 for rule in self.rules}
        for finding in self.findings:
            table[finding.rule] = table.get(finding.rule, 0) + 1
        return table


def load_project(
    paths: Sequence[Union[str, Path]],
) -> Tuple[List[LintModule], List[Finding]]:
    """Expand and parse lint targets once.

    Returns the parsed modules plus one :data:`PARSE_ERROR_RULE` finding per
    file that does not parse — shared by ``run_lint`` and ``repro audit`` so
    both see the same project view.
    """
    modules: List[LintModule] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=_display_path(path),
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0) + 1 if exc.offset else 1,
                    rule=PARSE_ERROR_RULE,
                    name="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            )
    return modules, findings


def run_lint(
    paths: Sequence[Union[str, Path]],
    rules: Sequence[Rule],
) -> LintReport:
    """Lint ``paths`` under ``rules`` and return the suppressed-and-sorted report."""
    files = iter_python_files(paths)
    modules, findings = load_project(paths)
    by_display = {module.display_path: module for module in modules}
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(modules))
    kept: List[Finding] = []
    for finding in findings:
        module = by_display.get(finding.path)
        if module is not None and module.suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return LintReport(
        findings=kept,
        files=[_display_path(path) for path in files],
        rules=list(rules),
    )


__all__ = [
    "ContextVisitor",
    "EXCLUDED_DIRS",
    "Finding",
    "LintModule",
    "LintReport",
    "PARSE_ERROR_RULE",
    "Rule",
    "dotted_name",
    "iter_python_files",
    "load_module",
    "load_project",
    "parse_noqa",
    "run_lint",
]
