"""Lint reporters: the stable JSON findings document and the text view.

The JSON document is a machine-readable artifact (uploaded by CI next to the
bench and metrics documents), so its shape is versioned and pinned by a
golden test the same way BENCH schema v2 and metrics schema v1 are:
downstream tooling may rely on the key set and the rule ids.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.engine import LintReport

#: Schema version of the ``repro lint --json`` findings document.
#: v2: rule battery gained R1 (ad-hoc-retry); S2 additionally flags
#: swallowed ``except BaseException`` handlers.
#: v3: rule battery gained the interprocedural F1/F2/F3 identity-flow
#: rules, and the version is shared with the new ``identity-audit``
#: document (``repro audit --json``).
LINT_SCHEMA_VERSION = 3

#: ``kind`` value of the findings document.
LINT_DOCUMENT_KIND = "lint-findings"


def findings_document(report: LintReport) -> Dict[str, object]:
    """The versioned JSON document for one lint run.

    Keys, finding fields, and rule ids are pinned by
    ``tests/golden_lint_schema.json`` — bump :data:`LINT_SCHEMA_VERSION`
    when changing any of them.
    """
    return {
        "schema_version": LINT_SCHEMA_VERSION,
        "kind": LINT_DOCUMENT_KIND,
        "rules": [
            {"id": rule.rule_id, "name": rule.name, "summary": rule.summary}
            for rule in report.rules
        ],
        "files_checked": len(report.files),
        "findings": [finding.to_dict() for finding in report.findings],
        "counts": report.counts(),
        "ok": report.ok,
    }


def render_findings(report: LintReport) -> List[str]:
    """Human-readable finding lines, one per violation (no footer)."""
    width = max((len(finding.rule) for finding in report.findings), default=0)
    return [
        f"{finding.location()}: {finding.rule:<{width}} [{finding.name}] "
        f"{finding.message}"
        for finding in report.findings
    ]


def render_summary(report: LintReport) -> str:
    """One-line footer: files checked, rules run, findings found."""
    total = len(report.findings)
    noun = "finding" if total == 1 else "findings"
    return (
        f"checked {len(report.files)} file(s) against "
        f"{len(report.rules)} rule(s): {total} {noun}"
    )


__all__ = [
    "LINT_DOCUMENT_KIND",
    "LINT_SCHEMA_VERSION",
    "findings_document",
    "render_findings",
    "render_summary",
]
