"""``repro audit``: the derived identity-flow picture, for humans and CI.

Where ``repro lint`` answers *"is the tree clean?"*, the audit renders the
evidence: the stage→attribute read map the flow layer derived, the
coverage table per identity class (read vs covered vs exempt vs missing),
the replay-knob partition with each override key's declared and derived
classification, and the full exemption ledger.  CI uploads the JSON form
next to the lint findings so identity drift is visible in artifacts, not
just as a red cross.

The JSON document shares :data:`~repro.analysis.report.LINT_SCHEMA_VERSION`
(v3 introduced both the F-rules and this document) under its own ``kind``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.analysis.engine import Finding, LintModule, Rule, load_project
from repro.analysis.flow import (
    IDENTITY_CLASS_NAMES,
    REPLAY_STAGES,
    SCHEDULE_STAGES,
    ClassKey,
    Exemption,
    ProjectFlow,
    ReadSite,
)
from repro.analysis.report import LINT_SCHEMA_VERSION
from repro.analysis.rules.identity import (
    REPLAY_KNOB_SET_NAME,
    SUPPORTED_SET_NAME,
    IdentityCoverageRule,
    MemoKeyPurityRule,
    ReplayClassPartitionRule,
    project_flow,
)

#: ``kind`` value of the ``repro audit --json`` document.
AUDIT_DOCUMENT_KIND = "identity-audit"


@dataclass
class CoverageRow:
    """Coverage of one identity class: what is read vs what the key covers."""

    class_name: str
    module: str
    surface: str
    covered: List[str]
    read: List[str]
    exempt: List[str]
    missing: List[str]


@dataclass
class PartitionRow:
    """One override key's declared vs AST-derived stage classification."""

    key: str
    declared: str  # "replay" | "schedule"
    derived: str  # "schedule" | "replay" | "schedule+replay" | "unread"
    writes: List[str]


@dataclass
class AuditReport:
    """Outcome of one :func:`run_audit` call."""

    files: List[str]
    stage_reads: Dict[str, List[str]]
    coverage: List[CoverageRow]
    replay_knobs: List[str]
    supported_overrides: List[str]
    partition: List[PartitionRow]
    exemptions: List[Exemption]
    findings: List[Finding]

    @property
    def ok(self) -> bool:
        """Whether the audited tree has no findings and no missing coverage."""
        return not self.findings and not any(row.missing for row in self.coverage)


#: Human name of each identity class's derivation surface.
_SURFACES: Dict[str, str] = {
    "RunSpec": "RunSpec.key() / scenario_id",
    "DesignPoint": "DesignPoint field serialisation",
    "CacheConfig": "build_config override surface",
}

#: The three flow rules the audit re-runs to collect findings.
_AUDIT_RULES: Tuple[Rule, ...] = (
    IdentityCoverageRule(),
    ReplayClassPartitionRule(),
    MemoKeyPurityRule(),
)


def run_audit(paths: Sequence[Union[str, Path]]) -> AuditReport:
    """Audit ``paths``: derive the flow picture and the F-rule findings."""
    modules, findings = load_project(paths)
    flow = project_flow(modules)
    for rule in _AUDIT_RULES:
        findings.extend(rule.check_project(modules))
    by_display = {module.display_path: module for module in modules}
    kept: List[Finding] = []
    for finding in findings:
        module = by_display.get(finding.path)
        if module is not None and module.suppressed(finding):
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return AuditReport(
        files=sorted(by_display),
        stage_reads=flow.stage_read_map(),
        coverage=_coverage_rows(flow),
        replay_knobs=sorted(_declared_union(flow, REPLAY_KNOB_SET_NAME)),
        supported_overrides=sorted(_declared_union(flow, SUPPORTED_SET_NAME)),
        partition=_partition_rows(flow),
        exemptions=flow.all_exemptions(),
        findings=kept,
    )


def _declared_union(flow: ProjectFlow, name: str) -> Set[str]:
    values: Set[str] = set()
    for _, declared in flow.declared_sets(name).values():
        values.update(declared)
    return values


def _coverage_rows(flow: ProjectFlow) -> List[CoverageRow]:
    roots = flow.stage_roots() + flow.session_roots()
    if not flow.stage_roots():
        return []
    reads = flow.reads_from(roots)
    by_class: Dict[ClassKey, Dict[str, List[ReadSite]]] = {}
    for (class_key, attr), sites in reads.items():
        if class_key[1] in IDENTITY_CLASS_NAMES:
            by_class.setdefault(class_key, {})[attr] = sites
    rows: List[CoverageRow] = []
    for class_key in sorted(by_class):
        covered = flow.identity_coverage(class_key)
        if covered is None:
            continue
        read_attrs = by_class[class_key]
        exempt: List[str] = []
        missing: List[str] = []
        for attr in sorted(set(read_attrs) - covered):
            if _all_sites_exempt(flow, class_key, attr, read_attrs[attr]):
                exempt.append(attr)
            else:
                missing.append(attr)
        rows.append(
            CoverageRow(
                class_name=class_key[1],
                module=class_key[0],
                surface=_SURFACES.get(class_key[1], "identity derivation"),
                covered=sorted(covered),
                read=sorted(read_attrs),
                exempt=exempt,
                missing=missing,
            )
        )
    return rows


def _all_sites_exempt(
    flow: ProjectFlow, class_key: ClassKey, attr: str, sites: List[ReadSite]
) -> bool:
    subject = f"{class_key[1]}.{attr}"
    for site in sites:
        entry = flow.exemption_for(site.module, site.line, subject)
        if entry is None or not entry.reason:
            return False
    return True


def _partition_rows(flow: ProjectFlow) -> List[PartitionRow]:
    knobs = _declared_union(flow, REPLAY_KNOB_SET_NAME)
    supported = _declared_union(flow, SUPPORTED_SET_NAME)
    if not supported and not knobs:
        return []
    writes = flow.override_writes()
    sched = flow.reads_from(flow.stage_roots(SCHEDULE_STAGES))
    replay = flow.reads_from(flow.stage_roots(REPLAY_STAGES))
    rows: List[PartitionRow] = []
    for key in sorted(supported | knobs):
        written = writes.get(key, set())
        sched_hit = any(write in sched for write in written)
        replay_hit = any(write in replay for write in written)
        if sched_hit and replay_hit:
            derived = "schedule+replay"
        elif sched_hit:
            derived = "schedule"
        elif replay_hit:
            derived = "replay"
        else:
            derived = "unread"
        rows.append(
            PartitionRow(
                key=key,
                declared="replay" if key in knobs else "schedule",
                derived=derived,
                writes=sorted(f"{cls[1]}.{attr}" for cls, attr in written),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Reporters
# --------------------------------------------------------------------------- #
def audit_document(report: AuditReport) -> Dict[str, object]:
    """The versioned ``identity-audit`` JSON document for one audit run."""
    return {
        "schema_version": LINT_SCHEMA_VERSION,
        "kind": AUDIT_DOCUMENT_KIND,
        "files_checked": len(report.files),
        "stage_reads": report.stage_reads,
        "coverage": [
            {
                "class": row.class_name,
                "module": row.module,
                "surface": row.surface,
                "covered": row.covered,
                "read": row.read,
                "exempt": row.exempt,
                "missing": row.missing,
            }
            for row in report.coverage
        ],
        "replay_knobs": report.replay_knobs,
        "supported_overrides": report.supported_overrides,
        "partition": [
            {
                "key": row.key,
                "declared": row.declared,
                "derived": row.derived,
                "writes": row.writes,
            }
            for row in report.partition
        ],
        "exemptions": [
            {
                "subject": entry.subject,
                "path": entry.path,
                "line": entry.line,
                "reason": entry.reason,
            }
            for entry in report.exemptions
        ],
        "findings": [finding.to_dict() for finding in report.findings],
        "ok": report.ok,
    }


def render_audit(report: AuditReport) -> List[str]:
    """Human-readable audit: read map, coverage, partition, ledger, findings."""
    lines: List[str] = []
    lines.append(f"identity audit over {len(report.files)} file(s)")
    if report.stage_reads:
        lines.append("")
        lines.append("stage read map (transitive tracked-class reads):")
        for stage, attrs in report.stage_reads.items():
            lines.append(f"  {stage}: {', '.join(attrs) if attrs else '(none)'}")
    for row in report.coverage:
        lines.append("")
        lines.append(f"{row.class_name} ({row.module}) — {row.surface}:")
        lines.append(f"  covered : {_join(row.covered)}")
        lines.append(f"  read    : {_join(row.read)}")
        lines.append(f"  exempt  : {_join(row.exempt)}")
        marker = " <-- NOT COVERED" if row.missing else ""
        lines.append(f"  missing : {_join(row.missing)}{marker}")
    if report.partition:
        lines.append("")
        lines.append(
            f"override partition ({REPLAY_KNOB_SET_NAME} vs derived reads):"
        )
        width = max(len(row.key) for row in report.partition)
        for row in report.partition:
            flag = ""
            if row.declared == "replay" and "schedule" in row.derived:
                flag = "  <-- schedule-side read"
            lines.append(
                f"  {row.key:<{width}}  declared={row.declared:<8} "
                f"derived={row.derived}{flag}"
            )
    if report.exemptions:
        lines.append("")
        lines.append(f"exemption ledger ({len(report.exemptions)} entries):")
        for entry in report.exemptions:
            reason = entry.reason or "(NO REASON)"
            lines.append(
                f"  {entry.path}:{entry.line}: [{entry.subject}] {reason}"
            )
    lines.append("")
    if report.findings:
        lines.append(f"{len(report.findings)} finding(s):")
        for finding in report.findings:
            lines.append(
                f"  {finding.location()}: {finding.rule} [{finding.name}] "
                f"{finding.message}"
            )
    else:
        lines.append("audit clean: every stage read is covered or ledgered")
    return lines


def _join(values: List[str]) -> str:
    return ", ".join(values) if values else "(none)"


__all__ = [
    "AUDIT_DOCUMENT_KIND",
    "AuditReport",
    "CoverageRow",
    "PartitionRow",
    "audit_document",
    "render_audit",
    "run_audit",
]
