"""Cache + DRAM hierarchy driver.

The accelerator models produce *row-access traces*: ordered sequences of
"read feature row ``v``" events, each of which the active feature-format
layout expands into cacheline addresses.  :class:`MemoryHierarchy` replays
such traces against the cache simulator and accumulates the off-chip traffic
that results, together with the access-pattern statistics the DRAM model
needs to convert bytes into cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.core.config import CacheConfig, DRAMConfig
from repro.formats.base import FeatureLayout
from repro.memory.cache import CacheSimulator, CacheStats
from repro.memory.dram import DRAMModel, TrafficPattern


@dataclass
class AccessStats:
    """Result of replaying an access trace through the hierarchy.

    Attributes:
        cache: Cache hit/miss/writeback counters.
        dram_read_bytes: Bytes fetched from DRAM (cache fills).
        dram_write_bytes: Bytes written to DRAM (writebacks plus streaming
            writes that bypass the cache).
        cache_access_count: Number of cache accesses (for energy accounting).
        average_burst_lines: Mean consecutive-line run length of the DRAM
            fills, used to estimate bandwidth efficiency.
    """

    cache: CacheStats
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    cache_access_count: int = 0
    average_burst_lines: float = 1.0

    @property
    def dram_total_bytes(self) -> int:
        """Total off-chip traffic in bytes."""
        return self.dram_read_bytes + self.dram_write_bytes


class MemoryHierarchy:
    """A global cache backed by HBM DRAM.

    Args:
        cache_config: Geometry of the shared on-chip cache.
        dram_config: Off-chip memory configuration.
        pinned_lines: Lines to pin in the cache (EnGN's degree-aware vertex
            cache model).
    """

    def __init__(
        self,
        cache_config: CacheConfig,
        dram_config: DRAMConfig,
        pinned_lines: Optional[Set[int]] = None,
    ) -> None:
        self.cache = CacheSimulator(cache_config, pinned_lines=pinned_lines)
        self.dram = DRAMModel(dram_config)
        self.line_bytes = cache_config.line_bytes

    # ------------------------------------------------------------------ #
    def replay_row_trace(
        self,
        row_order: Iterable[int],
        layout: FeatureLayout,
        row_lines_cache: Optional[List[np.ndarray]] = None,
        write: bool = False,
    ) -> AccessStats:
        """Replay a sequence of feature-row accesses through the cache.

        Args:
            row_order: Vertex ids in the order the aggregation engines access
                their feature rows (one entry per edge, typically).
            layout: Feature layout that maps a row to cacheline addresses.
            row_lines_cache: Optional pre-computed ``layout.row_read_lines``
                results (list indexed by row id) to avoid recomputation when
                the same layout is replayed many times.
            write: Treat the accesses as writes (dirty the lines).

        Returns:
            Aggregate :class:`AccessStats` for the trace.
        """
        start_stats = CacheStats(
            accesses=self.cache.stats.accesses,
            hits=self.cache.stats.hits,
            misses=self.cache.stats.misses,
            writebacks=self.cache.stats.writebacks,
            line_bytes=self.line_bytes,
        )

        miss_runs: List[int] = []
        current_run = 0
        previous_missed_line = None

        for row in row_order:
            row = int(row)
            if row_lines_cache is not None:
                lines = row_lines_cache[row]
            else:
                lines = layout.row_read_lines(row)
            for line in lines.tolist():
                hit = self.cache.access(line, write=write)
                if hit:
                    if current_run:
                        miss_runs.append(current_run)
                        current_run = 0
                    previous_missed_line = None
                else:
                    if previous_missed_line is not None and line == previous_missed_line + 1:
                        current_run += 1
                    else:
                        if current_run:
                            miss_runs.append(current_run)
                        current_run = 1
                    previous_missed_line = line
        if current_run:
            miss_runs.append(current_run)

        end = self.cache.stats
        delta = CacheStats(
            accesses=end.accesses - start_stats.accesses,
            hits=end.hits - start_stats.hits,
            misses=end.misses - start_stats.misses,
            writebacks=end.writebacks - start_stats.writebacks,
            line_bytes=self.line_bytes,
        )
        average_burst = float(np.mean(miss_runs)) if miss_runs else 1.0
        return AccessStats(
            cache=delta,
            dram_read_bytes=delta.miss_bytes,
            dram_write_bytes=delta.writeback_bytes,
            cache_access_count=delta.accesses,
            average_burst_lines=average_burst,
        )

    # ------------------------------------------------------------------ #
    def stream_write(self, num_bytes: int) -> AccessStats:
        """Account for a streaming write that bypasses the cache.

        Layer outputs (the next layer's features) are written back to DRAM as
        long sequential bursts; they do not pollute the read cache in the
        modelled designs.
        """
        stats = CacheStats(line_bytes=self.line_bytes)
        return AccessStats(
            cache=stats,
            dram_read_bytes=0,
            dram_write_bytes=int(num_bytes),
            cache_access_count=0,
            average_burst_lines=self.dram.SATURATION_BURST_LINES,
        )

    def stream_read(self, num_bytes: int) -> AccessStats:
        """Account for a streaming read that bypasses the cache (weights,
        topology tiles, partial-sum re-reads)."""
        stats = CacheStats(line_bytes=self.line_bytes)
        return AccessStats(
            cache=stats,
            dram_read_bytes=int(num_bytes),
            dram_write_bytes=0,
            cache_access_count=0,
            average_burst_lines=self.dram.SATURATION_BURST_LINES,
        )

    def transfer_cycles(
        self,
        num_bytes: float,
        frequency_ghz: float,
        pattern: Optional[TrafficPattern] = None,
    ) -> float:
        """Cycles to move ``num_bytes`` with the given (or default) pattern."""
        pattern = pattern or TrafficPattern(average_burst_lines=4.0, aligned=True)
        return self.dram.transfer_cycles(num_bytes, frequency_ghz, pattern)
