"""Off-chip DRAM (HBM) bandwidth and timing model.

The accelerator models are phase-level: for each phase they know how many
bytes must cross the off-chip interface and with what access pattern.  The
DRAM model converts that into cycles using the configured peak bandwidth and
an *efficiency* factor derived from the pattern:

* long, aligned, streaming bursts (in-place BEICSR rows, dense rows, weight
  streaming) approach ``base_efficiency`` of the peak bandwidth because they
  hit open row buffers and fill whole bursts;
* short, unaligned, random accesses (packed CSR rows) fall towards
  ``random_efficiency`` because every access opens a new row and part of each
  burst is wasted.

This captures the first-order behaviour the paper's DRAMsim3 simulations
exhibit without simulating individual banks cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DRAMConfig
from repro.errors import SimulationError


@dataclass(frozen=True)
class TrafficPattern:
    """Description of an access pattern for efficiency estimation.

    Attributes:
        average_burst_lines: Mean number of consecutive cachelines per
            access (1 = fully random single-line accesses).
        aligned: Whether accesses start at cacheline/burst boundaries.
        sequential_fraction: Fraction of the traffic that is long streaming
            (weights, topology, output writes) rather than random row reads.
    """

    average_burst_lines: float = 1.0
    aligned: bool = True
    sequential_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.average_burst_lines <= 0:
            raise SimulationError("average burst length must be positive")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise SimulationError("sequential fraction must lie in [0, 1]")


class DRAMModel:
    """Bandwidth/efficiency model of the off-chip memory."""

    #: Burst length (in cachelines) beyond which efficiency saturates at base.
    SATURATION_BURST_LINES = 8.0

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    def efficiency(self, pattern: TrafficPattern) -> float:
        """Achievable fraction of peak bandwidth for ``pattern``."""
        span = self.config.base_efficiency - self.config.random_efficiency
        burst = min(pattern.average_burst_lines, self.SATURATION_BURST_LINES)
        burst_factor = (burst - 1.0) / (self.SATURATION_BURST_LINES - 1.0)
        random_part = self.config.random_efficiency + span * burst_factor
        if not pattern.aligned:
            # Unaligned accesses waste part of every burst and break
            # row-buffer locality; model as a 15% efficiency penalty.
            random_part *= 0.85
        efficiency = (
            pattern.sequential_fraction * self.config.base_efficiency
            + (1.0 - pattern.sequential_fraction) * random_part
        )
        return float(np.clip(efficiency, 0.05, self.config.base_efficiency))

    def effective_bandwidth_gbps(self, pattern: TrafficPattern) -> float:
        """Achievable bandwidth in GB/s for ``pattern``."""
        return self.config.peak_bandwidth_gbps * self.efficiency(pattern)

    def transfer_cycles(
        self,
        num_bytes: float,
        frequency_ghz: float,
        pattern: TrafficPattern,
    ) -> float:
        """Cycles needed to transfer ``num_bytes`` at ``frequency_ghz``.

        Bandwidth in GB/s divided by the clock in GHz gives bytes per cycle,
        so ``cycles = bytes / (bandwidth / frequency)``.
        """
        if num_bytes < 0:
            raise SimulationError("byte count must be non-negative")
        if num_bytes == 0:
            return 0.0
        bytes_per_cycle = self.effective_bandwidth_gbps(pattern) / frequency_ghz
        return float(num_bytes / bytes_per_cycle)

    # ------------------------------------------------------------------ #
    def channel_of(self, line_address: int) -> int:
        """Channel servicing ``line_address`` (line-interleaved mapping)."""
        return int(line_address) % self.config.channels

    def bank_of(self, line_address: int) -> int:
        """Bank (within its channel) servicing ``line_address``."""
        lines_per_row = max(1, self.config.row_buffer_bytes // self.config.burst_bytes)
        return (int(line_address) // (self.config.channels * lines_per_row)) % (
            self.config.banks_per_channel
        )

    def row_buffer_hit_rate(self, line_addresses: np.ndarray) -> float:
        """Fraction of accesses that hit an open row buffer.

        Computed over a (possibly sampled) address trace by checking whether
        consecutive accesses to the same channel fall into the same DRAM row.
        Used by tests and by the ablation analysis of in-place vs packed
        layouts; the phase-level timing uses :meth:`efficiency` instead.
        """
        line_addresses = np.asarray(line_addresses, dtype=np.int64)
        if line_addresses.size < 2:
            return 0.0
        lines_per_row = max(1, self.config.row_buffer_bytes // self.config.burst_bytes)
        open_rows: dict = {}
        hits = 0
        for line in line_addresses.tolist():
            channel = line % self.config.channels
            row = line // (self.config.channels * lines_per_row)
            if open_rows.get(channel) == row:
                hits += 1
            open_rows[channel] = row
        return hits / line_addresses.size
