"""Set-associative LRU cache simulator.

Models the accelerator's global on-chip cache (paper Table III: 512 KB,
16-way, LRU).  The simulator operates at cacheline granularity: the
accelerator models feed it the line addresses produced by the feature-format
layouts, and it reports hits, misses, and writebacks.  Misses and writebacks
are what generate off-chip DRAM traffic.

The implementation favours clarity and predictable O(ways) behaviour per
access, which is fast enough for the scaled-down graphs the experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.core.config import CacheConfig
from repro.errors import ConfigurationError


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`CacheSimulator`.

    Attributes:
        accesses: Total line accesses.
        hits: Accesses that found the line resident.
        misses: Accesses that had to fetch the line from DRAM.
        writebacks: Dirty lines evicted (written back to DRAM).
        line_bytes: Cacheline size, for converting counts to bytes.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    line_bytes: int = 64

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_bytes(self) -> int:
        """Bytes fetched from DRAM due to misses."""
        return self.misses * self.line_bytes

    @property
    def writeback_bytes(self) -> int:
        """Bytes written back to DRAM due to dirty evictions."""
        return self.writebacks * self.line_bytes

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic (fills plus writebacks)."""
        return self.miss_bytes + self.writeback_bytes

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writebacks=self.writebacks + other.writebacks,
            line_bytes=self.line_bytes,
        )


class CacheSimulator:
    """A set-associative, LRU, write-back/write-allocate cache.

    Args:
        config: Cache geometry and policy.
        pinned_lines: Optional set of line addresses that are never evicted
            once installed.  Used to model EnGN's degree-aware vertex cache,
            which statically pins the features of high-degree vertices.
    """

    def __init__(self, config: CacheConfig, pinned_lines: Optional[Set[int]] = None) -> None:
        if config.replacement != "lru":
            raise ConfigurationError("only LRU replacement is implemented")
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        # Per-set MRU-ordered list of tags and per-set dirty tag sets.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: List[Set[int]] = [set() for _ in range(self.num_sets)]
        self._pinned = pinned_lines or set()
        self.stats = CacheStats(line_bytes=config.line_bytes)

    # ------------------------------------------------------------------ #
    def reset_stats(self) -> None:
        """Clear counters without flushing cache contents."""
        self.stats = CacheStats(line_bytes=self.config.line_bytes)

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache.

        Returns:
            The number of writebacks performed.
        """
        writebacks = sum(len(dirty) for dirty in self._dirty)
        self.stats.writebacks += writebacks
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty = [set() for _ in range(self.num_sets)]
        return writebacks

    # ------------------------------------------------------------------ #
    def access(self, line: int, write: bool = False) -> bool:
        """Access one cacheline.

        Args:
            line: Line address (already divided by the line size).
            write: Mark the line dirty (write-allocate policy).

        Returns:
            ``True`` on a hit, ``False`` on a miss.
        """
        set_index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets[set_index]
        dirty = self._dirty[set_index]
        self.stats.accesses += 1

        if tag in entries:
            self.stats.hits += 1
            entries.remove(tag)
            entries.insert(0, tag)
            if write:
                dirty.add(tag)
            return True

        self.stats.misses += 1
        entries.insert(0, tag)
        if write:
            dirty.add(tag)
        if len(entries) > self.ways:
            victim = self._select_victim(set_index)
            entries.remove(victim)
            if victim in dirty:
                dirty.discard(victim)
                self.stats.writebacks += 1
        return False

    def _select_victim(self, set_index: int) -> int:
        """Choose the eviction victim: LRU among non-pinned lines."""
        entries = self._sets[set_index]
        for tag in reversed(entries):
            line = tag * self.num_sets + set_index
            if line not in self._pinned:
                return tag
        # Every resident line is pinned; evict the true LRU anyway to make
        # forward progress (the pinned working set exceeded the way count).
        return entries[-1]

    def access_many(self, lines: Iterable[int], write: bool = False) -> int:
        """Access a sequence of lines; returns the number of misses."""
        misses = 0
        for line in lines:
            if not self.access(int(line), write=write):
                misses += 1
        return misses

    # ------------------------------------------------------------------ #
    def contains(self, line: int) -> bool:
        """Whether ``line`` is currently resident (does not update LRU/stats)."""
        set_index = line % self.num_sets
        tag = line // self.num_sets
        return tag in self._sets[set_index]

    def occupancy(self) -> float:
        """Fraction of cache capacity currently holding valid lines."""
        used = sum(len(entries) for entries in self._sets)
        return used / (self.num_sets * self.ways)

    def pin_lines(self, lines: Iterable[int]) -> None:
        """Add lines to the pinned (never-evicted) set and pre-install them."""
        for line in lines:
            line = int(line)
            self._pinned.add(line)
            set_index = line % self.num_sets
            tag = line // self.num_sets
            if tag not in self._sets[set_index]:
                self._sets[set_index].insert(0, tag)
                if len(self._sets[set_index]) > self.ways:
                    victim = self._select_victim(set_index)
                    self._sets[set_index].remove(victim)
                    if victim in self._dirty[set_index]:
                        self._dirty[set_index].discard(victim)
                        self.stats.writebacks += 1

    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "accesses": self.stats.accesses,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "writebacks": self.stats.writebacks,
        }
