"""Memory hierarchy models: on-chip cache, HBM DRAM, and energy tables."""

from __future__ import annotations

from repro.memory.cache import CacheSimulator, CacheStats
from repro.memory.dram import DRAMModel, TrafficPattern
from repro.memory.hierarchy import MemoryHierarchy, AccessStats
from repro.memory.rowcache import RowCache, RowCacheStats
from repro.memory.replay import (
    ReplayEngine,
    TraceCache,
    replay_accesses,
    replay_trace,
)
from repro.memory.energy import EnergyTable, EnergyBreakdown

__all__ = [
    "CacheSimulator",
    "CacheStats",
    "RowCache",
    "RowCacheStats",
    "ReplayEngine",
    "TraceCache",
    "replay_accesses",
    "replay_trace",
    "DRAMModel",
    "TrafficPattern",
    "MemoryHierarchy",
    "AccessStats",
    "EnergyTable",
    "EnergyBreakdown",
]
