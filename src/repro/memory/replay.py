"""Vectorized trace replay through the row-granularity LRU cache model.

:class:`~repro.memory.rowcache.RowCache` replays a feature-access trace one
access at a time through an ``OrderedDict`` — exact, but pure Python, and the
single hottest loop of every simulation (one replay per feature pass per
layer per run).  This module computes the *same statistics* for a whole trace
with numpy, using a classical property of fully-associative evict-until-fit
LRU caches:

    An access to row ``r`` hits iff ``r`` was accessed before and
    ``size[r] + U <= capacity``, where ``U`` is the total size of the
    *distinct installable* rows accessed since ``r``'s previous access
    (installable = not larger than the whole cache, which streams through
    without being installed).

The proof sketch: contents always form a prefix of the recency stack
(eviction only removes the LRU tail, exactly until the new row fits), and
every row accessed since ``r``'s previous access is either still resident
above ``r`` or was never installed — if it had been evicted, ``r`` (older)
would have been evicted first.  With one fixed size per row — which is how
every replay in this repository works, the per-pass size table — the
condition is exact, and matches ``RowCache.access_trace`` bit for bit (the
golden equivalence tests pin this).

The distinct-footprint sums are reuse-interval computations.  We evaluate
them with an offline mergesort tree: for every access ``i`` with previous
occurrence ``p``, the sum of ``w[j]`` over window positions ``p < j < i``
whose own previous occurrence lies at or before ``p`` (i.e. the first
in-window occurrence of each distinct row).  The tree's permutations and
query positions depend only on the *trace*, not on the sizes, so the
structure is built once per trace (:class:`ReplayEngine`) and each
evaluation — per feature pass, per layer, per accelerator configuration —
is a handful of gathers and cumulative sums.  :class:`TraceCache` memoizes
the engines (and the traces they replay) across runs; a sweep over N
accelerators x M cache sizes builds each trace structure once instead of
N x M times.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import replace
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.memory.rowcache import RowCache, RowCacheStats
from repro.telemetry.spans import span

#: Index dtype of the precomputed tree structure.  Traces are bounded far
#: below 2**31 accesses (they are per-pass edge counts), so 32-bit indices
#: halve the structure's footprint.
_INDEX_DTYPE = np.int32


def _previous_occurrences(trace: np.ndarray) -> np.ndarray:
    """Index of each access's previous occurrence of the same row (-1 if none)."""
    n = trace.size
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(trace, kind="stable")
    sorted_rows = trace[order]
    same = sorted_rows[1:] == sorted_rows[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


class ReplayEngine:
    """Array-based replay of one access trace through the LRU row cache.

    The engine precomputes everything that depends only on the trace — the
    previous-occurrence links and the mergesort-tree used for the
    distinct-footprint sums — so that :meth:`replay` / :meth:`replay_many`
    evaluate a new per-row size table (a new feature pass or layer) without
    touching a Python loop.

    Args:
        trace: ``int64`` row ids in access order (one entry per feature-row
            access), as produced by
            :func:`repro.accelerator.tiling.aggregation_access_trace`.
        pinned: Optional row ids held in a dedicated cache partition (EnGN's
            DAVC).  Their accesses always hit and never compete for the
            shared capacity; the engine filters them out of the replayed
            trace and accounts for them analytically, reproducing the
            pinned-partition semantics of the simulator in one place.
    """

    def __init__(self, trace: np.ndarray, pinned: Optional[np.ndarray] = None) -> None:
        with span("engine_build"):
            trace = np.ascontiguousarray(trace, dtype=np.int64)
            if trace.ndim != 1:
                raise ConfigurationError("trace must be a one-dimensional array")
            self.total_accesses = int(trace.size)

            if pinned is not None and len(pinned) and trace.size:
                pinned = np.asarray(pinned, dtype=np.int64)
                lookup = np.zeros(int(trace.max()) + 1, dtype=bool)
                lookup[pinned[pinned <= trace.max()]] = True
                pinned_mask = lookup[trace]
                self.pinned_rows = trace[pinned_mask]
                self.trace = trace[~pinned_mask]
            else:
                self.pinned_rows = np.zeros(0, dtype=np.int64)
                self.trace = trace

            self.prev = _previous_occurrences(self.trace)
            # Eval-loop constants: clipped previous-occurrence index (+1, for
            # the exclusive prefix-sum lookup) and the repeat-access mask.
            self._prev_plus1 = np.where(self.prev >= 0, self.prev, 0) + 1
            self._seen_before = self.prev >= 0
            self._build_structure(self.trace.size, self.prev)
        # Result memo keyed by (size-table digest, capacity).  Dense-style
        # formats feed the same constant table for every layer and pass of a
        # run, so most evaluations of an engine repeat a previous one.
        self._memo: "OrderedDict[Tuple[str, int], RowCacheStats]" = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        # Size-table digest memo keyed by object identity.  The strong
        # reference to the table keeps its id() from being recycled; tables
        # are never mutated in place by the simulator, so identity implies
        # content equality.
        self._token_cache: "OrderedDict[int, Tuple[np.ndarray, str]]" = OrderedDict()

    # ------------------------------------------------------------------ #
    # Structure construction (trace-only, size-independent)
    # ------------------------------------------------------------------ #
    def _build_structure(self, n: int, prev: np.ndarray) -> None:
        """Flattened mergesort tree for the windowed distinct-footprint sums.

        Every (contributor ``j``, query ``i``) pair with ``j < i`` is
        separated at exactly one level: the one where they fall in sibling
        halves of the same block.  At that level the contribution of ``j``
        to ``i`` is ``w[j]`` iff ``prev[j] > prev[i]`` (``j`` is *not* the
        first in-window occurrence of its row; these duplicates are
        subtracted from the plain interval sum).  Per level the left-half
        positions are sorted by ``prev`` within each block, and each query's
        contribution is a suffix sum of its sibling block's segment.

        All levels are concatenated into one workspace so that an
        evaluation is a handful of large array operations rather than a few
        small ones per level: one gather of the weights through
        ``_gather``, one cumulative sum (prefix sums taken strictly inside
        one segment, so concatenation never leaks across blocks), one
        suffix-sum lookup per query via ``_lo``/``_hi``, and one exact
        integer segment reduction (``np.add.reduceat``) that folds the
        per-level contributions of each query together (``_reduce_starts``
        / ``_query_rows``).  Everything here depends only on the trace,
        never on the size tables.
        """
        if n < 2 or not np.any(prev >= 0):
            self._gather = np.zeros(0, dtype=_INDEX_DTYPE)
            self._reduce_starts = np.zeros(0, dtype=_INDEX_DTYPE)
            self._query_rows = np.zeros(0, dtype=_INDEX_DTYPE)
            self._lo = np.zeros(0, dtype=_INDEX_DTYPE)
            self._hi = np.zeros(0, dtype=_INDEX_DTYPE)
            return

        # Position j is a contributor at level l (1-based, half-width
        # 2**(l-1)) iff bit l-1 of j is 0 (left half of its block), a query
        # iff that bit is 1; (level, block) pairs are numbered like heap
        # nodes so the whole tree flattens into ONE sort.  First occurrences
        # (prev < 0) are dropped from both sides outright: they can never
        # satisfy prev[j] > prev[i] >= 0.
        num_levels = max(1, int(np.ceil(np.log2(n))))
        levels = np.arange(1, num_levels + 1, dtype=np.int64)
        positions = np.arange(n, dtype=np.int64)
        seen = prev >= 0
        side = (positions[None, :] >> (levels[:, None] - 1)) & 1
        level_of, pos_of = np.nonzero((side == 0) & seen[None, :])
        level_of += 1
        node_of = (np.int64(1) << (num_levels - level_of)) + (pos_of >> level_of)

        q_level, q_pos = np.nonzero((side == 1) & seen[None, :])
        q_level += 1
        q_node = (np.int64(1) << (num_levels - q_level)) + (q_pos >> q_level)
        node_space = (np.int64(1) << num_levels) + 1

        span = np.int64(n) + 2
        key = node_of * span + (prev[pos_of] + 1)
        order = np.argsort(key, kind="stable")
        gather = pos_of[order]
        sorted_key = key[order]
        node_sorted = node_of[order]

        # A query is live iff some contributor of its node has a larger
        # prev — i.e. its prev is below the node's maximum.  Each node's
        # segment is prev-ascending, so a last-write-wins fancy assignment
        # leaves exactly the per-node maximum; filtering on it *before* the
        # searchsorted removes the (typically dominant) dead majority.
        node_max_prev = np.full(node_space, -2, dtype=np.int64)
        node_max_prev[node_sorted] = prev[gather]
        live = prev[q_pos] < node_max_prev[q_node]
        q_pos, q_node = q_pos[live], q_node[live]

        lo = np.searchsorted(sorted_key, q_node * span + (prev[q_pos] + 1), side="right")
        max_node = int(node_sorted[-1]) if node_sorted.size else 0
        segment_ends = np.cumsum(np.bincount(node_sorted, minlength=max_node + 2))
        hi = segment_ends[np.minimum(q_node, max_node + 1)]

        # Group the per-level query entries by query position so one
        # reduceat folds every level's contribution of a query together.
        grouping = np.argsort(q_pos, kind="stable")
        grouped = q_pos[grouping]
        is_start = np.ones(grouped.size, dtype=bool)
        if grouped.size:
            is_start[1:] = grouped[1:] != grouped[:-1]
        self._gather = gather.astype(_INDEX_DTYPE)
        self._reduce_starts = np.flatnonzero(is_start).astype(_INDEX_DTYPE)
        self._query_rows = grouped[is_start].astype(_INDEX_DTYPE)
        self._lo = lo[grouping].astype(_INDEX_DTYPE)
        self._hi = hi[grouping].astype(_INDEX_DTYPE)

    def structure_bytes(self) -> int:
        """Approximate memory footprint of the precomputed structure."""
        return int(
            self.prev.nbytes
            + self.trace.nbytes
            + self.pinned_rows.nbytes
            + self._gather.nbytes
            + self._reduce_starts.nbytes
            + self._query_rows.nbytes
            + self._lo.nbytes
            + self._hi.nbytes
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def replay_many(
        self, size_tables: Sequence[np.ndarray], capacity_lines: int
    ) -> List[RowCacheStats]:
        """Replay the trace once per size table (one table per feature pass).

        Args:
            size_tables: Per-row size lookup tables (indexed by row id), one
                per pass; each pass starts from an empty cache, matching the
                per-pass ``flush()`` of the reference path.
            capacity_lines: Shared-cache capacity in cachelines.

        Returns:
            One :class:`RowCacheStats` per table, bit-identical to replaying
            the same trace through :meth:`RowCache.access_trace`.
        """
        if capacity_lines <= 0:
            raise ConfigurationError("cache capacity must be positive")
        return [self._replay_one(table, capacity_lines) for table in size_tables]

    #: Result-memo capacity.  A single run touches at most a few distinct
    #: tables, but a capacity sweep seeds tables x capacities entries (a
    #: sliced format's per-pass tables are all distinct: ~13 tables x 5
    #: capacities already overflows 64), so size for the sweep case — the
    #: entries are a few dozen bytes each.
    MEMO_ENTRIES = 512

    #: Table-digest memo capacity; a run feeds a handful of distinct tables.
    TOKEN_ENTRIES = 16

    def _table_token(self, table: np.ndarray) -> str:
        """Digest of a size table, memoized on object identity.

        Dense formats feed the *same* constant table object for every pass
        of every layer; hashing its full contents on each memo lookup costs
        more than the memoized evaluation it guards.  ``table`` must already
        be the contiguous ``int64`` array used for the memo key (the cache
        pins it, so identity stays valid for the entry's lifetime).
        """
        key = id(table)
        entry = self._token_cache.get(key)
        if entry is not None and entry[0] is table:
            self._token_cache.move_to_end(key)
            return entry[1]
        token = array_token(table)
        self._token_cache[key] = (table, token)
        while len(self._token_cache) > self.TOKEN_ENTRIES:
            self._token_cache.popitem(last=False)
        return token

    def _replay_one(
        self,
        table: np.ndarray,
        capacity_lines: int,
        token: Optional[str] = None,
    ) -> RowCacheStats:
        """Evaluate one size table; every operation is a flat 1-D array op."""
        table = np.ascontiguousarray(table, dtype=np.int64)
        if token is None:
            token = self._table_token(table)
        memo_key = (token, int(capacity_lines))
        cached = self._memo.get(memo_key)
        if cached is not None:
            self._memo.move_to_end(memo_key)
            self.memo_hits += 1
            return replace(cached)
        self.memo_misses += 1
        with span("replay_evaluate"):
            stats = self._evaluate(table, capacity_lines)
        self._memo_store(memo_key, stats)
        return stats

    def _memo_store(self, memo_key: Tuple[str, int], stats: RowCacheStats) -> None:
        self._memo[memo_key] = replace(stats)
        while len(self._memo) > self.MEMO_ENTRIES:
            self._memo.popitem(last=False)
            self.memo_evictions += 1

    def memo_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters of the per-(table, capacity) memo."""
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
            "entries": len(self._memo),
        }

    def _footprint(self, sizes: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Distinct in-window footprint per access for one weight vector.

        Depends on the capacity only through ``weights`` (the streaming
        threshold ``sizes <= cap``), so every capacity with the same weight
        vector shares one call — the basis of :meth:`replay_spectrum`.
        """
        n = self.trace.size
        cumulative = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(weights, out=cumulative[1:])
        # footprint = (interval sum) - duplicates = distinct in-window sizes
        footprint = cumulative[:-1] - cumulative[self._prev_plus1]
        footprint += sizes

        # Duplicate-occurrence sums via the flattened tree: one gather, one
        # cumulative sum, one suffix-sum lookup, one exact segment reduction.
        if self._gather.size:
            permuted = weights[self._gather]
            tree_cumulative = np.zeros(permuted.size + 1, dtype=np.int64)
            np.cumsum(permuted, out=tree_cumulative[1:])
            contributions = tree_cumulative[self._hi]
            contributions -= tree_cumulative[self._lo]
            footprint[self._query_rows] -= np.add.reduceat(
                contributions, self._reduce_starts
            )
        return footprint

    def _hit_stats(
        self,
        sizes: np.ndarray,
        footprint: np.ndarray,
        capacity_lines: int,
        pinned_lines: int,
    ) -> RowCacheStats:
        """Fold one capacity's hit test over a precomputed footprint array."""
        hit = footprint <= capacity_lines
        hit &= self._seen_before

        hits = int(np.count_nonzero(hit))
        hit_lines = int(sizes.sum(where=hit, initial=0))
        miss_lines = int(sizes.sum()) - hit_lines
        return self._merge_pinned(
            self.trace.size, hits, hit_lines, miss_lines, pinned_lines
        )

    def _evaluate(self, table: np.ndarray, capacity_lines: int) -> RowCacheStats:
        n = self.trace.size
        pinned_lines = int(table[self.pinned_rows].sum())
        if n == 0:
            return self._merge_pinned(0, 0, 0, 0, pinned_lines)

        sizes = table[self.trace]  # true per-access sizes
        weights = np.where(sizes <= capacity_lines, sizes, 0)
        footprint = self._footprint(sizes, weights)
        return self._hit_stats(sizes, footprint, capacity_lines, pinned_lines)

    def replay_spectrum(
        self, table: np.ndarray, capacities: Sequence[int]
    ) -> List[RowCacheStats]:
        """Replay one size table against a whole vector of capacities.

        The mergesort-tree structure is capacity-independent, and the
        capacity enters :meth:`_evaluate` only through the streaming
        threshold (``sizes <= cap``) and the final ``footprint <= cap``
        compare.  Two capacities produce identical weight vectors iff no
        access size lies strictly between them, so the capacities are
        grouped by ``searchsorted`` over the unique access sizes: one
        footprint computation per group, then one cheap broadcast hit test
        per capacity.  In the common case — every row fits in every queried
        capacity — that is a *single* group for the entire spectrum.

        Results are stored in the same ``(table-digest, capacity)`` memo
        that :meth:`replay` uses, so a later single-capacity call returns
        the spectrum-computed value (bit-identical: the per-group math is
        exactly :meth:`_evaluate`'s, in the same integer ops).

        Args:
            table: Per-row size lookup table (indexed by row id).
            capacities: Cache capacities in cachelines; duplicates allowed.

        Returns:
            One :class:`RowCacheStats` per requested capacity, in order.
        """
        caps = [int(capacity) for capacity in capacities]
        if any(capacity <= 0 for capacity in caps):
            raise ConfigurationError("cache capacity must be positive")
        table = np.ascontiguousarray(table, dtype=np.int64)
        token = self._table_token(table)

        results: Dict[int, RowCacheStats] = {}
        missing: List[int] = []
        for capacity in caps:
            if capacity in results:
                continue
            cached = self._memo.get((token, capacity))
            if cached is not None:
                self._memo.move_to_end((token, capacity))
                self.memo_hits += 1
                results[capacity] = cached
            else:
                missing.append(capacity)

        if missing:
            with span("replay_evaluate"):
                computed = self._evaluate_spectrum(table, sorted(missing))
            for capacity, stats in computed.items():
                self.memo_misses += 1
                self._memo_store((token, capacity), stats)
                results[capacity] = stats
        return [replace(results[capacity]) for capacity in caps]

    def replay_spectrum_many(
        self, size_tables: Sequence[np.ndarray], capacities: Sequence[int]
    ) -> List[List[RowCacheStats]]:
        """Replay many size tables against a shared capacity vector.

        The per-table math is exactly :meth:`replay_spectrum`'s; the win is
        deduplication *before* evaluation: tables with equal content (dense
        formats feed dozens of identical pass tables per run) collapse to
        one evaluation per distinct digest, and results land in the same
        ``(table-digest, capacity)`` memo as :meth:`replay` /
        :meth:`replay_spectrum` so sibling runs in the same sweep class
        answer from cache.

        Args:
            size_tables: Per-row size lookup tables (indexed by row id).
            capacities: Cache capacities in cachelines; duplicates allowed.

        Returns:
            One list of :class:`RowCacheStats` per table, each with one
            entry per requested capacity, in order.
        """
        caps = [int(capacity) for capacity in capacities]
        if any(capacity <= 0 for capacity in caps):
            raise ConfigurationError("cache capacity must be positive")
        tables = [
            np.ascontiguousarray(table, dtype=np.int64) for table in size_tables
        ]
        tokens = [self._table_token(table) for table in tables]
        unique_caps = list(dict.fromkeys(caps))

        # Resolve per distinct table *content*: equal-content tables (dense
        # formats feed dozens per run) evaluate once and share the result,
        # exactly as a sequential memo-checking loop would.
        resolved: Dict[str, Dict[int, RowCacheStats]] = {}
        for table, token in zip(tables, tokens):
            if token in resolved:
                self.memo_hits += len(unique_caps)
                continue
            results: Dict[int, RowCacheStats] = {}
            resolved[token] = results
            for capacity in unique_caps:
                cached = self._memo.get((token, capacity))
                if cached is not None:
                    self._memo.move_to_end((token, capacity))
                    self.memo_hits += 1
                    results[capacity] = cached
            if len(results) == len(unique_caps):
                continue
            with span("replay_evaluate"):
                computed = self._evaluate_spectrum(
                    table, sorted(set(unique_caps) - set(results))
                )
            for capacity, stats in computed.items():
                self.memo_misses += 1
                self._memo_store((token, capacity), stats)
                results[capacity] = stats
        return [
            [replace(resolved[token][capacity]) for capacity in caps]
            for token in tokens
        ]

    def _evaluate_spectrum(
        self, table: np.ndarray, caps: List[int]
    ) -> Dict[int, RowCacheStats]:
        """Evaluate distinct capacities grouped by shared weight vector."""
        n = self.trace.size
        pinned_lines = int(table[self.pinned_rows].sum())
        out: Dict[int, RowCacheStats] = {}
        if n == 0:
            for capacity in caps:
                out[capacity] = self._merge_pinned(0, 0, 0, 0, pinned_lines)
            return out

        sizes = table[self.trace]  # true per-access sizes
        unique_sizes = np.unique(sizes)
        caps_arr = np.asarray(caps, dtype=np.int64)
        # Same group <=> no access size strictly between the capacities
        # <=> identical ``sizes <= cap`` masks, hence identical weights.
        group_of = np.searchsorted(unique_sizes, caps_arr, side="right")
        for group in np.unique(group_of):
            group_caps = caps_arr[group_of == group]
            weights = np.where(sizes <= int(group_caps[0]), sizes, 0)
            footprint = self._footprint(sizes, weights)
            for capacity in group_caps.tolist():
                out[capacity] = self._hit_stats(
                    sizes, footprint, capacity, pinned_lines
                )
        return out

    def replay(self, sizes: np.ndarray, capacity_lines: int) -> RowCacheStats:
        """Replay the trace once against one per-row size table."""
        return self.replay_many([np.asarray(sizes)], capacity_lines)[0]

    def _merge_pinned(
        self, accesses: int, hits: int, hit_lines: int, miss_lines: int, pinned_lines: int
    ) -> RowCacheStats:
        accesses += self.pinned_rows.size
        hits += self.pinned_rows.size
        hit_lines += pinned_lines
        return RowCacheStats(
            accesses=accesses,
            hits=hits,
            misses=accesses - hits,
            miss_lines=miss_lines,
            hit_lines=hit_lines,
        )


def replay_trace(
    trace: np.ndarray, sizes: np.ndarray, capacity_lines: int
) -> RowCacheStats:
    """One-shot vectorized equivalent of ``RowCache(c).access_trace(trace, sizes)``."""
    return ReplayEngine(trace).replay(sizes, capacity_lines)


def replay_accesses(
    rows: np.ndarray, sizes_per_access: np.ndarray, capacity_lines: int
) -> RowCacheStats:
    """Replay a trace whose sizes are given *per access* rather than per row.

    When every access of a row carries the same size (the only shape the
    simulator produces), this dispatches to the vectorized engine.  Traces
    that re-access a row with a different size exercise the resize-on-
    reaccess semantics of :class:`RowCache` (miss for the delta only), which
    have no closed-form stack characterization; those fall back to the
    reference implementation so the answer stays exact.
    """
    rows = np.asarray(rows, dtype=np.int64)
    sizes_per_access = np.asarray(sizes_per_access, dtype=np.int64)
    if rows.shape != sizes_per_access.shape:
        raise ConfigurationError("rows and sizes_per_access must align")
    if rows.size == 0:
        return RowCache(capacity_lines).stats

    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_sizes = sizes_per_access[order]
    same = sorted_rows[1:] == sorted_rows[:-1]
    constant = bool(np.all(sorted_sizes[1:][same] == sorted_sizes[:-1][same]))
    if constant:
        table = np.zeros(int(rows.max()) + 1, dtype=np.int64)
        table[rows] = sizes_per_access
        return ReplayEngine(rows).replay(table, capacity_lines)

    cache = RowCache(capacity_lines)
    for row, size in zip(rows.tolist(), sizes_per_access.tolist()):
        cache.access(row, size)
    return cache.stats


def _entry_bytes(value: object) -> int:
    """Best-effort memory footprint of one cache entry.

    Replay engines expose :meth:`ReplayEngine.structure_bytes`; arrays (and
    graph objects that implement the same protocol) expose ``nbytes``.
    Entries with neither report 0 — the bytes gauge is an observability aid,
    not an accounting invariant.
    """
    probe = getattr(value, "structure_bytes", None)
    if callable(probe):
        return int(probe())
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return 0


class TraceCache:
    """LRU memo for traces, replay engines, and derived graphs.

    The keys are composite hashable tuples built by the simulator from a
    graph fingerprint plus the schedule knobs (tiling plan, engine count and
    partitioning, strip height).  Everything stored here depends only on
    (dataset, tiling plan, engine partition, format) — never on the
    accelerator's *timing* knobs — so a sweep over N accelerator
    configurations x M cache sizes rebuilds each entry once instead of
    N x M times.  :class:`repro.core.session.Session` owns one instance and
    threads it through every run.

    Besides the hit/miss counters the cache tracks evictions and an
    approximate resident-bytes gauge (:func:`_entry_bytes` per entry), all
    reported by :meth:`stats` and surfaced through
    :meth:`repro.core.session.Session.metrics_snapshot`.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.current_bytes = 0

    def get(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building and storing on miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        value = builder()
        self.misses += 1
        self._entries[key] = value
        self.current_bytes += _entry_bytes(value)
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            self.current_bytes -= _entry_bytes(evicted)
        return value

    def clear(self) -> None:
        """Drop every entry, counting each as an eviction.

        Counting the dropped entries keeps :meth:`stats` an accounting
        identity — every miss either remains resident (``entries``) or was
        evicted, so ``hits + misses >= entries + evictions`` always holds.
        """
        self.evictions += len(self._entries)
        self._entries.clear()
        self.current_bytes = 0

    def values(self):
        """Iterate over the cached values (LRU to MRU order)."""
        return self._entries.values()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/bytes counters, e.g. for metrics snapshots."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "bytes": max(0, int(self.current_bytes)),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


def array_token(array: np.ndarray) -> str:
    """Short stable digest of an array's contents, for composite cache keys."""
    digest = hashlib.sha1()
    array = np.ascontiguousarray(array)
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


__all__ = [
    "ReplayEngine",
    "TraceCache",
    "array_token",
    "replay_accesses",
    "replay_trace",
]
