"""Row-granularity LRU cache model.

The accelerator experiments replay millions of feature-row accesses, which a
line-by-line set-associative simulation cannot sustain in pure Python.  The
designs we model always fetch a feature row (or slice group) as a unit, so a
fully-associative LRU cache whose *entries are rows* and whose *capacity is
measured in cachelines* captures the locality behaviour that matters — how
many distinct rows fit on chip and how reuse distance compares to that — at a
fraction of the cost.  The precise line-level simulator
(:class:`repro.memory.cache.CacheSimulator`) remains available and is used by
the unit tests to validate this model on small traces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class RowCacheStats:
    """Counters accumulated by a :class:`RowCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    miss_lines: int = 0
    hit_lines: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of row accesses that hit."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def line_hit_rate(self) -> float:
        """Fraction of cachelines served from the cache."""
        total = self.hit_lines + self.miss_lines
        if total == 0:
            return 0.0
        return self.hit_lines / total

    def miss_bytes(self, line_bytes: int = 64) -> int:
        """DRAM fill traffic in bytes."""
        return self.miss_lines * line_bytes


class RowCache:
    """Fully-associative LRU cache of variable-size feature rows.

    Args:
        capacity_lines: Capacity in cachelines.
    """

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity_lines = int(capacity_lines)
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self._used_lines = 0
        self.stats = RowCacheStats()

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Empty the cache and clear the statistics."""
        self._entries.clear()
        self._used_lines = 0
        self.stats = RowCacheStats()

    def flush(self) -> None:
        """Empty the cache, keeping the statistics."""
        self._entries.clear()
        self._used_lines = 0

    def reset_stats(self) -> None:
        """Clear the statistics, keeping the contents."""
        self.stats = RowCacheStats()

    @property
    def used_lines(self) -> int:
        """Number of cachelines currently occupied."""
        return self._used_lines

    def occupancy(self) -> float:
        """Fraction of the capacity currently in use."""
        return self._used_lines / self.capacity_lines

    def contains(self, row: int) -> bool:
        """Whether ``row`` is resident (no LRU update, no stats)."""
        return row in self._entries

    # ------------------------------------------------------------------ #
    def access(self, row: int, size_lines: int) -> bool:
        """Access ``row`` occupying ``size_lines`` cachelines.

        Returns ``True`` on a hit.  On a miss the row is installed, evicting
        least-recently-used rows until it fits.  If a resident row is
        re-accessed with a different size (a new layer reusing the same
        vertex id), the entry is resized and treated as a hit only when the
        new size does not exceed the cached size.
        """
        size_lines = int(size_lines)
        self.stats.accesses += 1
        entries = self._entries
        if row in entries:
            cached_size = entries.pop(row)
            if size_lines <= cached_size:
                entries[row] = cached_size
                self.stats.hits += 1
                self.stats.hit_lines += size_lines
                return True
            # Larger than what is cached: fetch the difference.
            self._used_lines -= cached_size
            self._install(row, size_lines)
            self.stats.misses += 1
            self.stats.miss_lines += size_lines - cached_size
            self.stats.hit_lines += cached_size
            return False

        self.stats.misses += 1
        self.stats.miss_lines += size_lines
        self._install(row, size_lines)
        return False

    def access_trace(self, rows: np.ndarray, sizes: np.ndarray) -> RowCacheStats:
        """Access a whole trace; ``sizes[row]`` gives each row's size in lines.

        Args:
            rows: Row ids in access order.
            sizes: Per-row size lookup table (indexed by row id).

        Returns:
            The cache's cumulative statistics (also available as ``.stats``).
        """
        access = self.access
        sizes_list = sizes.tolist()
        for row in rows.tolist():
            access(row, sizes_list[row])
        return self.stats

    # ------------------------------------------------------------------ #
    def _install(self, row: int, size_lines: int) -> None:
        entries = self._entries
        if size_lines > self.capacity_lines:
            # A row larger than the whole cache streams through: nothing is
            # retained, so do not install it.
            return
        while self._used_lines + size_lines > self.capacity_lines and entries:
            _, evicted_size = entries.popitem(last=False)
            self._used_lines -= evicted_size
        entries[row] = size_lines
        self._used_lines += size_lines
