"""Energy model constants and accounting.

The paper synthesises its logic with a 45 nm library scaled to 32 nm, uses
CACTI for the on-chip cache and DRAMsim3 for HBM energy.  We reproduce the
*structure* of that model — energy is the sum of compute (MAC operations),
on-chip cache accesses, and off-chip DRAM transfers — with per-event energy
constants in the well-established ratios for a ~32 nm node and HBM2:

* a 32-bit fixed-point MAC costs on the order of a picojoule,
* reading a 64-byte line from a ~512 KB SRAM costs tens of picojoules,
* transferring a byte across an HBM2 interface costs ~4 pJ/bit ≈ 32 pJ/byte.

Because GCN inference is overwhelmingly memory-bound, the DRAM term
dominates, so accelerator-to-accelerator energy ratios track their traffic
ratios — which is exactly the behaviour Fig. 13 of the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumed by one simulation, split by component (joules)."""

    compute_joules: float
    cache_joules: float
    dram_joules: float

    @property
    def total_joules(self) -> float:
        """Total energy."""
        return self.compute_joules + self.cache_joules + self.dram_joules

    def as_dict(self) -> dict:
        """Return the breakdown as a dictionary (including the total)."""
        return {
            "compute": self.compute_joules,
            "cache": self.cache_joules,
            "dram": self.dram_joules,
            "total": self.total_joules,
        }

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            compute_joules=self.compute_joules * factor,
            cache_joules=self.cache_joules * factor,
            dram_joules=self.dram_joules * factor,
        )

    def to_dict(self) -> dict:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        return {
            "compute_joules": self.compute_joules,
            "cache_joules": self.cache_joules,
            "dram_joules": self.dram_joules,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        """Rebuild a breakdown produced by :meth:`to_dict`."""
        return cls(
            compute_joules=float(data["compute_joules"]),
            cache_joules=float(data["cache_joules"]),
            dram_joules=float(data["dram_joules"]),
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_joules=self.compute_joules + other.compute_joules,
            cache_joules=self.cache_joules + other.cache_joules,
            dram_joules=self.dram_joules + other.dram_joules,
        )


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energy constants.

    Attributes:
        mac_pj: Energy per 32-bit multiply-accumulate, in picojoules.
        cache_access_pj: Energy per 64-byte cache access.
        dram_pj_per_byte: Energy per byte moved across the DRAM interface.
        static_power_w: Idle/leakage power of the accelerator, in watts.
    """

    mac_pj: float = 1.2
    cache_access_pj: float = 28.0
    dram_pj_per_byte: float = 32.0
    static_power_w: float = 0.8

    def breakdown(
        self,
        num_macs: float,
        cache_accesses: float,
        dram_bytes: float,
    ) -> EnergyBreakdown:
        """Convert event counts to an :class:`EnergyBreakdown` (joules)."""
        return EnergyBreakdown(
            compute_joules=num_macs * self.mac_pj * 1e-12,
            cache_joules=cache_accesses * self.cache_access_pj * 1e-12,
            dram_joules=dram_bytes * self.dram_pj_per_byte * 1e-12,
        )

    def average_power_w(
        self, breakdown: EnergyBreakdown, cycles: float, frequency_ghz: float
    ) -> float:
        """Average power over an execution of ``cycles`` at ``frequency_ghz``."""
        if cycles <= 0:
            return self.static_power_w
        seconds = cycles / (frequency_ghz * 1e9)
        return breakdown.total_joules / seconds + self.static_power_w
