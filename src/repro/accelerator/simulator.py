"""Phase-level performance simulator shared by all accelerator models.

The simulator follows the structure of the paper's evaluation methodology
(Section VI-A) at a phase level rather than cycle-by-cycle:

* the **aggregation phase** is trace-driven: the schedule built by
  :mod:`repro.accelerator.tiling` is replayed through a row-granularity LRU
  model of the shared global cache, with every feature-row access expanded to
  the cachelines the active feature format would transfer;
* the **combination phase** uses the systolic-array timing model
  (:mod:`repro.accelerator.systolic`);
* each phase's duration is the maximum of its compute time and the time the
  HBM model needs to move its off-chip traffic, and the two phases overlap
  when the design pipelines them;
* energy is the sum of MAC, cache and DRAM energies for the counted events.

Each accelerator model (:mod:`repro.accelerator.baselines`,
:mod:`repro.accelerator.sgcn`) is a configuration of this machinery: which
feature format it stores intermediate features in, whether it tiles, how its
engines partition the vertices, whether its compute skips zeros, and so on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerator.engines import SIMDAggregationEngine
from repro.accelerator.systolic import SystolicArray
from repro.accelerator.tiling import (
    TilingPlan,
    aggregation_access_trace,
    aggregation_access_trace_reference,
    locality_reordering,
    locality_reordering_reference,
    plan_tiling,
)
from repro.core.config import CACHELINE_BYTES, ELEMENT_BYTES, SystemConfig
from repro.core.results import LayerResult, SimulationResult, TrafficBreakdown
from repro.errors import SimulationError
from repro.formats.base import FeatureFormat, bytes_to_lines
from repro.formats.registry import get_format
from repro.gcn.sparsity import row_nonzero_distribution
from repro.graphs.datasets import Dataset
from repro.graphs.graph import CSRGraph
from repro.memory.dram import DRAMModel, TrafficPattern
from repro.memory.energy import EnergyTable
from repro.memory.replay import ReplayEngine, TraceCache, array_token
from repro.memory.rowcache import RowCache, RowCacheStats


# --------------------------------------------------------------------------- #
# Replay backend selection
# --------------------------------------------------------------------------- #
#: Supported trace-replay backends: the vectorized engine
#: (:class:`repro.memory.replay.ReplayEngine`, the default) and the legacy
#: per-access :class:`repro.memory.rowcache.RowCache` loop.  The two are
#: bit-identical (pinned by the golden equivalence tests); the legacy backend
#: exists as the reference implementation and as the baseline the
#: ``repro bench`` harness measures speedups against.
REPLAY_BACKENDS = ("vectorized", "legacy")

#: The legacy backend restores the dominant pre-vectorization paths, not
#: just the cache replay: loop-based trace generation and BFS reordering,
#: per-row ``row_read_lines`` materialisation, and no cross-run trace
#: caching.  (Two minor helpers — ``CSRGraph.reorder`` and BEICSR's
#: ``_split_row_nnz`` — stay vectorized under either backend, so the
#: ``repro bench`` baseline is slightly *faster* than the true pre-PR
#: engine; recorded speedups are conservative.)  The golden tests use the
#: same switch as a whole-pipeline equivalence check.
_replay_backend = "vectorized"


def set_replay_backend(name: str) -> str:
    """Select the aggregation-trace replay backend; returns the previous one."""
    global _replay_backend
    if name not in REPLAY_BACKENDS:
        raise SimulationError(
            f"unknown replay backend {name!r}; choose from {REPLAY_BACKENDS}"
        )
    previous = _replay_backend
    _replay_backend = name
    return previous


def get_replay_backend() -> str:
    """Name of the active trace-replay backend."""
    return _replay_backend


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LayerWorkload:
    """One GCN layer as seen by the accelerator.

    Attributes:
        layer_index: Zero-based layer index.
        width_in: Width of the input features ``X_l``.
        width_out: Width of the output features ``X_{l+1}``.
        input_sparsity: Sparsity of ``X_l``.
        output_sparsity: Sparsity of ``X_{l+1}``.
        is_first_layer: Whether ``X_l`` is the dataset's given input features.
        edge_fraction: Fraction of edges processed (GraphSAGE sampling).
        weighted_aggregation: Whether edge weights are streamed with the
            topology (GCN yes, GINConv no).
    """

    layer_index: int
    width_in: int
    width_out: int
    input_sparsity: float
    output_sparsity: float
    is_first_layer: bool = False
    edge_fraction: float = 1.0
    weighted_aggregation: bool = True


#: Aggregation variants supported by :func:`build_workloads`.
GCN_VARIANTS = ("gcn", "gin", "sage")

#: Edge fraction retained by GraphSAGE's neighbour sampling (Fig. 16b).
SAGE_EDGE_FRACTION = 0.6


def build_workloads(dataset: Dataset, variant: str = "gcn") -> List[LayerWorkload]:
    """Build the per-layer workloads of a deep residual GCN on ``dataset``.

    Args:
        dataset: Dataset (provides widths, layer count, sparsity profile).
        variant: ``"gcn"``, ``"gin"``, or ``"sage"`` (paper Fig. 16).
    """
    variant = variant.lower()
    if variant not in GCN_VARIANTS:
        raise SimulationError(f"unknown GCN variant {variant!r}; choose from {GCN_VARIANTS}")
    edge_fraction = SAGE_EDGE_FRACTION if variant == "sage" else 1.0
    weighted = variant == "gcn"

    profile = dataset.layer_sparsities()
    hidden = dataset.hidden_width
    workloads: List[LayerWorkload] = []
    for index in range(dataset.num_layers):
        if index == 0:
            width_in = dataset.input_feature_width
            input_sparsity = dataset.input_sparsity
        else:
            width_in = hidden
            input_sparsity = profile[index - 1]
        workloads.append(
            LayerWorkload(
                layer_index=index,
                width_in=width_in,
                width_out=hidden,
                input_sparsity=float(input_sparsity),
                output_sparsity=float(profile[index]),
                is_first_layer=index == 0,
                edge_fraction=edge_fraction,
                weighted_aggregation=weighted,
            )
        )
    return workloads


@dataclass
class PhaseResult:
    """Cycle/traffic/compute accounting of one phase of one layer."""

    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    macs: float = 0.0
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    cache_accesses: float = 0.0
    cache_hit_rate: float = 0.0


# --------------------------------------------------------------------------- #
# Simulation context shared by all layers of one run
# --------------------------------------------------------------------------- #
@dataclass
class _RunContext:
    """Objects built once per (dataset, accelerator, config) run."""

    graph: CSRGraph
    config: SystemConfig
    cache_lines: int
    tiling: TilingPlan
    trace: np.ndarray
    pinned_vertices: np.ndarray
    feature_format: FeatureFormat
    simd: SIMDAggregationEngine
    systolic: SystolicArray
    dram: DRAMModel
    energy_table: EnergyTable
    #: Cross-run memo (owned by the Session) for traces/engines/derived graphs.
    trace_cache: Optional[TraceCache] = None
    #: Key prefix identifying the trace within the cache (None = uncached).
    trace_token: Optional[Tuple] = None
    #: Lazily-built replay engines (built on first vectorized replay, so the
    #: legacy backend never pays for a structure it will not use).
    replay_engine: Optional[ReplayEngine] = None
    replay_engine_full: Optional[ReplayEngine] = None

    def engine(self) -> ReplayEngine:
        """Replay engine with the pinned partition folded in."""
        if self.replay_engine is None:
            builder = lambda: ReplayEngine(self.trace, pinned=self.pinned_vertices)
            if self.trace_cache is not None and self.trace_token is not None:
                pinned_token = (
                    array_token(self.pinned_vertices) if self.pinned_vertices.size else None
                )
                key = ("engine",) + self.trace_token + (pinned_token,)
                self.replay_engine = self.trace_cache.get(key, builder)
            else:
                self.replay_engine = builder()
        return self.replay_engine

    def engine_full(self) -> ReplayEngine:
        """Replay engine over the full trace (first-layer dense replay)."""
        if not self.pinned_vertices.size:
            return self.engine()
        if self.replay_engine_full is None:
            builder = lambda: ReplayEngine(self.trace)
            if self.trace_cache is not None and self.trace_token is not None:
                key = ("engine",) + self.trace_token + (None,)
                self.replay_engine_full = self.trace_cache.get(key, builder)
            else:
                self.replay_engine_full = builder()
        return self.replay_engine_full


class AcceleratorModel:
    """Base class of all modelled accelerators.

    Subclasses override the class attributes to describe their design point;
    the simulation machinery in this class turns the description into cycles,
    traffic, and energy.
    """

    #: Registry key.
    name: str = "abstract"
    #: Name used in tables/figures.
    display_name: str = "Abstract"
    #: Feature format used for intermediate features (registry name).
    feature_format_name: str = "dense"
    #: Execution order reported in Table I.
    execution_order: str = "aggregation-first"
    #: Whether the destination range is tiled to the cache.
    uses_destination_tiling: bool = True
    #: Whether the source range is tiled to the accumulation (psum) buffer;
    #: untiled designs sweep every source once but hold all partial outputs.
    uses_source_tiling: bool = True
    #: Fraction of the cache a destination tile is sized to occupy.  "Perfect
    #: tiling" designs size the tile to (nearly) the whole cache; designs
    #: with coarse vertex tiling (EnGN) overflow it on purpose.
    tiling_fill_fraction: float = 0.95
    #: Accumulation-buffer capacity relative to the cache capacity.  The
    #: partial output rows live in a dedicated buffer that is considerably
    #: smaller than the shared feature cache (as in GCNAX's buffer split), so
    #: large graphs need several sweeps over the destination features.
    psum_buffer_fraction: float = 0.25
    #: Engine partitioning of the source range ("contiguous" or "sac").
    engine_partition: str = "contiguous"
    #: Sparsity assumed when sizing tiles (None = assume dense rows).
    assumed_tiling_sparsity: Optional[float] = None
    #: Size tiles using the dataset's *average* intermediate sparsity — the
    #: best a static off-line analysis of a compressed-feature design can do;
    #: layers that turn out denser than the average overflow the tile.
    tile_with_average_sparsity: bool = False
    #: Whether the aggregation engines skip zero feature elements.
    sparse_aggregation_compute: bool = False
    #: Whether the combination engines skip zero input activations.
    combination_zero_skipping: bool = False
    #: Whether the graph is reordered for locality before execution (I-GCN).
    reorders_graph: bool = False
    #: Fraction of aggregation compute removed by redundancy elimination.
    aggregation_compute_scale: float = 1.0
    #: Whether high-degree vertices' rows are pinned in the cache (EnGN DAVC).
    pins_high_degree_vertices: bool = False
    #: Fraction of the cache reserved for pinned vertices.
    pinned_cache_fraction: float = 0.25
    #: Whether aggregation is executed as a column product on the transposed
    #: graph with partial-sum spills (AWB-GCN).
    column_product: bool = False
    #: Extra partial-sum traffic, as a multiple of the output matrix size.
    psum_traffic_factor: float = 0.0
    #: Whether the first (ultra-sparse input) layer's combination runs as a
    #: sparse operation (SGCN's aggregation-engine trick; AWB-GCN's zero skip).
    sparse_first_layer: bool = False
    #: Whether residual connections are supported without extra traffic.
    supports_residual: bool = True
    #: Maximum network depth the original design targeted (Table I).
    target_layers: str = "2"

    # ------------------------------------------------------------------ #
    def __init__(self) -> None:
        self._format = get_format(self.feature_format_name)

    @property
    def feature_format(self) -> FeatureFormat:
        """The feature format instance used for intermediate features."""
        return self._format

    def use_format(
        self, format_name: str, slice_size: Optional[int] = None
    ) -> "AcceleratorModel":
        """A copy of this model using a different intermediate-feature format.

        Used by :class:`repro.core.session.Session` to apply a
        :class:`~repro.core.runspec.RunSpec` feature-format override.  The
        receiver is left untouched (sessions memoize and share model
        instances across runs, so mutating in place would leak the override
        into unrelated runs); the reconfigured copy is returned.
        """
        model = copy.copy(self)
        model._format = get_format(format_name, slice_size=slice_size)
        model.feature_format_name = model._format.name
        return model

    def describe(self) -> Dict[str, object]:
        """Row of the paper's Table I for this accelerator."""
        return {
            "accelerator": self.display_name,
            "compressed_feature": self._format.compressed,
            "feature_format": self._format.name,
            "target_layers": self.target_layers,
            "residual": self.supports_residual,
            "execution_order": self.execution_order,
        }

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        dataset: Dataset,
        config: Optional[SystemConfig] = None,
        variant: str = "gcn",
        max_sampled_layers: int = 6,
        seed: int = 0,
        trace_cache: Optional[TraceCache] = None,
    ) -> SimulationResult:
        """Simulate a full deep-GCN inference on ``dataset``.

        Args:
            dataset: Dataset to run.
            config: System configuration (Table III defaults when omitted).
            variant: Aggregation variant (``"gcn"``, ``"gin"``, ``"sage"``).
            max_sampled_layers: Intermediate layers are representative-sampled
                down to at most this many trace-driven simulations; each
                sampled layer is weighted by the number of layers it stands
                for, so totals still cover the whole network.
            seed: Seed for the per-row non-zero draws.
            trace_cache: Optional cross-run memo for access traces, replay
                structures, and derived (reordered/transposed) graphs.  These
                depend only on the topology and the schedule — not on timing
                knobs — so a :class:`~repro.core.session.Session` passes its
                own cache here and a sweep builds each trace once.

        Returns:
            A :class:`SimulationResult` covering every layer of the network.
        """
        config = config or SystemConfig()
        workloads = build_workloads(dataset, variant=variant)
        context = self._build_context(dataset, config, workloads, trace_cache)

        first, *intermediate = workloads
        sampled = (
            self._sample_layers(intermediate, max_sampled_layers) if intermediate else []
        )

        # Precompute every sampled layer's row tables, then evaluate every
        # cache replay of the run (first layer + all layers x passes) in one
        # batched engine call: the replay structure is shared, so stacking
        # the size tables amortises the per-evaluation array overhead.
        prepared = []
        for workload, weight in sampled:
            row_nnz, row_lines = self._layer_row_tables(workload, context, seed)
            pass_sizes = self._pass_size_tables(workload, context, row_lines)
            prepared.append((workload, weight, row_nnz, row_lines, pass_sizes))
        first_stats, batched_stats = self._batched_replay(context, first, prepared)

        layer_results: List[LayerResult] = [
            self._simulate_first_layer(dataset, first, context, replay_stats=first_stats)
        ]
        for (workload, weight, row_nnz, row_lines, pass_sizes), stats in zip(
            prepared, batched_stats
        ):
            result = self._simulate_intermediate_layer(
                dataset,
                workload,
                context,
                row_nnz,
                row_lines,
                pass_sizes,
                replay_stats=stats,
            )
            result.weight = weight
            layer_results.append(result)

        return SimulationResult(
            accelerator=self.name,
            dataset=dataset.name,
            layers=layer_results,
            frequency_ghz=config.engines.frequency_ghz,
            metadata={
                "variant": variant,
                "num_layers": dataset.num_layers,
                "cache_lines": context.cache_lines,
                "feature_passes": context.tiling.feature_passes,
                "dest_tile_vertices": context.tiling.dest_tile_vertices,
            },
        )

    # ------------------------------------------------------------------ #
    # Context construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _reordered_for_locality(graph: CSRGraph) -> CSRGraph:
        # Islandization reorders vertices so islands occupy consecutive
        # ids.  On graphs that already have a locality-friendly ordering
        # the pass detects no profitable islands and leaves the order
        # alone, so the reordering never degrades locality.
        from repro.graphs.stats import clustering_score

        reorder = (
            locality_reordering
            if _replay_backend == "vectorized"
            else locality_reordering_reference
        )
        permutation = reorder(graph)
        reordered = graph.reorder(permutation)
        if clustering_score(reordered) >= clustering_score(graph):
            return reordered
        return graph

    def _build_context(
        self,
        dataset: Dataset,
        config: SystemConfig,
        workloads: Sequence[LayerWorkload],
        trace_cache: Optional[TraceCache] = None,
    ) -> _RunContext:
        # The legacy backend ignores the trace cache: the pre-PR engine
        # rebuilt every trace per run, and the benchmark measures that.
        if _replay_backend != "vectorized":
            trace_cache = None
        graph = dataset.graph
        if self.reorders_graph:
            if trace_cache is not None:
                graph = trace_cache.get(
                    ("reordered", graph.fingerprint()),
                    lambda: self._reordered_for_locality(graph),
                )
            else:
                graph = self._reordered_for_locality(graph)
        if self.column_product:
            # Column-product execution walks the transposed adjacency: for
            # every destination column it gathers the corresponding input
            # feature row, so the random feature accesses follow A^T.
            if trace_cache is not None:
                base = graph
                graph = trace_cache.get(
                    ("transposed", base.fingerprint()), base.transpose
                )
            else:
                graph = graph.transpose()

        cache_lines = self._effective_cache_lines(dataset, config)
        hidden_width = dataset.hidden_width
        if self.assumed_tiling_sparsity is not None:
            assumed_sparsity = self.assumed_tiling_sparsity
        elif self.tile_with_average_sparsity:
            assumed_sparsity = dataset.intermediate_sparsity
        else:
            assumed_sparsity = 0.0
        assumed_nnz = int(round(hidden_width * (1.0 - assumed_sparsity)))
        assumed_row_lines = self._typical_row_lines(hidden_width, assumed_nnz)
        output_row_lines = float(bytes_to_lines(hidden_width * ELEMENT_BYTES))
        psum_buffer_lines = max(
            int(cache_lines * self.psum_buffer_fraction), int(output_row_lines)
        )

        # GCNAX-style dataflows always process the feature matrix in width
        # slices (two logical slices in the modelled configuration, matching
        # the accumulation-buffer split); designs without source tiling
        # (HyGCN) sweep the full width in one pass.
        min_passes = self.DATAFLOW_FEATURE_PASSES if self.uses_source_tiling else 1
        tiling = plan_tiling(
            num_vertices=graph.num_vertices,
            average_degree=graph.average_degree,
            cache_lines=cache_lines,
            psum_buffer_lines=psum_buffer_lines,
            assumed_row_lines=assumed_row_lines,
            output_row_lines=output_row_lines,
            topology_bytes_per_edge=8.0,
            supports_feature_slicing=self._format_slices_cleanly(
                hidden_width, min_passes
            ),
            use_destination_tiling=self.uses_destination_tiling,
            use_source_tiling=self.uses_source_tiling,
            fill_fraction=self.tiling_fill_fraction,
            min_feature_passes=min_passes,
            max_feature_passes=max(min_passes, self.DATAFLOW_FEATURE_PASSES),
        )

        trace_token: Optional[Tuple] = None
        if self.column_product:
            # Column-product designs read every feature row exactly once per
            # pass and pay partial-sum traffic instead; no feature-read reuse
            # trace is needed.
            trace = np.zeros(0, dtype=np.int64)
        else:
            # The trace depends only on the topology and the schedule knobs,
            # never on the accelerator's timing parameters — key it on
            # exactly those so a sweep over timing configurations reuses it.
            trace_token = (
                graph.fingerprint(),
                tiling,
                config.engines.num_aggregation_engines,
                self.engine_partition,
                config.sac_strip_height,
            )
            build_trace = (
                aggregation_access_trace
                if _replay_backend == "vectorized"
                else aggregation_access_trace_reference
            )
            build = lambda: build_trace(
                graph,
                tiling,
                num_engines=config.engines.num_aggregation_engines,
                engine_partition=self.engine_partition,
                strip_height=config.sac_strip_height,
            )
            if trace_cache is not None:
                trace = trace_cache.get(("trace",) + trace_token, build)
            else:
                trace = build()

        pinned = np.zeros(0, dtype=np.int64)
        if self.pins_high_degree_vertices:
            pinned = self._select_pinned_vertices(graph, cache_lines, assumed_row_lines)

        return _RunContext(
            graph=graph,
            config=config,
            cache_lines=cache_lines,
            tiling=tiling,
            trace=trace,
            pinned_vertices=pinned,
            feature_format=self._format,
            simd=SIMDAggregationEngine(config.engines),
            systolic=SystolicArray(config.engines),
            dram=DRAMModel(config.dram),
            energy_table=EnergyTable(),
            trace_cache=trace_cache,
            trace_token=trace_token,
        )

    def _effective_cache_lines(self, dataset: Dataset, config: SystemConfig) -> int:
        """Cache capacity (in lines) used for this dataset.

        Datasets are simulated at a reduced scale; the cache is scaled by the
        same factor so the working-set-to-cache ratio of the paper's
        configuration is preserved, with a floor of a few dozen feature rows
        so tiny scaled graphs still exercise the cache at all.
        """
        scaled = int(config.cache.num_lines * dataset.cache_scale())
        dense_row_lines = bytes_to_lines(dataset.hidden_width * ELEMENT_BYTES)
        floor = 32 * dense_row_lines
        return int(min(config.cache.num_lines, max(floor, scaled)))

    #: Width slices the GCNAX-style dataflow processes per layer (the
    #: accumulation buffer holds one slice of the partial outputs at a time).
    DATAFLOW_FEATURE_PASSES: int = 2

    def _supports_feature_slicing(self) -> bool:
        """Whether the intermediate feature format can be read in width slices."""
        if self._format.name in ("dense", "blocked_ellpack"):
            return True
        slice_size = getattr(self._format, "slice_size", None)
        return slice_size is not None

    def _format_slices_cleanly(self, width: int, passes: int) -> bool:
        """Whether the format can serve a ``passes``-way width split exactly.

        Dense rows split at cacheline granularity.  Sliced BEICSR splits at
        unit-slice (``C``) granularity, so it needs at least ``passes`` unit
        slices across the width.  Whole-row-bitmap BEICSR, CSR, and COO
        cannot locate a width slice without reading the preceding data, so
        they never split cleanly.
        """
        if passes <= 1:
            return True
        if self._format.name in ("dense", "blocked_ellpack"):
            return width // passes >= 1
        slice_size = getattr(self._format, "slice_size", None)
        if slice_size is None:
            return False
        return (width + slice_size - 1) // slice_size >= passes

    def _pass_access_overhead(self, width: int, passes: int) -> Tuple[int, bool]:
        """Per-access penalty of reading one width slice in this format.

        Returns ``(extra_lines, aligned)``: formats that slice cleanly pay
        nothing; formats that cannot (whole-row bitmaps, CSR, COO) must read
        their embedded index plus a partially unaligned span to extract the
        slice, costing roughly one extra cacheline per access and losing the
        alignment guarantee (paper Section V-B).
        """
        if passes <= 1 or self._format_slices_cleanly(width, passes):
            return 0, self._format.aligned
        return 1, False

    def _typical_row_lines(self, width: int, nnz: int) -> float:
        """Cachelines per feature row for the given non-zero count."""
        layout = self._format.build_layout(
            np.asarray([nnz], dtype=np.int64), width
        )
        return float(layout.row_read_lines(0).size)

    def _select_pinned_vertices(
        self, graph: CSRGraph, cache_lines: int, row_lines: float
    ) -> np.ndarray:
        """Highest in-degree vertices whose rows fit the pinned cache share."""
        in_degrees = np.zeros(graph.num_vertices, dtype=np.int64)
        np.add.at(in_degrees, graph.indices, 1)
        budget_rows = int(cache_lines * self.pinned_cache_fraction / max(row_lines, 1.0))
        if budget_rows <= 0:
            return np.zeros(0, dtype=np.int64)
        return np.argsort(-in_degrees, kind="stable")[:budget_rows].astype(np.int64)

    @staticmethod
    def _sample_layers(
        workloads: Sequence[LayerWorkload], max_sampled: int
    ) -> List[Tuple[LayerWorkload, float]]:
        """Pick representative intermediate layers and their weights."""
        count = len(workloads)
        if count <= max_sampled:
            return [(workload, 1.0) for workload in workloads]
        positions = np.linspace(0, count - 1, max_sampled)
        indices = sorted(set(int(round(position)) for position in positions))
        weight = count / len(indices)
        return [(workloads[index], weight) for index in indices]

    # ------------------------------------------------------------------ #
    # Intermediate layers (trace-driven)
    # ------------------------------------------------------------------ #
    def _layer_row_tables(
        self, workload: LayerWorkload, context: _RunContext, seed: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row non-zero counts for the layer's input features, and the
        resulting per-row transfer sizes (in lines) under this format."""
        num_vertices = context.graph.num_vertices
        row_nnz = row_nonzero_distribution(
            num_rows=num_vertices,
            width=workload.width_in,
            sparsity=workload.input_sparsity,
            seed=seed + workload.layer_index,
        )
        layout = self._format.build_layout(row_nnz, workload.width_in)
        if get_replay_backend() == "vectorized":
            row_lines = layout.row_read_line_counts()
        else:
            row_lines = np.fromiter(
                (layout.row_read_lines(row).size for row in range(num_vertices)),
                dtype=np.int64,
                count=num_vertices,
            )
        return row_nnz, row_lines

    def _pass_size_tables(
        self, workload: LayerWorkload, context: _RunContext, row_lines: np.ndarray
    ) -> List[np.ndarray]:
        """Lines transferred per access in each feature pass.

        The row's lines are spread across the passes as evenly as integers
        allow (a sliced format reads a different subset of unit slices per
        pass), so the per-pass sizes sum back to the full row.  Formats that
        cannot be read in width slices pay an extra (unaligned) line per
        access.
        """
        passes = context.tiling.feature_passes
        extra_lines, _ = self._pass_access_overhead(workload.width_in, passes)
        base_lines = row_lines // passes
        remainder = row_lines % passes
        return [
            np.maximum(1, base_lines + (pass_index < remainder).astype(np.int64))
            + extra_lines
            for pass_index in range(passes)
        ]

    def _batched_replay(
        self,
        context: _RunContext,
        first_workload: LayerWorkload,
        prepared: Sequence[Tuple],
    ) -> Tuple[Optional[RowCacheStats], List[Optional[List[RowCacheStats]]]]:
        """Evaluate every cache replay of the run in one engine call.

        Covers the sampled intermediate layers (one table per feature pass)
        plus the first layer's dense replay; all of them share the trace
        structure and — without a pinned partition — the capacity, so one
        ``replay_many`` amortises the evaluation overhead across the run.
        Returns ``(None, [None, ...])`` whenever per-layer replay must
        happen instead: the legacy backend, column-product designs (no
        trace), or pinned partitions (per-layer shared capacity).
        """
        if (
            get_replay_backend() != "vectorized"
            or self.column_product
            or context.trace.size == 0
            or context.pinned_vertices.size
        ):
            return None, [None] * len(prepared)
        tables: List[np.ndarray] = []
        for _, _, _, _, pass_sizes in prepared:
            tables.extend(pass_sizes)
        dense_row_lines = bytes_to_lines(first_workload.width_out * ELEMENT_BYTES)
        tables.append(
            np.full(context.graph.num_vertices, dense_row_lines, dtype=np.int64)
        )
        stats = context.engine().replay_many(tables, context.cache_lines)
        batched: List[Optional[List[RowCacheStats]]] = []
        cursor = 0
        for _, _, _, _, pass_sizes in prepared:
            batched.append(stats[cursor : cursor + len(pass_sizes)])
            cursor += len(pass_sizes)
        return stats[-1], batched

    def _simulate_intermediate_layer(
        self,
        dataset: Dataset,
        workload: LayerWorkload,
        context: _RunContext,
        row_nnz: np.ndarray,
        row_lines: np.ndarray,
        pass_sizes: List[np.ndarray],
        replay_stats: Optional[List[RowCacheStats]] = None,
    ) -> LayerResult:
        aggregation = self._aggregation_phase(
            workload, context, row_lines, pass_sizes, replay_stats
        )
        combination = self._combination_phase(dataset, workload, context, row_nnz)
        return self._assemble_layer(workload, context, aggregation, combination)

    def _aggregation_phase(
        self,
        workload: LayerWorkload,
        context: _RunContext,
        row_lines: np.ndarray,
        pass_sizes: List[np.ndarray],
        replay_stats: Optional[List[RowCacheStats]] = None,
    ) -> PhaseResult:
        config = context.config
        graph = context.graph
        passes = context.tiling.feature_passes
        edge_fraction = workload.edge_fraction
        _, aligned_reads = self._pass_access_overhead(workload.width_in, passes)

        if self.column_product:
            # Column-product execution streams every input feature row exactly
            # once (per feature pass it streams 1/passes of each row), so the
            # read volume is one full pass over the compressed matrix and the
            # cache plays no role in the feature reads.
            total_lines = int(row_lines.sum())
            feature_read_bytes = float(total_lines * CACHELINE_BYTES)
            cache_accesses = float(total_lines)
            hit_rate = 0.0
        else:
            # The pinned rows live in a dedicated partition: their accesses
            # always hit and the capacity they use is removed from the
            # shared pool.
            shared_capacity = context.cache_lines
            if context.pinned_vertices.size:
                pinned_lines = int(pass_sizes[0][context.pinned_vertices].sum())
                shared_capacity = max(1, context.cache_lines - pinned_lines)

            hit_lines = 0
            miss_lines = 0
            accesses = 0
            hits = 0
            if get_replay_backend() == "vectorized":
                if replay_stats is None:
                    replay_stats = context.engine().replay_many(
                        pass_sizes, shared_capacity
                    )
                for stats in replay_stats:
                    accesses += stats.accesses
                    hits += stats.hits
                    hit_lines += stats.hit_lines
                    miss_lines += stats.miss_lines
            else:
                cache = RowCache(shared_capacity)
                pinned_set = set(context.pinned_vertices.tolist())
                trace = context.trace
                for pass_index in range(passes):
                    per_pass_lines = pass_sizes[pass_index]
                    cache.flush()
                    if pinned_set:
                        sizes = per_pass_lines.tolist()
                        for row in trace.tolist():
                            size = sizes[row]
                            accesses += 1
                            if row in pinned_set:
                                hits += 1
                                hit_lines += size
                            elif cache.access(row, size):
                                hits += 1
                                hit_lines += size
                            else:
                                miss_lines += size
                    else:
                        cache.access_trace(trace, per_pass_lines)
                        accesses += cache.stats.accesses
                        hits += cache.stats.hits
                        hit_lines += cache.stats.hit_lines
                        miss_lines += cache.stats.miss_lines
                        cache.reset_stats()

            feature_read_bytes = miss_lines * CACHELINE_BYTES * edge_fraction
            cache_accesses = (hit_lines + miss_lines) * edge_fraction
            hit_rate = hits / accesses if accesses else 0.0

        num_edges = graph.num_edges * edge_fraction
        topology_bytes = self._topology_bytes(graph, workload) * passes

        density = 1.0
        if self.sparse_aggregation_compute:
            density = max(1e-3, 1.0 - workload.input_sparsity)
        cost = context.simd.aggregation_cost(
            num_edges=num_edges,
            feature_width=workload.width_in,
            density=density,
        )
        compute_cycles = cost.cycles * self.aggregation_compute_scale
        macs = cost.mac_operations * self.aggregation_compute_scale

        psum_bytes = 0.0
        if self.psum_traffic_factor > 0:
            psum_bytes = (
                self.psum_traffic_factor
                * graph.num_vertices
                * workload.width_in
                * ELEMENT_BYTES
            )

        traffic = TrafficBreakdown(
            topology_bytes=topology_bytes,
            feature_read_bytes=feature_read_bytes,
            psum_bytes=psum_bytes,
        )
        pattern = TrafficPattern(
            average_burst_lines=float(np.mean(pass_sizes[0])),
            aligned=aligned_reads,
            sequential_fraction=topology_bytes / max(traffic.total_bytes, 1.0),
        )
        memory_cycles = context.dram.transfer_cycles(
            traffic.total_bytes, config.engines.frequency_ghz, pattern
        )
        return PhaseResult(
            cycles=max(compute_cycles, memory_cycles),
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            macs=macs,
            traffic=traffic,
            cache_accesses=cache_accesses,
            cache_hit_rate=hit_rate,
        )

    def _combination_phase(
        self,
        dataset: Dataset,
        workload: LayerWorkload,
        context: _RunContext,
        row_nnz: np.ndarray,
    ) -> PhaseResult:
        config = context.config
        graph = context.graph
        num_vertices = graph.num_vertices

        density = 1.0
        if self.combination_zero_skipping:
            density = max(1e-3, 1.0 - workload.input_sparsity)
        gemm = context.systolic.gemm_cost(
            m=num_vertices,
            k=workload.width_in,
            n=workload.width_out,
            density=density,
        )

        weight_bytes = context.systolic.weight_bytes(workload.width_in, workload.width_out)
        output_write_bytes = self._output_write_bytes(
            num_vertices, workload.width_out, workload.output_sparsity
        )
        traffic = TrafficBreakdown(
            weight_bytes=weight_bytes,
            feature_write_bytes=output_write_bytes,
        )
        pattern = TrafficPattern(
            average_burst_lines=DRAMModel.SATURATION_BURST_LINES,
            aligned=True,
            sequential_fraction=1.0,
        )
        memory_cycles = context.dram.transfer_cycles(
            traffic.total_bytes, config.engines.frequency_ghz, pattern
        )
        return PhaseResult(
            cycles=max(gemm.cycles, memory_cycles),
            compute_cycles=gemm.cycles,
            memory_cycles=memory_cycles,
            macs=gemm.mac_operations,
            traffic=traffic,
            cache_accesses=0.0,
            cache_hit_rate=0.0,
        )

    # ------------------------------------------------------------------ #
    # First layer (analytic)
    # ------------------------------------------------------------------ #
    def _simulate_first_layer(
        self,
        dataset: Dataset,
        workload: LayerWorkload,
        context: _RunContext,
        replay_stats: Optional[RowCacheStats] = None,
    ) -> LayerResult:
        """First layer: combination of the given input features, then
        aggregation of the (dense) result.

        All modelled designs process the first layer combination-first, the
        standard optimisation when the width shrinks (Section III-A).  Input
        features are streamed once; ultra-sparse inputs (one-hot encodings)
        are stored in CSR, dense embeddings are stored densely.  Designs with
        sparsity-aware compute (SGCN's aggregation-engine combination,
        AWB-GCN's zero skipping) only compute on the non-zero inputs.
        """
        config = context.config
        graph = context.graph
        num_vertices = graph.num_vertices
        width_in = workload.width_in
        width_out = workload.width_out
        input_density = max(1e-4, 1.0 - workload.input_sparsity)

        # --- combination of X_0 @ W_0 --------------------------------- #
        if workload.input_sparsity >= 0.5:
            input_read_bytes = num_vertices * width_in * input_density * (
                ELEMENT_BYTES + 4
            ) + (num_vertices + 1) * 4
        else:
            input_read_bytes = num_vertices * width_in * ELEMENT_BYTES

        if self.sparse_first_layer or self.combination_zero_skipping:
            # SGCN runs the first combination as a sparse gather-accumulate on
            # its aggregation engines; AWB-GCN's zero skipping achieves the
            # same compute reduction on ultra-sparse one-hot inputs.
            gemm_density = input_density
        else:
            # Other designs skip only the input feature columns that are zero
            # for every vertex in the current tile (coarse column skipping),
            # which captures part of the one-hot sparsity but leaves the
            # systolic array underutilised for scattered non-zeros; model the
            # residual work as the geometric mean of dense and fully sparse.
            gemm_density = float(np.sqrt(input_density))
        gemm = context.systolic.gemm_cost(
            m=num_vertices, k=width_in, n=width_out, density=gemm_density
        )
        weight_bytes = context.systolic.weight_bytes(width_in, width_out)

        # --- aggregation of the (dense) combination result ------------ #
        num_edges = graph.num_edges * workload.edge_fraction
        agg_cost = context.simd.aggregation_cost(
            num_edges=num_edges, feature_width=width_out, density=1.0
        )
        dense_row_lines = bytes_to_lines(width_out * ELEMENT_BYTES)
        if self.column_product or context.trace.size == 0:
            # Column-product first layer: the dense intermediate is streamed
            # once and partial sums absorb the reuse cost.
            agg_read_bytes = float(num_vertices * dense_row_lines * CACHELINE_BYTES)
            cache_accesses = float(num_vertices * dense_row_lines)
            first_layer_hit_rate = 0.0
        else:
            # The dense intermediate is re-read per edge with the same hit
            # rate a dense-format run of this schedule achieves; approximate
            # it with a single cache replay using dense rows.  The full
            # (unpinned) trace is replayed at full capacity here, matching
            # the reference path.
            if replay_stats is not None:
                stats = replay_stats
            elif get_replay_backend() == "vectorized":
                sizes = np.full(num_vertices, dense_row_lines, dtype=np.int64)
                stats = context.engine_full().replay(sizes, context.cache_lines)
            else:
                cache = RowCache(context.cache_lines)
                sizes = np.full(num_vertices, dense_row_lines, dtype=np.int64)
                stats = cache.access_trace(context.trace, sizes)
            agg_read_bytes = stats.miss_lines * CACHELINE_BYTES * workload.edge_fraction
            cache_accesses = float(stats.hit_lines + stats.miss_lines)
            first_layer_hit_rate = stats.hit_rate
        topology_bytes = self._topology_bytes(graph, workload)

        output_write_bytes = self._output_write_bytes(
            num_vertices, width_out, workload.output_sparsity
        )

        traffic = TrafficBreakdown(
            topology_bytes=topology_bytes,
            feature_read_bytes=input_read_bytes + agg_read_bytes,
            feature_write_bytes=output_write_bytes,
            weight_bytes=weight_bytes,
        )
        pattern = TrafficPattern(
            average_burst_lines=4.0, aligned=True, sequential_fraction=0.5
        )
        memory_cycles = context.dram.transfer_cycles(
            traffic.total_bytes, config.engines.frequency_ghz, pattern
        )
        compute_cycles = gemm.cycles + agg_cost.cycles
        if config.pipeline_phases:
            cycles = max(compute_cycles, memory_cycles)
        else:
            cycles = compute_cycles + memory_cycles

        macs = gemm.mac_operations + agg_cost.mac_operations
        energy = context.energy_table.breakdown(
            num_macs=macs,
            cache_accesses=cache_accesses,
            dram_bytes=traffic.total_bytes,
        )
        return LayerResult(
            layer_index=0,
            cycles=cycles,
            aggregation_cycles=max(agg_cost.cycles, memory_cycles / 2),
            combination_cycles=max(gemm.cycles, memory_cycles / 2),
            aggregation_compute_cycles=agg_cost.cycles,
            combination_compute_cycles=gemm.cycles,
            memory_cycles=memory_cycles,
            macs=macs,
            traffic=traffic,
            cache_accesses=cache_accesses,
            cache_hit_rate=first_layer_hit_rate,
            energy=energy,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _topology_bytes(self, graph: CSRGraph, workload: LayerWorkload) -> float:
        """Bytes of topology streamed for one full sweep of the edges."""
        per_edge = 4 + (4 if workload.weighted_aggregation else 0)
        return (
            graph.num_edges * workload.edge_fraction * per_edge
            + (graph.num_vertices + 1) * 4
        )

    def _output_write_bytes(
        self, num_vertices: int, width: int, sparsity: float
    ) -> float:
        """Bytes written for the layer's output features in this design's format."""
        nnz = int(round(width * (1.0 - sparsity)))
        layout = self._format.build_layout(
            np.asarray([max(nnz, 0)], dtype=np.int64), width
        )
        return float(num_vertices * layout.row_write_bytes(0))

    def _assemble_layer(
        self,
        workload: LayerWorkload,
        context: _RunContext,
        aggregation: PhaseResult,
        combination: PhaseResult,
    ) -> LayerResult:
        config = context.config
        if config.pipeline_phases:
            cycles = max(aggregation.cycles, combination.cycles)
        else:
            cycles = aggregation.cycles + combination.cycles
        traffic = aggregation.traffic + combination.traffic
        macs = aggregation.macs + combination.macs
        cache_accesses = aggregation.cache_accesses + combination.cache_accesses
        energy = context.energy_table.breakdown(
            num_macs=macs,
            cache_accesses=cache_accesses,
            dram_bytes=traffic.total_bytes,
        )
        return LayerResult(
            layer_index=workload.layer_index,
            cycles=cycles,
            aggregation_cycles=aggregation.cycles,
            combination_cycles=combination.cycles,
            aggregation_compute_cycles=aggregation.compute_cycles,
            combination_compute_cycles=combination.compute_cycles,
            memory_cycles=aggregation.memory_cycles + combination.memory_cycles,
            macs=macs,
            traffic=traffic,
            cache_accesses=cache_accesses,
            cache_hit_rate=aggregation.cache_hit_rate,
            energy=energy,
        )
