"""Accelerator model objects over the declarative design/pipeline split.

Historically this module was a 400+-line monolith fusing the description of
an accelerator (20 loose class attributes) with the machinery that simulates
it.  Both halves now live in dedicated modules:

* :mod:`repro.accelerator.design` — :class:`DesignPoint`, the frozen,
  validated description of *what* an accelerator is (paper Table I);
* :mod:`repro.accelerator.pipeline` — the explicit five-stage simulation
  pipeline (``build_context → schedule → replay → timing → energy``) that
  executes a design point.

What remains here is :class:`AcceleratorModel`, the thin runtime wrapper the
registry instantiates and a :class:`~repro.core.session.Session` memoizes: a
design point plus its resolved feature-format instance.  The historical
subclass API — declare a design by overriding class attributes — keeps
working: the constructor lifts the class attributes into a
:class:`DesignPoint` (validating them in the process), so existing custom
subclasses behave exactly as before.  New code should construct models from
design points directly (``AcceleratorModel(design)`` or
``register_design``).

The workload/backend helpers (``build_workloads``, ``set_replay_backend``,
…) are re-exported from :mod:`repro.accelerator.pipeline` for backward
compatibility.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Sequence

from repro.accelerator.design import DesignPoint
from repro.accelerator.pipeline import (  # noqa: F401  (compat re-exports)
    GCN_VARIANTS,
    REPLAY_BACKENDS,
    SAGE_EDGE_FRACTION,
    LayerWorkload,
    PhaseResult,
    RunContext,
    build_context,
    build_workloads,
    complete_run,
    get_replay_backend,
    resolve_sparsity_dataset,
    schedule,
    set_replay_backend,
    simulate_design,
)
from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.formats.base import FeatureFormat
from repro.gcn.providers import SparsityProvider
from repro.graphs.datasets import Dataset
from repro.memory.replay import TraceCache
from repro.telemetry.spans import span as _span


class AcceleratorModel:
    """A runtime accelerator model: a design point plus its feature format.

    Two construction styles are supported:

    * **Declarative (preferred):** ``AcceleratorModel(design_point)`` wraps
      an explicit :class:`~repro.accelerator.design.DesignPoint`.
    * **Subclassing (legacy):** subclasses override the class attributes
      below; the constructor lifts them into a validated design point.  The
      built-in subclasses in :mod:`repro.accelerator.baselines` /
      :mod:`repro.accelerator.sgcn` are kept only as deprecation shims over
      the registered design points.
    """

    #: Registry key.
    name: str = "abstract"
    #: Name used in tables/figures.
    display_name: str = "Abstract"
    #: Feature format used for intermediate features (registry name).
    feature_format_name: str = "dense"
    #: Execution order reported in Table I.
    execution_order: str = "aggregation-first"
    #: Whether the destination range is tiled to the cache.
    uses_destination_tiling: bool = True
    #: Whether the source range is tiled to the accumulation (psum) buffer.
    uses_source_tiling: bool = True
    #: Fraction of the cache a destination tile is sized to occupy.
    tiling_fill_fraction: float = 0.95
    #: Accumulation-buffer capacity relative to the cache capacity.
    psum_buffer_fraction: float = 0.25
    #: Engine partitioning of the source range ("contiguous" or "sac").
    engine_partition: str = "contiguous"
    #: Sparsity assumed when sizing tiles (None = assume dense rows).
    assumed_tiling_sparsity: Optional[float] = None
    #: Size tiles using the dataset's *average* intermediate sparsity.
    tile_with_average_sparsity: bool = False
    #: Whether the aggregation engines skip zero feature elements.
    sparse_aggregation_compute: bool = False
    #: Whether the combination engines skip zero input activations.
    combination_zero_skipping: bool = False
    #: Whether the graph is reordered for locality before execution (I-GCN).
    reorders_graph: bool = False
    #: Fraction of aggregation compute removed by redundancy elimination.
    aggregation_compute_scale: float = 1.0
    #: Whether high-degree vertices' rows are pinned in the cache (EnGN DAVC).
    pins_high_degree_vertices: bool = False
    #: Fraction of the cache reserved for pinned vertices.
    pinned_cache_fraction: float = 0.25
    #: Whether aggregation is executed as a column product on the transposed
    #: graph with partial-sum spills (AWB-GCN).
    column_product: bool = False
    #: Extra partial-sum traffic, as a multiple of the output matrix size.
    psum_traffic_factor: float = 0.0
    #: Whether the first (ultra-sparse input) layer's combination runs as a
    #: sparse operation (SGCN's aggregation-engine trick; AWB-GCN's zero skip).
    sparse_first_layer: bool = False
    #: Whether residual connections are supported without extra traffic.
    supports_residual: bool = True
    #: Maximum network depth the original design targeted (Table I).
    target_layers: str = "2"
    #: Width slices the GCNAX-style dataflow processes per layer.
    DATAFLOW_FEATURE_PASSES: int = 2

    # ------------------------------------------------------------------ #
    def __init__(self, design: Optional[DesignPoint] = None) -> None:
        if design is None:
            design = self._lift_design(type(self))
        self._set_design(design)

    @staticmethod
    def _lift_design(source: object, **extra: object) -> DesignPoint:
        """Build a :class:`DesignPoint` from ``source``'s knob attributes.

        ``source`` is either a model class (lifting the legacy subclass
        declaration) or a model instance (reading the live attributes);
        ``extra`` pre-supplies fields that have no attribute spelling
        (``slice_size``).  Every :class:`DesignPoint` field flows through
        automatically, so new fields cannot silently pin to defaults here.
        """
        from repro.accelerator.design import field_names

        values = dict(extra)
        for field_name in field_names():
            if field_name in values:
                continue
            attribute = AcceleratorModel._LEGACY_ATTRIBUTE_NAMES.get(
                field_name, field_name
            )
            if attribute is None:
                continue  # no legacy spelling; DesignPoint default applies
            values[field_name] = getattr(source, attribute)
        return DesignPoint(**values)  # type: ignore[arg-type]

    #: Design fields whose legacy class-attribute spelling differs.
    _LEGACY_ATTRIBUTE_NAMES = {
        "feature_format": "feature_format_name",
        "dataflow_feature_passes": "DATAFLOW_FEATURE_PASSES",
        "slice_size": None,  # never was a class attribute
    }

    def _set_design(self, design: DesignPoint) -> None:
        """Install ``design`` (and its format instance) on this model."""
        self._design = design
        self._format = design.format_instance()
        # Instance attributes shadow every legacy class attribute so a model
        # wrapping an arbitrary design point reports *its* knob values (not
        # the base-class defaults) through the documented attribute API.
        for field_name, value in design.to_dict().items():
            attribute = self._LEGACY_ATTRIBUTE_NAMES.get(field_name, field_name)
            if attribute is not None:
                setattr(self, attribute, value)
        self.feature_format_name = self._format.name
        # slice_size was never a class attribute, but SGCN models exposed it
        # as a property — mirror it on plain wrappers too (skipping classes
        # whose property already computes it from the live format).
        if not isinstance(getattr(type(self), "slice_size", None), property):
            self.slice_size = design.slice_size

    def _design_from_attributes(self) -> DesignPoint:
        """The design the model's *live* attributes currently describe.

        Normally identical to :attr:`design` (``_set_design`` mirrors every
        knob), but the legacy API allowed mutating knob attributes after
        construction and expected ``simulate()`` to honor the mutation —
        this rebuild preserves that contract.
        """
        return self._lift_design(
            self, slice_size=getattr(self, "slice_size", self._design.slice_size)
        )

    # ------------------------------------------------------------------ #
    @property
    def design(self) -> DesignPoint:
        """The design point this model executes."""
        return self._design

    @property
    def feature_format(self) -> FeatureFormat:
        """The feature format instance used for intermediate features."""
        return self._format

    def use_design(self, design: DesignPoint) -> "AcceleratorModel":
        """A copy of this model executing a different design point.

        The receiver is left untouched (sessions memoize and share model
        instances across runs); the reconfigured copy is returned.
        """
        model = copy.copy(self)
        model._set_design(design)
        return model

    def use_format(
        self, format_name: str, slice_size: Optional[int] = None
    ) -> "AcceleratorModel":
        """A copy of this model using a different intermediate-feature format.

        Used by :class:`repro.core.session.Session` to apply a
        :class:`~repro.core.runspec.RunSpec` feature-format override.  The
        copy's design point is normalised like any directly-constructed one,
        so overriding a design with its own native format yields an *equal*
        design (no duplicate session cache entries).  The copy starts from
        the *live* attributes, so legacy post-construction knob mutations
        carry over exactly as they did before the design split.
        """
        return self.use_design(
            self._design_from_attributes().with_format(format_name, slice_size)
        )

    def describe(self) -> Dict[str, object]:
        """Row of the paper's Table I for this accelerator."""
        description = self._design.describe()
        # The live format instance wins over the design's reference (they
        # only differ for exotic externally-injected formats).
        description["compressed_feature"] = self._format.compressed
        description["feature_format"] = self._format.name
        return description

    # ------------------------------------------------------------------ #
    # Simulation (delegates to the phase pipeline)
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        dataset: Dataset,
        config: Optional[SystemConfig] = None,
        variant: str = "gcn",
        max_sampled_layers: int = 6,
        seed: int = 0,
        trace_cache: Optional[TraceCache] = None,
        sparsity: Optional[SparsityProvider] = None,
        capacity_spectrum: Sequence[int] = (),
    ) -> SimulationResult:
        """Simulate a full deep-GCN inference on ``dataset``.

        See :func:`repro.accelerator.pipeline.simulate_design` for the
        parameter semantics (including ``capacity_spectrum``, which seeds
        the replay memo for a whole capacity sweep); this wrapper supplies
        the model's design point and shared format instance.  If the legacy
        knob attributes were mutated after construction, the mutated values
        win (the historical subclass-attribute contract).
        """
        design = self._design
        fmt = self._format
        rebuilt = self._design_from_attributes()
        if rebuilt != design:
            if (rebuilt.feature_format, rebuilt.slice_size) != (
                design.feature_format,
                design.slice_size,
            ):
                fmt = rebuilt.format_instance()
            design = rebuilt
        if type(self)._build_context is not AcceleratorModel._build_context:
            # A legacy subclass overrides the old context-construction hook:
            # honor it (the pre-refactor simulate() always called it) and
            # finish the run through the shared pipeline stages.  The
            # sparsity provider is attached after the hook returns (the
            # historical signature cannot carry it).
            config = config or SystemConfig()
            dataset = resolve_sparsity_dataset(dataset, sparsity)
            workloads = build_workloads(dataset, variant=variant)
            # The legacy hook fuses stages 1 and 2; attribute it to
            # build_context so profiled legacy runs still report a stage.
            with _span("build_context"):
                context = self._build_context(dataset, config, workloads, trace_cache)
            if sparsity is not None:
                context.sparsity = sparsity
            if capacity_spectrum:
                context.capacity_spectrum = tuple(
                    int(capacity) for capacity in capacity_spectrum
                )
            return complete_run(
                context,
                workloads,
                variant=variant,
                seed=seed,
                max_sampled_layers=max_sampled_layers,
            )
        return simulate_design(
            design,
            dataset,
            config=config,
            variant=variant,
            max_sampled_layers=max_sampled_layers,
            seed=seed,
            trace_cache=trace_cache,
            feature_format=fmt,
            sparsity=sparsity,
            capacity_spectrum=capacity_spectrum,
        )

    # ------------------------------------------------------------------ #
    # Deprecated internals kept for backward compatibility
    # ------------------------------------------------------------------ #
    def _build_context(
        self,
        dataset: Dataset,
        config: SystemConfig,
        workloads: Sequence[LayerWorkload],
        trace_cache: Optional[TraceCache] = None,
    ) -> RunContext:
        """Deprecated: build + schedule a run context (pre-pipeline API)."""
        del workloads  # historical signature; the context never needed them
        return schedule(
            build_context(self._design, self._format, dataset, config, trace_cache)
        )


__all__ = [
    "AcceleratorModel",
    "GCN_VARIANTS",
    "LayerWorkload",
    "PhaseResult",
    "REPLAY_BACKENDS",
    "RunContext",
    "SAGE_EDGE_FRACTION",
    "build_workloads",
    "get_replay_backend",
    "set_replay_backend",
    "simulate_design",
]
