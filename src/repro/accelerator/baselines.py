"""Baseline GCN accelerator models (the prior work SGCN is compared against).

Each class configures the shared simulation machinery of
:class:`repro.accelerator.simulator.AcceleratorModel` to reflect the design
point the paper describes for that accelerator (Section VI-B and Table I):

* **GCNAX** — the paper's primary baseline: aggressive ("perfect") tiling of
  both the topology and the feature matrix, dense intermediate features,
  pipelined phases.
* **HyGCN** — row-product hybrid engines, no topology/feature tiling, dense
  features; suffers from low cache efficiency on large graphs.
* **AWB-GCN** — column-product execution with runtime load balancing; reads
  each input feature element exactly once but pays partial-sum read/write
  traffic, and exploits feature sparsity only in the combination compute
  (zero skipping), not in memory traffic.
* **EnGN** — vertex tiling plus a degree-aware vertex cache that pins the
  features of high-degree vertices on chip.
* **I-GCN** — runtime islandization reordering that improves topology
  locality and removes redundant aggregation compute.
"""

from __future__ import annotations

from repro.accelerator.simulator import AcceleratorModel


class GCNAXAccelerator(AcceleratorModel):
    """GCNAX: flexible dataflow with perfect topology/feature tiling.

    Uses dense intermediate features; its tiling is sized off line assuming
    dense rows, which is exact for it (dense rows really are dense), so its
    cache behaviour is the best achievable without compressing features.
    This is the normalisation baseline of Figs. 11-13.
    """

    name = "gcnax"
    display_name = "GCNAX"
    feature_format_name = "dense"
    execution_order = "both"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    assumed_tiling_sparsity = None
    target_layers = "2"


class HyGCNAccelerator(AcceleratorModel):
    """HyGCN: hybrid-architecture row-product execution without tiling.

    The whole feature matrix is the aggregation working set, so the global
    cache thrashes on graphs whose features exceed it — the dominant effect
    in its Fig. 14 breakdown (almost all traffic is feature reads).
    """

    name = "hygcn"
    display_name = "HyGCN"
    feature_format_name = "dense"
    execution_order = "aggregation-first"
    uses_destination_tiling = False
    uses_source_tiling = False
    engine_partition = "contiguous"
    target_layers = "1-2"


class AWBGCNAccelerator(AcceleratorModel):
    """AWB-GCN: column-product execution with runtime workload rebalancing.

    Column-product aggregation reads every input feature element exactly
    once (the transposed-graph trace touches each source row once per
    destination tile), but partial output sums spill to and refill from
    DRAM, which dominates its traffic (Fig. 14).  Feature sparsity is
    exploited only as zero skipping in the combination compute, so it buys
    no memory-traffic reduction.
    """

    name = "awb_gcn"
    display_name = "AWB-GCN"
    feature_format_name = "dense"
    execution_order = "combination-first"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    combination_zero_skipping = True
    sparse_first_layer = True
    #: Column-product execution spills partial output sums and refills them:
    #: roughly one extra transfer of the output matrix per layer on top of
    #: what an output-stationary row-product design pays.
    psum_traffic_factor = 1.0
    target_layers = "2"


class EnGNAccelerator(AcceleratorModel):
    """EnGN: ring-edge-reduce dataflow with a degree-aware vertex cache.

    Vertex tiling bounds the working set (modelled as destination tiling with
    a coarser fill) and the degree-aware vertex cache pins the feature rows
    of the highest in-degree vertices, which captures a disproportionate
    share of the random accesses on power-law graphs.
    """

    name = "engn"
    display_name = "EnGN"
    feature_format_name = "dense"
    execution_order = "combination-first"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    pins_high_degree_vertices = True
    pinned_cache_fraction = 0.25
    #: EnGN's vertex tiling is coarser than GCNAX's perfect tiling, so the
    #: working set of one tile deliberately overflows the cache; the pinned
    #: degree-aware vertex cache claws part of the loss back.
    tiling_fill_fraction = 3.0
    target_layers = "2"


class IGCNAccelerator(AcceleratorModel):
    """I-GCN: runtime islandization for locality plus redundancy elimination.

    The breadth-first islandization reorders vertices so that densely
    connected islands occupy consecutive ids, improving the reuse the cache
    can capture; overlapping aggregation computation inside an island is
    reused rather than recomputed, trimming aggregation work.
    """

    name = "igcn"
    display_name = "I-GCN"
    feature_format_name = "dense"
    execution_order = "combination-first"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    reorders_graph = True
    #: Fraction of aggregation compute remaining after redundancy reuse.
    aggregation_compute_scale = 0.85
    target_layers = "2"
