"""Baseline GCN accelerator models (deprecation shims).

The baseline designs — GCNAX, HyGCN, AWB-GCN, EnGN, I-GCN — are declared as
:class:`~repro.accelerator.design.DesignPoint` instances in
:mod:`repro.accelerator.design` (see that module and the paper's Table I /
Section VI-B for what each design does) and registered directly with the
accelerator registry.  The subclasses below are kept only so existing code
that imports or subclasses them keeps working; each is a thin shim whose
class attributes mirror the canonical design point (the constructor lifts
them into an equal :class:`DesignPoint`, which the golden design tests pin).

New code should use the registry (``get_accelerator("gcnax")``) or wrap a
design point explicitly (``AcceleratorModel(GCNAX_DESIGN)``).
"""

from __future__ import annotations

from repro.accelerator.simulator import AcceleratorModel


class GCNAXAccelerator(AcceleratorModel):
    """Deprecated shim for :data:`~repro.accelerator.design.GCNAX_DESIGN`.

    GCNAX: flexible dataflow with perfect topology/feature tiling over dense
    intermediate features — the normalisation baseline of Figs. 11-13.
    """

    name = "gcnax"
    display_name = "GCNAX"
    feature_format_name = "dense"
    execution_order = "both"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    assumed_tiling_sparsity = None
    target_layers = "2"


class HyGCNAccelerator(AcceleratorModel):
    """Deprecated shim for :data:`~repro.accelerator.design.HYGCN_DESIGN`.

    HyGCN: hybrid-architecture row-product execution without tiling; the
    whole feature matrix is the aggregation working set.
    """

    name = "hygcn"
    display_name = "HyGCN"
    feature_format_name = "dense"
    execution_order = "aggregation-first"
    uses_destination_tiling = False
    uses_source_tiling = False
    engine_partition = "contiguous"
    target_layers = "1-2"


class AWBGCNAccelerator(AcceleratorModel):
    """Deprecated shim for :data:`~repro.accelerator.design.AWB_GCN_DESIGN`.

    AWB-GCN: column-product execution with runtime workload rebalancing;
    partial-sum spills dominate its traffic, and feature sparsity is
    exploited only as combination zero skipping.
    """

    name = "awb_gcn"
    display_name = "AWB-GCN"
    feature_format_name = "dense"
    execution_order = "combination-first"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    combination_zero_skipping = True
    sparse_first_layer = True
    psum_traffic_factor = 1.0
    target_layers = "2"


class EnGNAccelerator(AcceleratorModel):
    """Deprecated shim for :data:`~repro.accelerator.design.ENGN_DESIGN`.

    EnGN: ring-edge-reduce dataflow with deliberately coarse vertex tiling
    and a degree-aware vertex cache pinning high in-degree rows.
    """

    name = "engn"
    display_name = "EnGN"
    feature_format_name = "dense"
    execution_order = "combination-first"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    pins_high_degree_vertices = True
    pinned_cache_fraction = 0.25
    tiling_fill_fraction = 3.0
    target_layers = "2"


class IGCNAccelerator(AcceleratorModel):
    """Deprecated shim for :data:`~repro.accelerator.design.IGCN_DESIGN`.

    I-GCN: runtime islandization reordering for locality plus aggregation
    redundancy elimination.
    """

    name = "igcn"
    display_name = "I-GCN"
    feature_format_name = "dense"
    execution_order = "combination-first"
    uses_destination_tiling = True
    engine_partition = "contiguous"
    reorders_graph = True
    aggregation_compute_scale = 0.85
    target_layers = "2"
