"""Registry of accelerator models by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.accelerator.baselines import (
    AWBGCNAccelerator,
    EnGNAccelerator,
    GCNAXAccelerator,
    HyGCNAccelerator,
    IGCNAccelerator,
)
from repro.accelerator.sgcn import (
    SGCNAccelerator,
    SGCNNoSACAccelerator,
    SGCNNonSlicedAccelerator,
    SGCNPackedAccelerator,
)
from repro.accelerator.simulator import AcceleratorModel
from repro.errors import ConfigurationError

_FACTORIES: Dict[str, Callable[[], AcceleratorModel]] = {
    "gcnax": GCNAXAccelerator,
    "hygcn": HyGCNAccelerator,
    "awb_gcn": AWBGCNAccelerator,
    "engn": EnGNAccelerator,
    "igcn": IGCNAccelerator,
    "sgcn": SGCNAccelerator,
    "sgcn_no_sac": SGCNNoSACAccelerator,
    "sgcn_nonsliced": SGCNNonSlicedAccelerator,
    "sgcn_packed": SGCNPackedAccelerator,
}

#: Alternative spellings accepted for registry names (after case/dash/space
#: folding).
ACCELERATOR_ALIASES: Dict[str, str] = {"awbgcn": "awb_gcn", "i_gcn": "igcn"}

#: Accelerators plotted in the paper's main comparison figures (11, 13-16).
PAPER_COMPARISON = ("gcnax", "hygcn", "awb_gcn", "engn", "igcn", "sgcn")

#: Accelerators of the ablation study (Fig. 12), in bar order.
ABLATION_SEQUENCE = ("gcnax", "sgcn_nonsliced", "sgcn_no_sac", "sgcn")


def available_accelerators() -> List[str]:
    """Names of every registered accelerator model."""
    return sorted(_FACTORIES)


def register_accelerator(name: str, factory: Callable[[], AcceleratorModel]) -> None:
    """Register a custom accelerator model.

    Raises:
        ConfigurationError: If ``name`` is already registered.
    """
    key = name.lower()
    if key in _FACTORIES:
        raise ConfigurationError(f"accelerator {name!r} is already registered")
    _FACTORIES[key] = factory


def get_accelerator(name: str) -> AcceleratorModel:
    """Instantiate an accelerator model by name (case-insensitive).

    Common aliases (``"awb-gcn"``, ``"i-gcn"``) are accepted.
    """
    key = name.lower().replace("-", "_").replace(" ", "_")
    key = ACCELERATOR_ALIASES.get(key, key)
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown accelerator {name!r}; available: {', '.join(available_accelerators())}"
        )
    return _FACTORIES[key]()
