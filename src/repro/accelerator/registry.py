"""Registry of accelerator models by name.

A thin instantiation of the generic :class:`repro.registry.Registry`: all
folding/alias/extension machinery lives there; this module declares the
built-in designs and re-exports the family-specific helpers the rest of the
library (and downstream users) import.

The registry stores *factories* returning :class:`AcceleratorModel`
instances, and it registers design points directly
(:func:`register_design`): the nine built-in accelerators are
:class:`~repro.accelerator.design.DesignPoint` declarations from
:mod:`repro.accelerator.design`, not classes.  The historical model
subclasses remain importable from :mod:`repro.accelerator.baselines` /
:mod:`repro.accelerator.sgcn` as deprecation shims that resolve to equal
design points.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.accelerator.design import BUILTIN_DESIGNS, DesignPoint
from repro.accelerator.simulator import AcceleratorModel
from repro.errors import ConfigurationError
from repro.registry import Registry

#: The accelerator family registry (the single extension point for new
#: accelerator backends).
ACCELERATORS: Registry[AcceleratorModel] = Registry(
    "accelerator", ConfigurationError
)

#: Canonical design points registered through :func:`register_design`
#: (includes every built-in design).
DESIGN_POINTS: Dict[str, DesignPoint] = {}

#: Factory installed by :func:`register_design` per design name, so
#: :func:`get_design` can detect when another registration (e.g. a
#: ``temporary_accelerator`` shadow) has taken the name over and the recorded
#: design no longer describes what the registry instantiates.
_DESIGN_FACTORIES: Dict[str, object] = {}


def register_design(
    design: DesignPoint,
    *,
    aliases: Sequence[str] = (),
    overwrite: bool = False,
) -> None:
    """Register a :class:`DesignPoint` as an accelerator.

    The registry entry is a factory producing :class:`AcceleratorModel`
    wrappers around ``design``; the point itself is recorded in
    :data:`DESIGN_POINTS` for introspection (``repro accelerators
    --describe``, :func:`get_design`).

    Raises:
        ConfigurationError: If ``design.name`` is already registered and
            ``overwrite`` is false.
    """
    factory = lambda: AcceleratorModel(design)  # noqa: E731
    ACCELERATORS.register(
        design.name, factory, aliases=aliases, overwrite=overwrite
    )
    key = ACCELERATORS.canonical(design.name)
    DESIGN_POINTS[key] = design
    _DESIGN_FACTORIES[key] = factory


def get_design(name: str) -> Optional[DesignPoint]:
    """The canonical design point registered under ``name``.

    Returns ``None`` for accelerators registered as plain factories (legacy
    class registrations) whose design is only known per instance, and for
    design-registered names currently shadowed by another registration
    (``temporary_accelerator``) — the recorded point would not describe what
    the registry instantiates.  Raises for unknown names.

    Raises:
        ConfigurationError: If ``name`` is not a registered accelerator.
    """
    factory = ACCELERATORS.factory(name)  # raises for unknown names
    key = ACCELERATORS.canonical(name)
    if _DESIGN_FACTORIES.get(key) is not factory:
        return None
    return DESIGN_POINTS.get(key)


def resolve_design(name: str) -> DesignPoint:
    """The design point the registry would execute for ``name``.

    Uses the recorded design for design-registered names, and falls back to
    instantiating the registered factory and reading its ``.design`` for
    legacy class registrations (or names shadowed by ``temporary_accelerator``).

    Raises:
        ConfigurationError: If ``name`` is not a registered accelerator.
    """
    design = get_design(name)
    if design is None:
        design = ACCELERATORS.get(name).design
    return design


_BUILTIN_ALIASES = {"awb_gcn": ("awbgcn",), "igcn": ("i_gcn",)}
for _design in BUILTIN_DESIGNS.values():
    register_design(_design, aliases=_BUILTIN_ALIASES.get(_design.name, ()))

#: Alternative spellings accepted for registry names (after case/dash/space
#: folding).  Kept as a plain mapping for backward compatibility; the live
#: alias table is ``ACCELERATORS.aliases()``.
ACCELERATOR_ALIASES: Dict[str, str] = ACCELERATORS.aliases()

#: Accelerators plotted in the paper's main comparison figures (11, 13-16).
PAPER_COMPARISON = ("gcnax", "hygcn", "awb_gcn", "engn", "igcn", "sgcn")

#: Accelerators of the ablation study (Fig. 12), in bar order.
ABLATION_SEQUENCE = ("gcnax", "sgcn_nonsliced", "sgcn_no_sac", "sgcn")


def available_accelerators() -> List[str]:
    """Names of every registered accelerator model."""
    return ACCELERATORS.names()


def register_accelerator(name: str, factory: Callable[[], AcceleratorModel]) -> None:
    """Register a custom accelerator model.

    Raises:
        ConfigurationError: If ``name`` is already registered.
    """
    ACCELERATORS.register(name, factory)


def unregister_accelerator(name: str) -> None:
    """Remove a registered accelerator model (see :meth:`Registry.unregister`)."""
    key = ACCELERATORS.canonical(name)
    ACCELERATORS.unregister(name)
    DESIGN_POINTS.pop(key, None)
    _DESIGN_FACTORIES.pop(key, None)


def temporary_accelerator(name: str, factory: Callable[[], AcceleratorModel]):
    """Context manager registering an accelerator for a ``with`` block only."""
    return ACCELERATORS.temporary(name, factory)


def get_accelerator(name: str) -> AcceleratorModel:
    """Instantiate an accelerator model by name (case-insensitive).

    Common aliases (``"awb-gcn"``, ``"i-gcn"``) are accepted.
    """
    return ACCELERATORS.get(name)


__all__ = [
    "ABLATION_SEQUENCE",
    "ACCELERATORS",
    "ACCELERATOR_ALIASES",
    "DESIGN_POINTS",
    "PAPER_COMPARISON",
    "available_accelerators",
    "get_accelerator",
    "get_design",
    "register_accelerator",
    "register_design",
    "resolve_design",
    "temporary_accelerator",
    "unregister_accelerator",
]
