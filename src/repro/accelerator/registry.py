"""Registry of accelerator models by name.

A thin instantiation of the generic :class:`repro.registry.Registry`: all
folding/alias/extension machinery lives there; this module only declares the
built-in models and re-exports the family-specific helpers the rest of the
library (and downstream users) import.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.accelerator.baselines import (
    AWBGCNAccelerator,
    EnGNAccelerator,
    GCNAXAccelerator,
    HyGCNAccelerator,
    IGCNAccelerator,
)
from repro.accelerator.sgcn import (
    SGCNAccelerator,
    SGCNNoSACAccelerator,
    SGCNNonSlicedAccelerator,
    SGCNPackedAccelerator,
)
from repro.accelerator.simulator import AcceleratorModel
from repro.errors import ConfigurationError
from repro.registry import Registry

#: The accelerator family registry (the single extension point for new
#: accelerator backends).
ACCELERATORS: Registry[AcceleratorModel] = Registry(
    "accelerator", ConfigurationError
)

ACCELERATORS.register("gcnax", GCNAXAccelerator)
ACCELERATORS.register("hygcn", HyGCNAccelerator)
ACCELERATORS.register("awb_gcn", AWBGCNAccelerator, aliases=("awbgcn",))
ACCELERATORS.register("engn", EnGNAccelerator)
ACCELERATORS.register("igcn", IGCNAccelerator, aliases=("i_gcn",))
ACCELERATORS.register("sgcn", SGCNAccelerator)
ACCELERATORS.register("sgcn_no_sac", SGCNNoSACAccelerator)
ACCELERATORS.register("sgcn_nonsliced", SGCNNonSlicedAccelerator)
ACCELERATORS.register("sgcn_packed", SGCNPackedAccelerator)

#: Alternative spellings accepted for registry names (after case/dash/space
#: folding).  Kept as a plain mapping for backward compatibility; the live
#: alias table is ``ACCELERATORS.aliases()``.
ACCELERATOR_ALIASES: Dict[str, str] = ACCELERATORS.aliases()

#: Accelerators plotted in the paper's main comparison figures (11, 13-16).
PAPER_COMPARISON = ("gcnax", "hygcn", "awb_gcn", "engn", "igcn", "sgcn")

#: Accelerators of the ablation study (Fig. 12), in bar order.
ABLATION_SEQUENCE = ("gcnax", "sgcn_nonsliced", "sgcn_no_sac", "sgcn")


def available_accelerators() -> List[str]:
    """Names of every registered accelerator model."""
    return ACCELERATORS.names()


def register_accelerator(name: str, factory: Callable[[], AcceleratorModel]) -> None:
    """Register a custom accelerator model.

    Raises:
        ConfigurationError: If ``name`` is already registered.
    """
    ACCELERATORS.register(name, factory)


def unregister_accelerator(name: str) -> None:
    """Remove a registered accelerator model (see :meth:`Registry.unregister`)."""
    ACCELERATORS.unregister(name)


def temporary_accelerator(name: str, factory: Callable[[], AcceleratorModel]):
    """Context manager registering an accelerator for a ``with`` block only."""
    return ACCELERATORS.temporary(name, factory)


def get_accelerator(name: str) -> AcceleratorModel:
    """Instantiate an accelerator model by name (case-insensitive).

    Common aliases (``"awb-gcn"``, ``"i-gcn"``) are accepted.
    """
    return ACCELERATORS.get(name)


__all__ = [
    "ABLATION_SEQUENCE",
    "ACCELERATORS",
    "ACCELERATOR_ALIASES",
    "PAPER_COMPARISON",
    "available_accelerators",
    "get_accelerator",
    "register_accelerator",
    "temporary_accelerator",
    "unregister_accelerator",
]
