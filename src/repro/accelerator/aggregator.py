"""Functional model of SGCN's sparse aggregator unit.

The sparse aggregator (paper Fig. 8) consumes feature rows stored in BEICSR:
it reads a cacheline, feeds the bitmap through the prefix-sum unit, multiplies
the packed non-zero values by the broadcast edge weight, and accumulates them
into the positions indicated by the bitmap.  This module implements that
datapath functionally so tests can verify that aggregating *compressed*
features produces bit-identical results to aggregating the dense matrix —
i.e. that the microarchitecture computes the same ``A_hat @ X`` the GCN layer
defines.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.engines import PrefixSumUnit
from repro.errors import SimulationError
from repro.formats.base import EncodedFeatures
from repro.formats.beicsr import BEICSRFormat
from repro.graphs.graph import CSRGraph


class SparseAggregator:
    """Aggregates BEICSR-compressed features along graph edges.

    Args:
        feature_format: The BEICSR format instance used to encode the
            features (carries the slice size).
    """

    def __init__(self, feature_format: BEICSRFormat) -> None:
        if not isinstance(feature_format, BEICSRFormat):
            raise SimulationError("SparseAggregator requires a BEICSR format")
        self.format = feature_format
        self.prefix_sum = PrefixSumUnit(width_bits=4096)

    # ------------------------------------------------------------------ #
    def accumulate_row(
        self,
        accumulator: np.ndarray,
        encoded: EncodedFeatures,
        row: int,
        edge_weight: float,
    ) -> None:
        """Accumulate ``edge_weight * X[row]`` into ``accumulator`` in place.

        The row is decoded slice by slice exactly as the hardware does: the
        bitmap drives the prefix-sum unit, whose output indexes the packed
        non-zero values.
        """
        slice_size = int(encoded.metadata["slice_size"])
        bitmaps = encoded.arrays["bitmaps"][row]
        values = encoded.arrays["values"][row]
        counts = encoded.arrays["counts"][row]
        width = accumulator.shape[0]

        for slice_index in range(bitmaps.shape[0]):
            start = slice_index * slice_size
            stop = min(width, start + slice_size)
            bits = np.unpackbits(bitmaps[slice_index], bitorder="little")[: stop - start]
            if not bits.any():
                continue
            packed_indices = self.prefix_sum.reversed_indices(bits)
            positions = np.nonzero(bits)[0]
            count = int(counts[slice_index])
            if packed_indices.size != count:
                raise SimulationError(
                    "bitmap population count disagrees with the stored non-zero "
                    f"count in row {row}, slice {slice_index}"
                )
            accumulator[start + positions] += edge_weight * values[slice_index, packed_indices]

    def aggregate(self, graph: CSRGraph, encoded: EncodedFeatures) -> np.ndarray:
        """Compute ``A_hat @ X`` from the compressed feature matrix.

        Returns a dense ``(num_vertices, width)`` matrix, because the output
        of aggregation is dense (each output row is a weighted sum of several
        sparse rows, paper Section V-F).
        """
        rows, width = encoded.shape
        if rows != graph.num_vertices:
            raise SimulationError(
                "encoded feature row count does not match the graph's vertex count"
            )
        output = np.zeros((rows, width), dtype=np.float32)
        for source in range(graph.num_vertices):
            accumulator = output[source]
            neighbors = graph.neighbors(source)
            weights = graph.neighbor_weights(source)
            for dest, weight in zip(neighbors.tolist(), weights.tolist()):
                self.accumulate_row(accumulator, encoded, dest, weight)
        return output

    # ------------------------------------------------------------------ #
    def aggregate_dense_reference(
        self, graph: CSRGraph, features: np.ndarray
    ) -> np.ndarray:
        """Reference dense aggregation used to validate the sparse datapath."""
        from repro.gcn.layers import aggregate

        return aggregate(graph, features, weighted=True)
