"""Per-accelerator area, peak-power (TDP), and energy modelling.

The paper synthesises the designs (Verilog + Design Compiler, CACTI for the
caches) and reports chip area and peak power alongside the simulated energy.
We cannot run synthesis, so this module carries the published implementation
figures as calibrated constants (they are design properties, not simulation
outputs) together with a simple analytical estimator used for configurations
the paper does not report (e.g. scaled engine counts).

The *dynamic* energy of a run always comes from the simulator's event counts
via :class:`repro.memory.energy.EnergyTable`; this module only adds the
design-level constants needed for the Fig. 13 TDP markers and the area
discussion of Section VI-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.errors import ConfigurationError
from repro.memory.energy import EnergyTable


@dataclass(frozen=True)
class ImplementationFigures:
    """Synthesis-derived figures for one accelerator design.

    Attributes:
        area_mm2: Chip area at the 32 nm-equivalent node.
        tdp_watts: Peak (thermal design) power.
    """

    area_mm2: float
    tdp_watts: float


#: Published implementation figures (paper Section VI-A and Fig. 13).
PUBLISHED_IMPLEMENTATIONS: Dict[str, ImplementationFigures] = {
    "gcnax": ImplementationFigures(area_mm2=3.95, tdp_watts=7.16),
    "sgcn": ImplementationFigures(area_mm2=4.05, tdp_watts=6.74),
    "awb_gcn": ImplementationFigures(area_mm2=4.25, tdp_watts=7.03),
    "hygcn": ImplementationFigures(area_mm2=3.90, tdp_watts=5.94),
    "engn": ImplementationFigures(area_mm2=4.00, tdp_watts=6.90),
    "igcn": ImplementationFigures(area_mm2=4.10, tdp_watts=7.05),
}


class AcceleratorEnergyModel:
    """Design-level power/area model for the accelerators."""

    def __init__(self, energy_table: EnergyTable = EnergyTable()) -> None:
        self.energy_table = energy_table

    # ------------------------------------------------------------------ #
    def implementation(self, accelerator: str) -> ImplementationFigures:
        """Published area/TDP for ``accelerator`` (ablation variants map to SGCN)."""
        key = accelerator.lower()
        if key.startswith("sgcn"):
            key = "sgcn"
        if key not in PUBLISHED_IMPLEMENTATIONS:
            raise ConfigurationError(
                f"no implementation figures for accelerator {accelerator!r}"
            )
        return PUBLISHED_IMPLEMENTATIONS[key]

    def estimated_tdp_watts(self, accelerator: str, config: SystemConfig) -> float:
        """Estimate TDP for a (possibly non-default) engine configuration.

        The published TDP is scaled with the compute array sizes and the
        memory interface width: peak compute power scales with the number of
        MAC units; the HBM PHY contribution scales with peak bandwidth.
        """
        base = self.implementation(accelerator)
        default = SystemConfig()
        compute_units = (
            config.engines.num_combination_engines
            * config.engines.systolic_rows
            * config.engines.systolic_cols
            + config.engines.num_aggregation_engines * config.engines.simd_width
        )
        default_units = (
            default.engines.num_combination_engines
            * default.engines.systolic_rows
            * default.engines.systolic_cols
            + default.engines.num_aggregation_engines * default.engines.simd_width
        )
        compute_share = 0.55
        memory_share = 0.45
        compute_power = base.tdp_watts * compute_share * compute_units / default_units
        memory_power = (
            base.tdp_watts
            * memory_share
            * config.dram.peak_bandwidth_gbps
            / default.dram.peak_bandwidth_gbps
        )
        return compute_power + memory_power

    # ------------------------------------------------------------------ #
    def average_power_watts(
        self, result: SimulationResult, config: SystemConfig
    ) -> float:
        """Average power drawn over one simulated run."""
        return self.energy_table.average_power_w(
            result.energy, result.total_cycles, config.engines.frequency_ghz
        )

    def energy_breakdown_normalized(
        self, results: Dict[str, SimulationResult], baseline: str = "gcnax"
    ) -> Dict[str, Dict[str, float]]:
        """Per-accelerator energy components normalised to ``baseline``'s total.

        This is the data of Fig. 13: for every accelerator, the compute /
        cache / DRAM energy shares expressed relative to the baseline's total
        energy on the same dataset.
        """
        if baseline not in results:
            raise ConfigurationError(f"baseline {baseline!r} missing from results")
        base_total = results[baseline].energy.total_joules
        normalized: Dict[str, Dict[str, float]] = {}
        for name, result in results.items():
            breakdown = result.energy
            normalized[name] = {
                "compute": breakdown.compute_joules / base_total,
                "cache": breakdown.cache_joules / base_total,
                "dram": breakdown.dram_joules / base_total,
                "total": breakdown.total_joules / base_total,
                "tdp_watts": self.implementation(name).tdp_watts,
            }
        return normalized
