"""Declarative accelerator design points.

The paper's Table I characterises every evaluated accelerator as a small set
of design choices — execution order, tiling policy, feature format, zero
skipping, reordering.  :class:`DesignPoint` captures exactly those choices as
a frozen, validated, hashable, JSON-round-trippable dataclass, separated from
the simulation machinery that executes them
(:mod:`repro.accelerator.pipeline`).

A design point is *pure data*: two points constructed with the same knobs —
whether directly, via :meth:`DesignPoint.derive`, or via
:meth:`DesignPoint.with_format` — compare and hash equal, so sessions can
memoize model instances by design identity and a sweep over hypothetical
designs (the ``design-space`` scenario pack) can deduplicate grid points.

The nine built-in accelerators are declared here as design points
(:data:`BUILTIN_DESIGNS`); the historical ``AcceleratorModel`` subclasses in
:mod:`repro.accelerator.baselines` / :mod:`repro.accelerator.sgcn` are thin
deprecation shims that resolve to these same points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.formats.base import FeatureFormat
from repro.formats.registry import get_format

#: Execution orders reported in the paper's Table I (display metadata; the
#: simulated dataflow is determined by the tiling/column-product knobs).
EXECUTION_ORDERS = ("aggregation-first", "combination-first", "both")

#: Engine partitionings of the source range understood by the scheduler.
ENGINE_PARTITIONS = ("contiguous", "sac")

#: Upper bound accepted for ``tiling_fill_fraction``.  Values in ``(0, 1]``
#: size the destination tile to (a fraction of) the cache; values above 1
#: model deliberately coarse vertex tiling that overflows the cache on
#: purpose (EnGN uses 3.0).  Anything beyond this bound is treated as a
#: configuration error rather than a design choice.
MAX_TILING_FILL_FRACTION = 8.0


#: Float-typed design knobs (coerced to ``float`` after validation, so an
#: int spelling like ``tiling_fill_fraction=1`` and ``1.0`` build the same
#: point — equal, same hash, same serialised form).
_FLOAT_KNOBS = (
    "tiling_fill_fraction",
    "psum_buffer_fraction",
    "aggregation_compute_scale",
    "pinned_cache_fraction",
    "psum_traffic_factor",
)

#: Boolean design knobs (validated to be actual ``bool`` values).
_BOOL_KNOBS = (
    "uses_destination_tiling",
    "uses_source_tiling",
    "tile_with_average_sparsity",
    "sparse_aggregation_compute",
    "combination_zero_skipping",
    "reorders_graph",
    "pins_high_degree_vertices",
    "column_product",
    "sparse_first_layer",
    "supports_residual",
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _unit_fraction(value: float, knob: str) -> None:
    """Validate ``value`` is a real number in ``(0, 1]``."""
    _require(
        isinstance(value, (int, float)) and math.isfinite(value) and 0.0 < value <= 1.0,
        f"{knob} must be in (0, 1]; got {value!r}",
    )


@dataclass(frozen=True)
class DesignPoint:
    """One point in the GCN-accelerator design space (paper Table I).

    Attributes:
        name: Registry/report key of the design.
        display_name: Name used in tables and figures (defaults to ``name``).
        feature_format: Feature-format registry name used for intermediate
            features (normalised to the canonical instance name).
        slice_size: Unit slice size ``C`` for sliced formats (normalised to
            the format instance's resolved value; ``None`` for formats
            without a slice knob).
        execution_order: Execution order reported in Table I.
        uses_destination_tiling: Whether the destination range is tiled to
            the cache.
        uses_source_tiling: Whether the source range is tiled to the
            accumulation (psum) buffer.
        tiling_fill_fraction: Fraction of the cache a destination tile is
            sized to occupy; values above 1 model deliberately coarse tiling
            that overflows the cache (EnGN).
        psum_buffer_fraction: Accumulation-buffer capacity relative to the
            cache capacity.
        engine_partition: Engine partitioning of the source range
            (``"contiguous"`` or ``"sac"``).
        assumed_tiling_sparsity: Sparsity assumed when sizing tiles
            (``None`` = assume dense rows).
        tile_with_average_sparsity: Size tiles from the dataset's *average*
            intermediate sparsity (static off-line analysis).
        sparse_aggregation_compute: Aggregation engines skip zero feature
            elements.
        combination_zero_skipping: Combination engines skip zero input
            activations.
        reorders_graph: The graph is reordered for locality before execution
            (I-GCN islandization).
        aggregation_compute_scale: Fraction of aggregation compute remaining
            after redundancy elimination.
        pins_high_degree_vertices: High-degree vertices' rows are pinned in
            the cache (EnGN DAVC).
        pinned_cache_fraction: Fraction of the cache reserved for pinned
            vertices.
        column_product: Aggregation executes as a column product on the
            transposed graph with partial-sum spills (AWB-GCN dataflow).
        psum_traffic_factor: Extra partial-sum traffic as a multiple of the
            output matrix size.
        sparse_first_layer: The ultra-sparse first-layer combination runs as
            a sparse operation.
        supports_residual: Residual connections are supported without extra
            traffic.
        target_layers: Network depth the original design targeted (Table I).
        dataflow_feature_passes: Width slices the dataflow processes per
            layer when source tiling is active.
    """

    name: str
    display_name: str = ""
    feature_format: str = "dense"
    slice_size: Optional[int] = None
    execution_order: str = "aggregation-first"
    uses_destination_tiling: bool = True
    uses_source_tiling: bool = True
    tiling_fill_fraction: float = 0.95
    psum_buffer_fraction: float = 0.25
    engine_partition: str = "contiguous"
    assumed_tiling_sparsity: Optional[float] = None
    tile_with_average_sparsity: bool = False
    sparse_aggregation_compute: bool = False
    combination_zero_skipping: bool = False
    reorders_graph: bool = False
    aggregation_compute_scale: float = 1.0
    pins_high_degree_vertices: bool = False
    pinned_cache_fraction: float = 0.25
    column_product: bool = False
    psum_traffic_factor: float = 0.0
    sparse_first_layer: bool = False
    supports_residual: bool = True
    target_layers: str = "2"
    dataflow_feature_passes: int = 2

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name.strip()),
            "design point name must be a non-empty string",
        )
        # Flag knobs must be actual booleans: a stray string like "False" is
        # truthy, which would silently invert the requested design while the
        # run identity, label, and cache key all claim the opposite.
        for knob in _BOOL_KNOBS:
            value = getattr(self, knob)
            _require(
                isinstance(value, bool),
                f"{knob} must be a boolean; got {value!r}",
            )
        if not self.display_name:
            object.__setattr__(self, "display_name", self.name)

        # Normalise the format reference through the registry so two points
        # that build the same format instance compare equal: the canonical
        # instance name replaces aliases/odd spellings, and the slice size is
        # resolved to the instance's actual value (e.g. plain "beicsr" and
        # "beicsr" with an explicit slice_size=96 are the same point, while
        # formats without a slice knob normalise it away entirely).
        if self.slice_size is not None:
            _require(
                isinstance(self.slice_size, int) and self.slice_size > 0,
                f"slice_size must be a positive integer; got {self.slice_size!r}",
            )
        instance = get_format(self.feature_format, slice_size=self.slice_size)
        object.__setattr__(self, "feature_format", instance.name)
        object.__setattr__(self, "slice_size", getattr(instance, "slice_size", None))

        _require(
            self.execution_order in EXECUTION_ORDERS,
            f"execution_order must be one of {EXECUTION_ORDERS}; "
            f"got {self.execution_order!r}",
        )
        _require(
            self.engine_partition in ENGINE_PARTITIONS,
            f"engine_partition must be one of {ENGINE_PARTITIONS}; "
            f"got {self.engine_partition!r}",
        )
        _require(
            isinstance(self.tiling_fill_fraction, (int, float))
            and math.isfinite(self.tiling_fill_fraction)
            and 0.0 < self.tiling_fill_fraction <= MAX_TILING_FILL_FRACTION,
            "tiling_fill_fraction must be in (0, "
            f"{MAX_TILING_FILL_FRACTION:g}] (values above 1 model deliberate "
            f"cache overflow); got {self.tiling_fill_fraction!r}",
        )
        _unit_fraction(self.psum_buffer_fraction, "psum_buffer_fraction")
        _unit_fraction(self.pinned_cache_fraction, "pinned_cache_fraction")
        _unit_fraction(self.aggregation_compute_scale, "aggregation_compute_scale")
        if self.assumed_tiling_sparsity is not None:
            _require(
                isinstance(self.assumed_tiling_sparsity, (int, float))
                and 0.0 <= self.assumed_tiling_sparsity < 1.0,
                "assumed_tiling_sparsity must be in [0, 1) or None; "
                f"got {self.assumed_tiling_sparsity!r}",
            )
        _require(
            isinstance(self.psum_traffic_factor, (int, float))
            and math.isfinite(self.psum_traffic_factor)
            and self.psum_traffic_factor >= 0.0,
            f"psum_traffic_factor must be >= 0; got {self.psum_traffic_factor!r}",
        )
        _require(
            isinstance(self.dataflow_feature_passes, int)
            and self.dataflow_feature_passes >= 1,
            "dataflow_feature_passes must be a positive integer; "
            f"got {self.dataflow_feature_passes!r}",
        )
        for knob in _FLOAT_KNOBS:
            object.__setattr__(self, knob, float(getattr(self, knob)))
        if self.assumed_tiling_sparsity is not None:
            object.__setattr__(
                self, "assumed_tiling_sparsity", float(self.assumed_tiling_sparsity)
            )

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def derive(self, **knobs: object) -> "DesignPoint":
        """A copy of this point with ``knobs`` replaced (and re-validated).

        Raises:
            ConfigurationError: For unknown knob names or illegal values.
        """
        unknown = sorted(set(knobs) - set(field_names()))
        if unknown:
            raise ConfigurationError(
                f"unknown design knob(s) {unknown}; knobs: {', '.join(DESIGN_KNOBS)}"
            )
        return replace(self, **knobs)  # type: ignore[arg-type]

    def with_format(
        self, format_name: str, slice_size: Optional[int] = None
    ) -> "DesignPoint":
        """This design with a different intermediate-feature format.

        The copy is normalised exactly like a directly-constructed point, so
        it compares and hashes equal to an identically-configured one —
        including the no-op case (``sgcn.with_format("beicsr") == sgcn``).
        """
        return replace(self, feature_format=format_name, slice_size=slice_size)

    def format_instance(self) -> FeatureFormat:
        """Build the configured feature-format instance."""
        return get_format(self.feature_format, slice_size=self.slice_size)

    # ------------------------------------------------------------------ #
    # Presentation / serialisation
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Row of the paper's Table I for this design."""
        instance = self.format_instance()
        return {
            "accelerator": self.display_name,
            "compressed_feature": instance.compressed,
            "feature_format": instance.name,
            "target_layers": self.target_layers,
            "residual": self.supports_residual,
            "execution_order": self.execution_order,
        }

    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DesignPoint":
        """Rebuild a point produced by :meth:`to_dict`.

        Raises:
            ConfigurationError: For unknown keys or illegal knob values.
        """
        unknown = sorted(set(data) - set(field_names()))
        if unknown:
            raise ConfigurationError(
                f"unknown design point field(s) {unknown}; "
                f"fields: {', '.join(field_names())}"
            )
        return cls(**dict(data))  # type: ignore[arg-type]


def field_names() -> Tuple[str, ...]:
    """Names of every :class:`DesignPoint` field, in declaration order."""
    return tuple(spec.name for spec in fields(DesignPoint))


#: Design knobs overridable through the :class:`~repro.core.runspec.RunSpec`
#: ``design`` axis and the CLI's ``--set`` flag: every field that changes the
#: simulated behaviour.  The identity/presentation fields (``name``,
#: ``display_name``) and the Table-I display metadata (``execution_order``,
#: ``supports_residual``, ``target_layers``) are excluded — overriding them
#: would mint distinct scenario identities for byte-identical results.
DESIGN_KNOBS: Tuple[str, ...] = tuple(
    name
    for name in field_names()
    if name
    not in (
        "name",
        "display_name",
        "execution_order",
        "supports_residual",
        "target_layers",
    )
)


# --------------------------------------------------------------------------- #
# The nine built-in designs (paper Table I, Sections VI-B and Fig. 12)
# --------------------------------------------------------------------------- #
GCNAX_DESIGN = DesignPoint(
    name="gcnax",
    display_name="GCNAX",
    feature_format="dense",
    execution_order="both",
    target_layers="2",
)

HYGCN_DESIGN = DesignPoint(
    name="hygcn",
    display_name="HyGCN",
    feature_format="dense",
    execution_order="aggregation-first",
    uses_destination_tiling=False,
    uses_source_tiling=False,
    target_layers="1-2",
)

AWB_GCN_DESIGN = DesignPoint(
    name="awb_gcn",
    display_name="AWB-GCN",
    feature_format="dense",
    execution_order="combination-first",
    combination_zero_skipping=True,
    sparse_first_layer=True,
    # Column-product execution spills partial output sums and refills them:
    # roughly one extra transfer of the output matrix per layer.
    psum_traffic_factor=1.0,
    target_layers="2",
)

ENGN_DESIGN = DesignPoint(
    name="engn",
    display_name="EnGN",
    feature_format="dense",
    execution_order="combination-first",
    pins_high_degree_vertices=True,
    pinned_cache_fraction=0.25,
    # EnGN's vertex tiling is coarser than GCNAX's perfect tiling: the
    # working set of one tile deliberately overflows the cache, and the
    # pinned degree-aware vertex cache claws part of the loss back.
    tiling_fill_fraction=3.0,
    target_layers="2",
)

IGCN_DESIGN = DesignPoint(
    name="igcn",
    display_name="I-GCN",
    feature_format="dense",
    execution_order="combination-first",
    reorders_graph=True,
    aggregation_compute_scale=0.85,
    target_layers="2",
)

SGCN_DESIGN = DesignPoint(
    name="sgcn",
    display_name="SGCN",
    feature_format="beicsr",
    execution_order="aggregation-first",
    engine_partition="sac",
    tile_with_average_sparsity=True,
    tiling_fill_fraction=1.0,
    sparse_aggregation_compute=True,
    sparse_first_layer=True,
    supports_residual=True,
    target_layers=">5",
)

SGCN_NO_SAC_DESIGN = replace(
    SGCN_DESIGN,
    name="sgcn_no_sac",
    display_name="SGCN (BEICSR, no SAC)",
    engine_partition="contiguous",
)

SGCN_NONSLICED_DESIGN = replace(
    SGCN_DESIGN,
    name="sgcn_nonsliced",
    display_name="SGCN (non-sliced BEICSR)",
    feature_format="beicsr_nonsliced",
    slice_size=None,
    engine_partition="contiguous",
)

SGCN_PACKED_DESIGN = replace(
    SGCN_DESIGN,
    name="sgcn_packed",
    display_name="SGCN (packed BEICSR)",
    feature_format="beicsr_packed",
)

#: The built-in designs by canonical registry name, in Table I order.
BUILTIN_DESIGNS: Dict[str, DesignPoint] = {
    design.name: design
    for design in (
        GCNAX_DESIGN,
        HYGCN_DESIGN,
        AWB_GCN_DESIGN,
        ENGN_DESIGN,
        IGCN_DESIGN,
        SGCN_DESIGN,
        SGCN_NO_SAC_DESIGN,
        SGCN_NONSLICED_DESIGN,
        SGCN_PACKED_DESIGN,
    )
}


__all__ = [
    "AWB_GCN_DESIGN",
    "BUILTIN_DESIGNS",
    "DESIGN_KNOBS",
    "DesignPoint",
    "ENGINE_PARTITIONS",
    "ENGN_DESIGN",
    "EXECUTION_ORDERS",
    "GCNAX_DESIGN",
    "HYGCN_DESIGN",
    "IGCN_DESIGN",
    "MAX_TILING_FILL_FRACTION",
    "SGCN_DESIGN",
    "SGCN_NONSLICED_DESIGN",
    "SGCN_NO_SAC_DESIGN",
    "SGCN_PACKED_DESIGN",
    "field_names",
]
