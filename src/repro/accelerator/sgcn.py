"""The SGCN accelerator model and its ablation variants (deprecation shims).

The SGCN designs — the full design (sliced BEICSR + sparse aggregator +
sparsity-aware cooperation) and its Fig. 12 ablations — are declared as
:class:`~repro.accelerator.design.DesignPoint` instances in
:mod:`repro.accelerator.design` and registered directly with the accelerator
registry.  The subclasses below are kept only so existing code that imports
or subclasses them keeps working; each is a thin shim whose class attributes
mirror the canonical design point.

New code should use the registry (``get_accelerator("sgcn")``), derive from
the design (``SGCN_DESIGN.derive(slice_size=128)``), or wrap a point
explicitly (``AcceleratorModel(SGCN_DESIGN)``).
"""

from __future__ import annotations

from typing import Optional

from repro.accelerator.simulator import AcceleratorModel


class SGCNAccelerator(AcceleratorModel):
    """Deprecated shim for :data:`~repro.accelerator.design.SGCN_DESIGN`.

    The full SGCN design: intermediate features in sliced BEICSR, the sparse
    aggregator scaling compute with feature density, and sparsity-aware
    cooperation dealing source strips to the engines round-robin.
    """

    name = "sgcn"
    display_name = "SGCN"
    feature_format_name = "beicsr"
    execution_order = "aggregation-first"
    uses_destination_tiling = True
    engine_partition = "sac"
    tile_with_average_sparsity = True
    tiling_fill_fraction = 1.0
    sparse_aggregation_compute = True
    sparse_first_layer = True
    supports_residual = True
    target_layers = ">5"

    def __init__(self, slice_size: Optional[int] = None) -> None:
        super().__init__()
        if slice_size is not None:
            self._set_design(
                self._design.with_format("beicsr", slice_size=slice_size)
            )

    @property
    def slice_size(self) -> Optional[int]:
        """Unit slice size ``C`` of the BEICSR format in use."""
        return getattr(self._format, "slice_size", None)


class SGCNNoSACAccelerator(SGCNAccelerator):
    """Deprecated shim for :data:`~repro.accelerator.design.SGCN_NO_SAC_DESIGN`.

    Fig. 12's "BEICSR" bar: sliced BEICSR and the sparse aggregator are
    active, but each engine owns a contiguous quarter of the source range.
    """

    name = "sgcn_no_sac"
    display_name = "SGCN (BEICSR, no SAC)"
    engine_partition = "contiguous"


class SGCNNonSlicedAccelerator(SGCNAccelerator):
    """Deprecated shim for :data:`~repro.accelerator.design.SGCN_NONSLICED_DESIGN`.

    Fig. 12's "Non-sliced BEICSR" bar: whole-row BEICSR removes most feature
    traffic but cannot be sliced, forcing a single pass over full rows.
    """

    name = "sgcn_nonsliced"
    display_name = "SGCN (non-sliced BEICSR)"
    feature_format_name = "beicsr_nonsliced"
    engine_partition = "contiguous"

    def __init__(self) -> None:  # non-sliced variant has no slice size knob
        AcceleratorModel.__init__(self)


class SGCNPackedAccelerator(SGCNAccelerator):
    """Deprecated shim for :data:`~repro.accelerator.design.SGCN_PACKED_DESIGN`.

    Ablation: BEICSR without in-place storage (packed, variable length),
    used by the extra ablation benchmark to quantify the cost of dropping
    in-place compression.
    """

    name = "sgcn_packed"
    display_name = "SGCN (packed BEICSR)"
    feature_format_name = "beicsr_packed"

    def __init__(self) -> None:
        AcceleratorModel.__init__(self)
