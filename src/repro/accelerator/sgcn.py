"""The SGCN accelerator model and its ablation variants.

SGCN builds on the GCNAX-style tiled baseline (same tiling machinery, same
engine counts) and adds the paper's three techniques:

1. intermediate features are stored in **BEICSR** (sliced, ``C`` = 96 by
   default), so every feature-row read transfers only the occupied prefix of
   each slice and the post-combination compressor writes the next layer's
   features compressed at no extra traffic;
2. the **sparse aggregator** multiplies only the non-zero elements, scaling
   the aggregation compute with the feature density;
3. **sparsity-aware cooperation** deals 32-vertex source strips to the
   engines round-robin, creating nested reuse windows that keep the cache
   effective when the actual sparsity is lower than the static tiling
   assumed.

The ablation variants (Fig. 12) are expressed as subclasses:
``SGCNNonSlicedAccelerator`` (whole-row BEICSR, no feature slicing, no SAC)
and ``SGCNNoSACAccelerator`` (sliced BEICSR, conventional engine
partitioning).
"""

from __future__ import annotations

from typing import Optional

from repro.accelerator.simulator import AcceleratorModel
from repro.formats.registry import get_format


class SGCNAccelerator(AcceleratorModel):
    """The full SGCN design (sliced BEICSR + sparse aggregator + SAC)."""

    name = "sgcn"
    display_name = "SGCN"
    feature_format_name = "beicsr"
    execution_order = "aggregation-first"
    uses_destination_tiling = True
    engine_partition = "sac"
    #: Tiles are sized off line from the dataset's *average* sparsity — the
    #: best a static analysis of a compressed-feature design can do — so
    #: layers that end up denser than the average overflow the tile budget,
    #: exactly the situation sparsity-aware cooperation is designed for.
    tile_with_average_sparsity = True
    #: Perfect tiling: the destination tile is sized to the whole cache from
    #: the (average-sparsity) estimate, so denser-than-average layers
    #: overflow it.
    tiling_fill_fraction = 1.0
    sparse_aggregation_compute = True
    sparse_first_layer = True
    supports_residual = True
    target_layers = ">5"

    def __init__(self, slice_size: Optional[int] = None) -> None:
        super().__init__()
        if slice_size is not None:
            self._format = get_format("beicsr", slice_size=slice_size)

    @property
    def slice_size(self) -> Optional[int]:
        """Unit slice size ``C`` of the BEICSR format in use."""
        return getattr(self._format, "slice_size", None)


class SGCNNoSACAccelerator(SGCNAccelerator):
    """SGCN with sliced BEICSR but conventional engine partitioning.

    Fig. 12's "BEICSR" bar: the format and the sparse aggregator are active,
    feature-matrix slicing keeps the dataflow optimal, but each engine still
    owns a contiguous quarter of the source range, so the combined working
    set has a single large reuse window.
    """

    name = "sgcn_no_sac"
    display_name = "SGCN (BEICSR, no SAC)"
    engine_partition = "contiguous"


class SGCNNonSlicedAccelerator(SGCNAccelerator):
    """SGCN with whole-row (non-sliced) BEICSR.

    Fig. 12's "Non-sliced BEICSR" bar: the compressed format already removes
    most of the feature traffic, but without per-slice bitmaps the feature
    matrix cannot be sliced, so the accelerator is stuck with a single pass
    over full rows and a sub-optimal dataflow when the working set is large.
    """

    name = "sgcn_nonsliced"
    display_name = "SGCN (non-sliced BEICSR)"
    feature_format_name = "beicsr_nonsliced"
    engine_partition = "contiguous"

    def __init__(self) -> None:  # non-sliced variant has no slice size knob
        AcceleratorModel.__init__(self)


class SGCNPackedAccelerator(SGCNAccelerator):
    """Ablation: BEICSR without in-place storage (packed, variable length).

    Not part of the paper's Fig. 12 but used by the extra ablation benchmark
    to quantify the cost of dropping in-place compression: rows become
    unaligned, an indirection array is required, and parallel output writes
    serialise.
    """

    name = "sgcn_packed"
    display_name = "SGCN (packed BEICSR)"
    feature_format_name = "beicsr_packed"

    def __init__(self) -> None:
        AcceleratorModel.__init__(self)
