"""Functional model of SGCN's post-combination compressor unit.

The compressor (paper Fig. 9) sits at the output of the systolic combination
engine.  For every output row it receives the streamed combination results,
adds the residual, applies ReLU, and builds the BEICSR representation on the
fly: a zero output appends a ``0`` to the bitmap, a non-zero output appends a
``1`` and stores the value at the position indicated by a running counter.
After a unit slice worth of outputs the buffer is flushed to DRAM and the
entry re-initialised — so producing the *compressed* next-layer features
costs no extra memory traffic compared to writing them dense.

The functional model below mirrors that element-by-element procedure and is
validated against :class:`repro.formats.beicsr.BEICSRFormat.encode` in the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.formats.base import EncodedFeatures
from repro.formats.beicsr import BEICSRFormat
from repro.gcn.activations import relu


@dataclass
class CompressorEntry:
    """State of one compressor entry (one systolic-array output row).

    Attributes:
        slice_size: Unit slice size ``C``.
        bitmap_bits: Bits accumulated for the current slice.
        values: Non-zero values stored so far for the current slice.
        flushed_slices: Completed (bitmap, values, count) triples.
    """

    slice_size: int
    bitmap_bits: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    flushed_slices: List[tuple] = field(default_factory=list)

    def push(self, value: float) -> None:
        """Process one activated output element (paper Fig. 9, steps 2-4)."""
        if value != 0.0:
            self.bitmap_bits.append(1)
            self.values.append(float(value))
        else:
            self.bitmap_bits.append(0)
        if len(self.bitmap_bits) == self.slice_size:
            self.flush()

    def flush(self) -> None:
        """Flush the current slice to the output list (step 5)."""
        if not self.bitmap_bits:
            return
        bits = np.zeros(self.slice_size, dtype=np.uint8)
        bits[: len(self.bitmap_bits)] = self.bitmap_bits
        bitmap = np.packbits(bits, bitorder="little")
        values = np.zeros(self.slice_size, dtype=np.float32)
        values[: len(self.values)] = self.values
        self.flushed_slices.append((bitmap, values, len(self.values)))
        self.bitmap_bits = []
        self.values = []


class PostCombinationCompressor:
    """Streams combination outputs into BEICSR with no extra memory traffic.

    Args:
        feature_format: BEICSR format (defines the slice size of the output).
    """

    def __init__(self, feature_format: Optional[BEICSRFormat] = None) -> None:
        self.format = feature_format or BEICSRFormat(slice_size=96)

    def compress_row(
        self,
        combination_output: np.ndarray,
        residual: Optional[np.ndarray] = None,
    ) -> tuple:
        """Compress one output row.

        Args:
            combination_output: The systolic array's output row
                (``A_hat @ X @ W`` for this vertex).
            residual: Optional residual term ``S_l`` added before activation.

        Returns:
            ``(activated_row, slices)`` where ``activated_row`` is the dense
            post-ReLU row (for verification) and ``slices`` is the list of
            flushed ``(bitmap, values, count)`` triples.
        """
        combination_output = np.asarray(combination_output, dtype=np.float32)
        if combination_output.ndim != 1:
            raise SimulationError("compressor processes one output row at a time")
        pre_activation = combination_output
        if residual is not None:
            residual = np.asarray(residual, dtype=np.float32)
            if residual.shape != combination_output.shape:
                raise SimulationError("residual must match the output row shape")
            pre_activation = pre_activation + residual
        activated = relu(pre_activation)

        slice_size = self.format.slice_size or activated.size
        entry = CompressorEntry(slice_size=slice_size)
        for value in activated.tolist():
            entry.push(value)
        entry.flush()
        return activated, entry.flushed_slices

    def compress_matrix(
        self,
        combination_output: np.ndarray,
        residual: Optional[np.ndarray] = None,
    ) -> EncodedFeatures:
        """Compress a full output matrix into an :class:`EncodedFeatures`.

        Produces exactly the same representation as
        ``BEICSRFormat.encode(relu(combination_output + residual))`` — the
        tests assert this equivalence, mirroring the paper's claim that the
        compressor is purely an output-stage addition.
        """
        combination_output = np.asarray(combination_output, dtype=np.float32)
        if combination_output.ndim != 2:
            raise SimulationError("expected a (rows, width) output matrix")
        rows, width = combination_output.shape
        slice_size = self.format.slice_size or width
        num_slices = (width + slice_size - 1) // slice_size
        bitmap_bytes = (slice_size + 7) // 8

        bitmaps = np.zeros((rows, num_slices, bitmap_bytes), dtype=np.uint8)
        values = np.zeros((rows, num_slices, slice_size), dtype=np.float32)
        counts = np.zeros((rows, num_slices), dtype=np.int64)
        activated_matrix = np.zeros_like(combination_output)
        for row in range(rows):
            residual_row = residual[row] if residual is not None else None
            activated, slices = self.compress_row(combination_output[row], residual_row)
            activated_matrix[row] = activated
            for slice_index, (bitmap, slice_values, count) in enumerate(slices):
                bitmaps[row, slice_index, : bitmap.size] = bitmap[:bitmap_bytes]
                values[row, slice_index] = slice_values
                counts[row, slice_index] = count
        return EncodedFeatures(
            format_name=self.format.name,
            shape=(rows, width),
            arrays={"bitmaps": bitmaps, "values": values, "counts": counts},
            metadata={"slice_size": slice_size, "in_place": self.format.in_place},
        )

    def write_bytes(self, counts: np.ndarray, slice_size: Optional[int] = None) -> int:
        """DRAM bytes written when flushing slices with the given nnz counts.

        Every flushed slice writes whole cachelines covering its bitmap plus
        its packed non-zero values.
        """
        from repro.formats.base import CACHELINE_BYTES, ELEMENT_BYTES, bytes_to_lines

        counts = np.asarray(counts, dtype=np.int64)
        slice_size = slice_size or (self.format.slice_size or 0)
        if slice_size <= 0:
            raise SimulationError("slice size must be positive")
        bitmap = (slice_size + 7) // 8
        total_lines = 0
        for count in counts.ravel().tolist():
            total_lines += bytes_to_lines(bitmap + count * ELEMENT_BYTES)
        return int(total_lines * CACHELINE_BYTES)
