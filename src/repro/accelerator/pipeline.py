"""The phase pipeline that executes a :class:`~repro.accelerator.design.DesignPoint`.

The simulator follows the structure of the paper's evaluation methodology
(Section VI-A) at a phase level rather than cycle-by-cycle.  This module is
the *how* of a simulation; the *what* — the accelerator's design choices — is
a plain :class:`~repro.accelerator.design.DesignPoint` consumed by every
stage.  A full run is an explicit five-stage pipeline
(:func:`simulate_design`):

1. :func:`build_context` — resolve the graph the dataflow walks (locality
   reordering, column-product transposition), the scaled cache capacity, and
   the engine/DRAM/energy models;
2. :func:`schedule` — plan the tiling, build the aggregation access trace,
   and select the pinned-vertex partition;
3. :func:`replay` — sample representative layers, build their per-row
   transfer tables, and replay every cache access of the run (batched
   through the vectorized engine when possible, per-layer otherwise);
4. :func:`timing` — convert replay statistics and compute models into
   per-layer cycles and traffic;
5. :func:`energy` — price the counted events and assemble the
   :class:`~repro.core.results.LayerResult` documents.

Each stage is a small function over an explicit :class:`RunContext`, so a
stage can be tested (or swapped) in isolation; none of them reads accelerator
state from anywhere but the design point.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.accelerator.design import DesignPoint
from repro.accelerator.engines import SIMDAggregationEngine
from repro.accelerator.systolic import SystolicArray
from repro.accelerator.tiling import (
    TilingPlan,
    aggregation_access_trace,
    aggregation_access_trace_reference,
    locality_reordering,
    locality_reordering_reference,
    plan_tiling,
)
from repro.core.config import CACHELINE_BYTES, ELEMENT_BYTES, SystemConfig
from repro.core.results import LayerResult, SimulationResult, TrafficBreakdown
from repro.errors import FaultInjectionError, SimulationError
from repro.formats.base import FeatureFormat, bytes_to_lines
from repro.gcn.providers import SparsityProvider, SyntheticSparsityProvider
from repro.graphs.datasets import Dataset
from repro.graphs.graph import CSRGraph
from repro.memory.dram import DRAMModel, TrafficPattern
from repro.memory.energy import EnergyTable
from repro.memory.replay import ReplayEngine, TraceCache, array_token
from repro.memory.rowcache import RowCache, RowCacheStats
from repro.resilience.faults import fault_point
from repro.resilience.policy import check_deadline
from repro.telemetry.spans import span

logger = logging.getLogger(__name__)

_CacheValue = TypeVar("_CacheValue")


def _trace_cache_get(
    cache: TraceCache,
    key: Tuple,
    builder: "Callable[[], _CacheValue]",
) -> "_CacheValue":
    """Trace-cache lookup that degrades to uncached execution.

    The ``cache:trace`` fault site models the shared memo becoming
    unavailable; an injected failure (or, defensively, any cache-layer
    fault) falls back to calling ``builder`` directly — slower, never
    wrong — instead of failing the run.
    """
    try:
        fault_point("cache:trace")
    except FaultInjectionError as exc:
        logger.warning("trace cache unavailable (%s); building uncached", exc)
        return builder()
    return cache.get(key, builder)


# --------------------------------------------------------------------------- #
# Replay backend selection
# --------------------------------------------------------------------------- #
#: Supported trace-replay backends: the vectorized engine
#: (:class:`repro.memory.replay.ReplayEngine`, the default) and the legacy
#: per-access :class:`repro.memory.rowcache.RowCache` loop.  The two are
#: bit-identical (pinned by the golden equivalence tests); the legacy backend
#: exists as the reference implementation and as the baseline the
#: ``repro bench`` harness measures speedups against.
REPLAY_BACKENDS = ("vectorized", "legacy")

#: The legacy backend restores the dominant pre-vectorization paths, not
#: just the cache replay: loop-based trace generation and BFS reordering,
#: per-row ``row_read_lines`` materialisation, and no cross-run trace
#: caching.  (Two minor helpers — ``CSRGraph.reorder`` and BEICSR's
#: ``_split_row_nnz`` — stay vectorized under either backend, so the
#: ``repro bench`` baseline is slightly *faster* than the true pre-PR
#: engine; recorded speedups are conservative.)  The golden tests use the
#: same switch as a whole-pipeline equivalence check.
_replay_backend = "vectorized"


def set_replay_backend(name: str) -> str:
    """Select the aggregation-trace replay backend; returns the previous one."""
    global _replay_backend
    if name not in REPLAY_BACKENDS:
        raise SimulationError(
            f"unknown replay backend {name!r}; choose from {REPLAY_BACKENDS}"
        )
    previous = _replay_backend
    _replay_backend = name
    return previous


def get_replay_backend() -> str:
    """Name of the active trace-replay backend."""
    return _replay_backend  # repro: identity-exempt[global:_replay_backend] backend selection is identity-neutral: both backends are pinned bit-identical by the golden digests


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LayerWorkload:
    """One GCN layer as seen by the accelerator.

    Attributes:
        layer_index: Zero-based layer index.
        width_in: Width of the input features ``X_l``.
        width_out: Width of the output features ``X_{l+1}``.
        input_sparsity: Sparsity of ``X_l``.
        output_sparsity: Sparsity of ``X_{l+1}``.
        is_first_layer: Whether ``X_l`` is the dataset's given input features.
        edge_fraction: Fraction of edges processed (GraphSAGE sampling).
        weighted_aggregation: Whether edge weights are streamed with the
            topology (GCN yes, GINConv no).
    """

    layer_index: int
    width_in: int
    width_out: int
    input_sparsity: float
    output_sparsity: float
    is_first_layer: bool = False
    edge_fraction: float = 1.0
    weighted_aggregation: bool = True


#: Aggregation variants supported by :func:`build_workloads`.
GCN_VARIANTS = ("gcn", "gin", "sage")

#: Edge fraction retained by GraphSAGE's neighbour sampling (Fig. 16b).
SAGE_EDGE_FRACTION = 0.6


def build_workloads(dataset: Dataset, variant: str = "gcn") -> List[LayerWorkload]:
    """Build the per-layer workloads of a deep residual GCN on ``dataset``.

    Args:
        dataset: Dataset (provides widths, layer count, sparsity profile).
        variant: ``"gcn"``, ``"gin"``, or ``"sage"`` (paper Fig. 16).
    """
    variant = variant.lower()
    if variant not in GCN_VARIANTS:
        raise SimulationError(f"unknown GCN variant {variant!r}; choose from {GCN_VARIANTS}")
    edge_fraction = SAGE_EDGE_FRACTION if variant == "sage" else 1.0
    weighted = variant == "gcn"

    profile = dataset.layer_sparsities()
    hidden = dataset.hidden_width
    workloads: List[LayerWorkload] = []
    for index in range(dataset.num_layers):
        if index == 0:
            width_in = dataset.input_feature_width
            input_sparsity = dataset.input_sparsity
        else:
            width_in = hidden
            input_sparsity = profile[index - 1]
        workloads.append(
            LayerWorkload(
                layer_index=index,
                width_in=width_in,
                width_out=hidden,
                input_sparsity=float(input_sparsity),
                output_sparsity=float(profile[index]),
                is_first_layer=index == 0,
                edge_fraction=edge_fraction,
                weighted_aggregation=weighted,
            )
        )
    return workloads


@dataclass
class PhaseResult:
    """Cycle/traffic/compute accounting of one phase of one layer."""

    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    macs: float = 0.0
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    cache_accesses: float = 0.0
    cache_hit_rate: float = 0.0


# --------------------------------------------------------------------------- #
# Stage 1: context construction
# --------------------------------------------------------------------------- #
@dataclass
class RunContext:
    """Objects built once per (design, dataset, config) run.

    Stage 1 (:func:`build_context`) fills everything except the schedule;
    stage 2 (:func:`schedule`) fills ``tiling``/``trace``/``pinned_vertices``.
    """

    design: DesignPoint
    feature_format: FeatureFormat
    dataset: Dataset
    graph: CSRGraph
    config: SystemConfig
    cache_lines: int
    simd: SIMDAggregationEngine
    systolic: SystolicArray
    dram: DRAMModel
    energy_table: EnergyTable
    #: Cross-run memo (owned by the Session) for traces/engines/derived graphs.
    trace_cache: Optional[TraceCache] = None
    #: Source of the per-layer/row/slice sparsity tables; the synthetic
    #: provider (the historical behaviour, byte for byte) when ``None``.
    sparsity: Optional[SparsityProvider] = None
    #: Filled by :func:`schedule`.
    tiling: Optional[TilingPlan] = None
    trace: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    pinned_vertices: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: Key prefix identifying the trace within the cache (None = uncached).
    trace_token: Optional[Tuple] = None
    #: Sweep-provided cache capacities (in bytes) this run's trace will also
    #: be evaluated at.  The replay stage answers the whole vector through
    #: :meth:`ReplayEngine.replay_spectrum`, seeding the engine's result memo
    #: so the sibling runs of a capacity sweep replay nothing at all.
    capacity_spectrum: Tuple[int, ...] = ()
    #: Cache capacity (in lines) the static schedule is planned for.  ``None``
    #: falls back to ``cache_lines``; it differs only when the config carries a
    #: ``schedule_capacity_bytes`` (a capacity-sweep override resizing the
    #: physical cache under the design's nominal schedule).
    schedule_cache_lines: Optional[int] = None
    #: Lazily-built replay engines (built on first vectorized replay, so the
    #: legacy backend never pays for a structure it will not use).
    replay_engine: Optional[ReplayEngine] = None
    replay_engine_full: Optional[ReplayEngine] = None

    def engine(self) -> ReplayEngine:
        """Replay engine with the pinned partition folded in."""
        if self.replay_engine is None:
            builder = lambda: ReplayEngine(self.trace, pinned=self.pinned_vertices)
            if self.trace_cache is not None and self.trace_token is not None:
                pinned_token = (
                    array_token(self.pinned_vertices) if self.pinned_vertices.size else None
                )
                key = ("engine",) + self.trace_token + (pinned_token,)
                self.replay_engine = _trace_cache_get(self.trace_cache, key, builder)
            else:
                self.replay_engine = builder()
        return self.replay_engine

    def engine_full(self) -> ReplayEngine:
        """Replay engine over the full trace (first-layer dense replay)."""
        if not self.pinned_vertices.size:
            return self.engine()
        if self.replay_engine_full is None:
            builder = lambda: ReplayEngine(self.trace)
            if self.trace_cache is not None and self.trace_token is not None:
                key = ("engine",) + self.trace_token + (None,)
                self.replay_engine_full = _trace_cache_get(
                    self.trace_cache, key, builder
                )
            else:
                self.replay_engine_full = builder()
        return self.replay_engine_full


def _reordered_for_locality(graph: CSRGraph) -> CSRGraph:
    # Islandization reorders vertices so islands occupy consecutive ids.  On
    # graphs that already have a locality-friendly ordering the pass detects
    # no profitable islands and leaves the order alone, so the reordering
    # never degrades locality.
    from repro.graphs.stats import clustering_score

    reorder = (
        locality_reordering
        if _replay_backend == "vectorized"  # repro: identity-exempt[global:_replay_backend] backend variants emit identical permutations (golden-pinned)
        else locality_reordering_reference
    )
    permutation = reorder(graph)
    reordered = graph.reorder(permutation)
    if clustering_score(reordered) >= clustering_score(graph):
        return reordered
    return graph


def effective_cache_lines(
    dataset: Dataset, config: SystemConfig, capacity_bytes: Optional[int] = None
) -> int:
    """Cache capacity (in lines) used for ``dataset``.

    Datasets are simulated at a reduced scale; the cache is scaled by the
    same factor so the working-set-to-cache ratio of the paper's
    configuration is preserved, with a floor of a few dozen feature rows so
    tiny scaled graphs still exercise the cache at all.

    ``capacity_bytes`` substitutes a different raw capacity for the config's
    own (same line size, same scaling): the spectrum replay uses it to map
    each swept capacity to the exact line count a config built with that
    capacity override would produce.
    """
    if capacity_bytes is None:
        num_lines = config.cache.num_lines
    else:
        num_lines = int(capacity_bytes) // config.cache.line_bytes  # repro: identity-exempt[CacheConfig.line_bytes] structural constant; never overridable
    scaled = int(num_lines * dataset.cache_scale())
    dense_row_lines = bytes_to_lines(dataset.hidden_width * ELEMENT_BYTES)
    floor = 32 * dense_row_lines
    return int(min(num_lines, max(floor, scaled)))


def build_context(
    design: DesignPoint,
    fmt: FeatureFormat,
    dataset: Dataset,
    config: SystemConfig,
    trace_cache: Optional[TraceCache] = None,
    sparsity: Optional[SparsityProvider] = None,
    capacity_spectrum: Sequence[int] = (),
) -> RunContext:
    """Stage 1: resolve the graph, the scaled cache, and the engine models."""
    # The legacy backend ignores the trace cache: the pre-vectorization
    # engine rebuilt every trace per run, and the benchmark measures that.
    if _replay_backend != "vectorized":  # repro: identity-exempt[global:_replay_backend] only disables trace caching for the legacy benchmark; results are backend-invariant
        trace_cache = None
    graph = dataset.graph
    if design.reorders_graph:
        if trace_cache is not None:
            graph = _trace_cache_get(
                trace_cache,
                ("reordered", graph.fingerprint()),
                lambda: _reordered_for_locality(graph),
            )
        else:
            graph = _reordered_for_locality(graph)
    if design.column_product:
        # Column-product execution walks the transposed adjacency: for every
        # destination column it gathers the corresponding input feature row,
        # so the random feature accesses follow A^T.
        if trace_cache is not None:
            base = graph
            graph = _trace_cache_get(
                trace_cache, ("transposed", base.fingerprint()), base.transpose
            )
        else:
            graph = graph.transpose()

    return RunContext(
        design=design,
        feature_format=fmt,
        dataset=dataset,
        graph=graph,
        config=config,
        cache_lines=effective_cache_lines(dataset, config),
        schedule_cache_lines=effective_cache_lines(
            dataset, config, config.cache.schedule_capacity
        ),
        simd=SIMDAggregationEngine(config.engines),
        systolic=SystolicArray(config.engines),
        dram=DRAMModel(config.dram),
        energy_table=EnergyTable(),
        trace_cache=trace_cache,
        sparsity=sparsity,
        capacity_spectrum=tuple(int(capacity) for capacity in capacity_spectrum),
    )


# --------------------------------------------------------------------------- #
# Stage 2: schedule (tiling plan, access trace, pinned partition)
# --------------------------------------------------------------------------- #
def _format_slices_cleanly(fmt: FeatureFormat, width: int, passes: int) -> bool:
    """Whether ``fmt`` can serve a ``passes``-way width split exactly.

    Dense rows split at cacheline granularity.  Sliced BEICSR splits at
    unit-slice (``C``) granularity, so it needs at least ``passes`` unit
    slices across the width.  Whole-row-bitmap BEICSR, CSR, and COO cannot
    locate a width slice without reading the preceding data, so they never
    split cleanly.
    """
    if passes <= 1:
        return True
    if fmt.name in ("dense", "blocked_ellpack"):
        return width // passes >= 1
    slice_size = getattr(fmt, "slice_size", None)
    if slice_size is None:
        return False
    return (width + slice_size - 1) // slice_size >= passes


def _pass_access_overhead(
    fmt: FeatureFormat, width: int, passes: int
) -> Tuple[int, bool]:
    """Per-access penalty of reading one width slice in ``fmt``.

    Returns ``(extra_lines, aligned)``: formats that slice cleanly pay
    nothing; formats that cannot (whole-row bitmaps, CSR, COO) must read
    their embedded index plus a partially unaligned span to extract the
    slice, costing roughly one extra cacheline per access and losing the
    alignment guarantee (paper Section V-B).
    """
    if passes <= 1 or _format_slices_cleanly(fmt, width, passes):
        return 0, fmt.aligned
    return 1, False


def _typical_row_lines(fmt: FeatureFormat, width: int, nnz: int) -> float:
    """Cachelines per feature row for the given non-zero count."""
    layout = fmt.build_layout(np.asarray([nnz], dtype=np.int64), width)
    return float(layout.row_read_lines(0).size)


def _select_pinned_vertices(
    design: DesignPoint, graph: CSRGraph, cache_lines: int, row_lines: float
) -> np.ndarray:
    """Highest in-degree vertices whose rows fit the pinned cache share."""
    in_degrees = np.zeros(graph.num_vertices, dtype=np.int64)
    np.add.at(in_degrees, graph.indices, 1)
    budget_rows = int(cache_lines * design.pinned_cache_fraction / max(row_lines, 1.0))
    if budget_rows <= 0:
        return np.zeros(0, dtype=np.int64)
    return np.argsort(-in_degrees, kind="stable")[:budget_rows].astype(np.int64)


def schedule(context: RunContext) -> RunContext:
    """Stage 2: plan the tiling, build the access trace, pick pinned rows."""
    design = context.design
    fmt = context.feature_format
    graph = context.graph
    config = context.config
    dataset = context.dataset
    # The static schedule (tiling, psum split, pinned rows) is planned for the
    # schedule capacity; replay evaluates the physical one.  The two differ
    # only when a sweep resizes the cache under a fixed design.
    cache_lines = context.schedule_cache_lines or context.cache_lines

    hidden_width = dataset.hidden_width
    if design.assumed_tiling_sparsity is not None:
        assumed_sparsity = design.assumed_tiling_sparsity
    elif design.tile_with_average_sparsity:
        assumed_sparsity = dataset.intermediate_sparsity
    else:
        assumed_sparsity = 0.0
    assumed_nnz = int(round(hidden_width * (1.0 - assumed_sparsity)))
    assumed_row_lines = _typical_row_lines(fmt, hidden_width, assumed_nnz)
    output_row_lines = float(bytes_to_lines(hidden_width * ELEMENT_BYTES))
    psum_buffer_lines = max(
        int(cache_lines * design.psum_buffer_fraction), int(output_row_lines)
    )

    # GCNAX-style dataflows always process the feature matrix in width slices
    # (two logical slices in the modelled configuration, matching the
    # accumulation-buffer split); designs without source tiling (HyGCN)
    # sweep the full width in one pass.
    min_passes = design.dataflow_feature_passes if design.uses_source_tiling else 1
    tiling = plan_tiling(
        num_vertices=graph.num_vertices,
        average_degree=graph.average_degree,
        cache_lines=cache_lines,
        psum_buffer_lines=psum_buffer_lines,
        assumed_row_lines=assumed_row_lines,
        output_row_lines=output_row_lines,
        topology_bytes_per_edge=8.0,
        supports_feature_slicing=_format_slices_cleanly(fmt, hidden_width, min_passes),
        use_destination_tiling=design.uses_destination_tiling,
        use_source_tiling=design.uses_source_tiling,
        fill_fraction=design.tiling_fill_fraction,
        min_feature_passes=min_passes,
        max_feature_passes=max(min_passes, design.dataflow_feature_passes),
    )

    trace_token: Optional[Tuple] = None
    if design.column_product:
        # Column-product designs read every feature row exactly once per pass
        # and pay partial-sum traffic instead; no feature-read reuse trace is
        # needed.
        trace = np.zeros(0, dtype=np.int64)
    else:
        # The trace depends only on the topology and the schedule knobs,
        # never on the accelerator's timing parameters — key it on exactly
        # those so a sweep over timing configurations reuses it.
        trace_token = (
            graph.fingerprint(),
            tiling,
            config.engines.num_aggregation_engines,
            design.engine_partition,
            config.sac_strip_height,
        )
        build_trace = (
            aggregation_access_trace
            if _replay_backend == "vectorized"  # repro: identity-exempt[global:_replay_backend] backend variants emit identical traces (golden-pinned)
            else aggregation_access_trace_reference
        )
        def build() -> np.ndarray:
            # Timed inside the builder so trace-cache hits cost no span.
            with span("trace_generation"):
                return build_trace(
                    graph,
                    tiling,
                    num_engines=config.engines.num_aggregation_engines,
                    engine_partition=design.engine_partition,
                    strip_height=config.sac_strip_height,
                )

        if context.trace_cache is not None:
            trace = _trace_cache_get(
                context.trace_cache, ("trace",) + trace_token, build
            )
        else:
            trace = build()

    pinned = np.zeros(0, dtype=np.int64)
    if design.pins_high_degree_vertices:
        pinned = _select_pinned_vertices(design, graph, cache_lines, assumed_row_lines)

    context.tiling = tiling
    context.trace = trace
    context.trace_token = trace_token
    context.pinned_vertices = pinned
    return context


# --------------------------------------------------------------------------- #
# Stage 3: replay (layer sampling, row tables, cache replays)
# --------------------------------------------------------------------------- #
@dataclass
class AggregateReplay:
    """Replay counters of one intermediate layer, summed over feature passes."""

    accesses: int = 0
    hits: int = 0
    hit_lines: int = 0
    miss_lines: int = 0


@dataclass
class ReplayedLayer:
    """One sampled intermediate layer, ready for the timing stage."""

    workload: LayerWorkload
    weight: float
    row_nnz: np.ndarray
    row_lines: np.ndarray
    pass_sizes: List[np.ndarray]
    #: ``None`` for column-product designs (no feature-read reuse trace).
    replay: Optional[AggregateReplay] = None


@dataclass
class ReplayOutcome:
    """Stage-3 output: every cache replay of the run, plus the row tables."""

    first_workload: LayerWorkload
    layers: List[ReplayedLayer]
    #: First-layer dense replay; ``None`` for column-product designs (the
    #: dense intermediate is streamed once and never re-read).
    first_stats: Optional[RowCacheStats] = None


def _sample_layers(
    workloads: Sequence[LayerWorkload], max_sampled: int
) -> List[Tuple[LayerWorkload, float]]:
    """Pick representative intermediate layers and their weights."""
    count = len(workloads)
    if count <= max_sampled:
        return [(workload, 1.0) for workload in workloads]
    positions = np.linspace(0, count - 1, max_sampled)
    indices = sorted(set(int(round(position)) for position in positions))
    weight = count / len(indices)
    return [(workloads[index], weight) for index in indices]


#: Provider used when a context carries none: the historical synthetic draw.
_SYNTHETIC_PROVIDER = SyntheticSparsityProvider()


def _layer_row_tables(
    fmt: FeatureFormat, workload: LayerWorkload, context: RunContext, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row non-zero counts for the layer's input features, and the
    resulting per-row transfer sizes (in lines) under ``fmt``."""
    num_vertices = context.graph.num_vertices
    provider = context.sparsity or _SYNTHETIC_PROVIDER
    row_nnz, slice_nnz = provider.layer_tables(
        dataset=context.dataset,
        layer_index=workload.layer_index,
        num_rows=num_vertices,
        width=workload.width_in,
        sparsity=workload.input_sparsity,
        slice_size=getattr(fmt, "slice_size", None),
        seed=seed,
        # Reordering/transposing designs relabel vertex ids; tables must be
        # indexed by the graph the trace walks, not the dataset's original.
        graph=context.graph,
    )
    layout = fmt.build_layout(row_nnz, workload.width_in, slice_nnz=slice_nnz)
    if get_replay_backend() == "vectorized":
        row_lines = layout.row_read_line_counts()
    else:
        row_lines = np.fromiter(
            (layout.row_read_lines(row).size for row in range(num_vertices)),
            dtype=np.int64,
            count=num_vertices,
        )
    return row_nnz, row_lines


def _pass_size_tables(
    fmt: FeatureFormat,
    workload: LayerWorkload,
    context: RunContext,
    row_lines: np.ndarray,
) -> List[np.ndarray]:
    """Lines transferred per access in each feature pass.

    The row's lines are spread across the passes as evenly as integers allow
    (a sliced format reads a different subset of unit slices per pass), so
    the per-pass sizes sum back to the full row.  Formats that cannot be
    read in width slices pay an extra (unaligned) line per access.
    """
    passes = context.tiling.feature_passes
    extra_lines, _ = _pass_access_overhead(fmt, workload.width_in, passes)
    base_lines = row_lines // passes
    remainder = row_lines % passes
    return [
        np.maximum(1, base_lines + (pass_index < remainder).astype(np.int64))
        + extra_lines
        for pass_index in range(passes)
    ]


def _layer_replay(
    context: RunContext,
    pass_sizes: List[np.ndarray],
    batched: Optional[List[RowCacheStats]],
) -> AggregateReplay:
    """Replay one intermediate layer's feature passes (all backends)."""
    aggregate = AggregateReplay()

    # The pinned rows live in a dedicated partition: their accesses always
    # hit and the capacity they use is removed from the shared pool.
    shared_capacity = context.cache_lines
    if context.pinned_vertices.size:
        pinned_lines = int(pass_sizes[0][context.pinned_vertices].sum())
        shared_capacity = max(1, context.cache_lines - pinned_lines)

    if get_replay_backend() == "vectorized":
        stats_list = batched
        if stats_list is None:
            # Pinned designs replay per layer (their shared capacity depends
            # on the pinned rows' sizes in this very table).  The pinned set
            # is planned at the schedule capacity, so within a capacity sweep
            # the subtraction maps the spectrum point-for-point and the
            # sibling runs still share one evaluation per weight group.
            spectrum = _spectrum_lines(context)
            if spectrum and context.trace.size:
                offset = shared_capacity - context.cache_lines
                shared_spectrum = [max(1, lines + offset) for lines in spectrum]
                stats_list = [
                    per_table[0]
                    for per_table in context.engine().replay_spectrum_many(
                        pass_sizes, shared_spectrum
                    )
                ]
            else:
                stats_list = context.engine().replay_many(pass_sizes, shared_capacity)
        for stats in stats_list:
            aggregate.accesses += stats.accesses
            aggregate.hits += stats.hits
            aggregate.hit_lines += stats.hit_lines
            aggregate.miss_lines += stats.miss_lines
    else:
        cache = RowCache(shared_capacity)
        pinned_set = set(context.pinned_vertices.tolist())
        trace = context.trace
        for pass_index in range(len(pass_sizes)):
            per_pass_lines = pass_sizes[pass_index]
            cache.flush()
            if pinned_set:
                sizes = per_pass_lines.tolist()
                for row in trace.tolist():
                    size = sizes[row]
                    aggregate.accesses += 1
                    if row in pinned_set:
                        aggregate.hits += 1
                        aggregate.hit_lines += size
                    elif cache.access(row, size):
                        aggregate.hits += 1
                        aggregate.hit_lines += size
                    else:
                        aggregate.miss_lines += size
            else:
                cache.access_trace(trace, per_pass_lines)
                aggregate.accesses += cache.stats.accesses
                aggregate.hits += cache.stats.hits
                aggregate.hit_lines += cache.stats.hit_lines
                aggregate.miss_lines += cache.stats.miss_lines
                cache.reset_stats()
    return aggregate


def _first_layer_replay(
    context: RunContext,
    first_workload: LayerWorkload,
    batched: Optional[RowCacheStats],
) -> RowCacheStats:
    """Replay the first layer's dense intermediate (all backends).

    The dense intermediate is re-read per edge with the same hit rate a
    dense-format run of this schedule achieves; approximate it with a single
    cache replay using dense rows.  The full (unpinned) trace is replayed at
    full capacity here, matching the reference path.
    """
    if batched is not None:
        return batched
    num_vertices = context.graph.num_vertices
    dense_row_lines = bytes_to_lines(first_workload.width_out * ELEMENT_BYTES)
    sizes = np.full(num_vertices, dense_row_lines, dtype=np.int64)
    if get_replay_backend() == "vectorized":
        spectrum = _spectrum_lines(context)
        if spectrum and context.trace.size:
            return context.engine_full().replay_spectrum(sizes, spectrum)[0]
        return context.engine_full().replay(sizes, context.cache_lines)
    cache = RowCache(context.cache_lines)
    return cache.access_trace(context.trace, sizes)


def _spectrum_lines(context: RunContext) -> List[int]:
    """Capacity vector (in lines) for the batched spectrum replay.

    Maps each swept capacity (bytes) through the same dataset scaling the
    real configs use, leads with this run's own capacity, and drops
    duplicates.  Empty — meaning "plain single-capacity replay" — when no
    spectrum was provided or every entry collapses onto the run's capacity.
    """
    if not context.capacity_spectrum:
        return []
    lines = [context.cache_lines]
    for capacity_bytes in context.capacity_spectrum:
        lines.append(
            effective_cache_lines(context.dataset, context.config, capacity_bytes)
        )
    deduped = list(dict.fromkeys(lines))
    return deduped if len(deduped) > 1 else []


def replay(
    context: RunContext,
    workloads: Sequence[LayerWorkload],
    seed: int,
    max_sampled_layers: int,
) -> ReplayOutcome:
    """Stage 3: evaluate every cache replay of the run.

    The sampled intermediate layers (one size table per feature pass) and the
    first layer's dense replay all share the trace structure and — without a
    pinned partition — the capacity, so one batched ``replay_many`` call
    amortises the per-evaluation overhead across the whole run.  Designs that
    need per-layer capacities (pinned partitions) and the legacy backend
    replay each layer individually instead; column-product designs replay
    nothing (their feature reads stream once per pass).
    """
    fmt = context.feature_format
    first, *intermediate = workloads
    sampled = _sample_layers(intermediate, max_sampled_layers) if intermediate else []

    # The prepared tables depend on the schedule (feature passes) and the
    # sparsity draw but not on any capacity or timing knob, so the sibling
    # runs of a knob sweep share them through the trace cache — which also
    # keeps the arrays *identical objects* across runs, letting the replay
    # engine's id()-keyed token cache skip re-digesting them.
    provider = context.sparsity or _SYNTHETIC_PROVIDER
    prepared: List[ReplayedLayer] = []
    for workload, weight in sampled:
        def build(workload: LayerWorkload = workload) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
            row_nnz, row_lines = _layer_row_tables(fmt, workload, context, seed)
            return row_nnz, row_lines, _pass_size_tables(fmt, workload, context, row_lines)

        if context.trace_cache is not None and context.tiling is not None:
            key = (
                "row_tables",
                provider,
                fmt.cache_token(),
                context.graph.fingerprint(),
                workload.layer_index,
                workload.width_in,
                float(workload.input_sparsity),
                seed,
                context.tiling.feature_passes,
            )
            row_nnz, row_lines, pass_sizes = _trace_cache_get(
                context.trace_cache, key, build
            )
        else:
            row_nnz, row_lines, pass_sizes = build()
        prepared.append(
            ReplayedLayer(
                workload=workload,
                weight=weight,
                row_nnz=row_nnz,
                row_lines=row_lines,
                pass_sizes=pass_sizes,
            )
        )

    design = context.design
    if design.column_product:
        return ReplayOutcome(first_workload=first, layers=prepared, first_stats=None)

    # Precompute every layer's tables, then evaluate every cache replay of
    # the run (first layer + all layers x passes) in one batched engine call
    # when the capacities agree: the replay structure is shared, so stacking
    # the size tables amortises the per-evaluation array overhead.
    batched_first: Optional[RowCacheStats] = None
    batched_layers: List[Optional[List[RowCacheStats]]] = [None] * len(prepared)
    if (
        get_replay_backend() == "vectorized"
        and context.trace.size != 0
        and not context.pinned_vertices.size
    ):
        tables: List[np.ndarray] = []
        for layer in prepared:
            tables.extend(layer.pass_sizes)
        dense_row_lines = bytes_to_lines(first.width_out * ELEMENT_BYTES)
        tables.append(
            np.full(context.graph.num_vertices, dense_row_lines, dtype=np.int64)
        )
        spectrum = _spectrum_lines(context)
        if spectrum:
            # This run's capacity leads the vector, so element 0 of each
            # spectrum is the stats replay_many would have returned; the
            # other capacities land in the engine memo for the sibling runs
            # of the sweep (same trace, different cache knob).
            stats = [
                per_table[0]
                for per_table in context.engine().replay_spectrum_many(
                    tables, spectrum
                )
            ]
        else:
            stats = context.engine().replay_many(tables, context.cache_lines)
        cursor = 0
        for index, layer in enumerate(prepared):
            batched_layers[index] = stats[cursor : cursor + len(layer.pass_sizes)]
            cursor += len(layer.pass_sizes)
        batched_first = stats[-1]

    for layer, batched in zip(prepared, batched_layers):
        layer.replay = _layer_replay(context, layer.pass_sizes, batched)
    # An edgeless graph yields an empty trace: the intermediate layers above
    # replay it (to zero counters, as the reference path did), but the first
    # layer's dense re-read falls back to the analytic streaming estimate.
    first_stats = (
        None
        if context.trace.size == 0
        else _first_layer_replay(context, first, batched_first)
    )
    return ReplayOutcome(first_workload=first, layers=prepared, first_stats=first_stats)


# --------------------------------------------------------------------------- #
# Stage 4: timing (cycles and traffic per layer)
# --------------------------------------------------------------------------- #
@dataclass
class TimedLayer:
    """Stage-4 output: one layer's cycles/traffic, pending energy pricing."""

    layer_index: int
    weight: float
    cycles: float
    aggregation_cycles: float
    combination_cycles: float
    aggregation_compute_cycles: float
    combination_compute_cycles: float
    memory_cycles: float
    macs: float
    traffic: TrafficBreakdown
    cache_accesses: float
    cache_hit_rate: float


def _topology_bytes(graph: CSRGraph, workload: LayerWorkload) -> float:
    """Bytes of topology streamed for one full sweep of the edges."""
    per_edge = 4 + (4 if workload.weighted_aggregation else 0)
    return (
        graph.num_edges * workload.edge_fraction * per_edge
        + (graph.num_vertices + 1) * 4
    )


def _output_write_bytes(
    fmt: FeatureFormat, num_vertices: int, width: int, sparsity: float
) -> float:
    """Bytes written for the layer's output features in ``fmt``."""
    nnz = int(round(width * (1.0 - sparsity)))
    layout = fmt.build_layout(np.asarray([max(nnz, 0)], dtype=np.int64), width)
    return float(num_vertices * layout.row_write_bytes(0))


def _aggregation_phase(context: RunContext, layer: ReplayedLayer) -> PhaseResult:
    design = context.design
    fmt = context.feature_format
    config = context.config
    graph = context.graph
    workload = layer.workload
    passes = context.tiling.feature_passes
    edge_fraction = workload.edge_fraction
    _, aligned_reads = _pass_access_overhead(fmt, workload.width_in, passes)

    if design.column_product:
        # Column-product execution streams every input feature row exactly
        # once (per feature pass it streams 1/passes of each row), so the
        # read volume is one full pass over the compressed matrix and the
        # cache plays no role in the feature reads.
        total_lines = int(layer.row_lines.sum())
        feature_read_bytes = float(total_lines * CACHELINE_BYTES)
        cache_accesses = float(total_lines)
        hit_rate = 0.0
    else:
        replayed = layer.replay
        assert replayed is not None  # stage 3 replays every non-column design
        feature_read_bytes = replayed.miss_lines * CACHELINE_BYTES * edge_fraction
        cache_accesses = (replayed.hit_lines + replayed.miss_lines) * edge_fraction
        hit_rate = replayed.hits / replayed.accesses if replayed.accesses else 0.0

    num_edges = graph.num_edges * edge_fraction
    topology_bytes = _topology_bytes(graph, workload) * passes

    density = 1.0
    if design.sparse_aggregation_compute:
        density = max(1e-3, 1.0 - workload.input_sparsity)
    cost = context.simd.aggregation_cost(
        num_edges=num_edges,
        feature_width=workload.width_in,
        density=density,
    )
    compute_cycles = cost.cycles * design.aggregation_compute_scale
    macs = cost.mac_operations * design.aggregation_compute_scale

    psum_bytes = 0.0
    if design.psum_traffic_factor > 0:
        psum_bytes = (
            design.psum_traffic_factor
            * graph.num_vertices
            * workload.width_in
            * ELEMENT_BYTES
        )

    traffic = TrafficBreakdown(
        topology_bytes=topology_bytes,
        feature_read_bytes=feature_read_bytes,
        psum_bytes=psum_bytes,
    )
    pattern = TrafficPattern(
        average_burst_lines=float(np.mean(layer.pass_sizes[0])),
        aligned=aligned_reads,
        sequential_fraction=topology_bytes / max(traffic.total_bytes, 1.0),
    )
    memory_cycles = context.dram.transfer_cycles(
        traffic.total_bytes, config.engines.frequency_ghz, pattern
    )
    return PhaseResult(
        cycles=max(compute_cycles, memory_cycles),
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        macs=macs,
        traffic=traffic,
        cache_accesses=cache_accesses,
        cache_hit_rate=hit_rate,
    )


def _combination_phase(context: RunContext, layer: ReplayedLayer) -> PhaseResult:
    design = context.design
    fmt = context.feature_format
    config = context.config
    graph = context.graph
    workload = layer.workload
    num_vertices = graph.num_vertices

    density = 1.0
    if design.combination_zero_skipping:
        density = max(1e-3, 1.0 - workload.input_sparsity)
    gemm = context.systolic.gemm_cost(
        m=num_vertices,
        k=workload.width_in,
        n=workload.width_out,
        density=density,
    )

    weight_bytes = context.systolic.weight_bytes(workload.width_in, workload.width_out)
    output_write_bytes = _output_write_bytes(
        fmt, num_vertices, workload.width_out, workload.output_sparsity
    )
    traffic = TrafficBreakdown(
        weight_bytes=weight_bytes,
        feature_write_bytes=output_write_bytes,
    )
    pattern = TrafficPattern(
        average_burst_lines=DRAMModel.SATURATION_BURST_LINES,
        aligned=True,
        sequential_fraction=1.0,
    )
    memory_cycles = context.dram.transfer_cycles(
        traffic.total_bytes, config.engines.frequency_ghz, pattern
    )
    return PhaseResult(
        cycles=max(gemm.cycles, memory_cycles),
        compute_cycles=gemm.cycles,
        memory_cycles=memory_cycles,
        macs=gemm.mac_operations,
        traffic=traffic,
        cache_accesses=0.0,
        cache_hit_rate=0.0,
    )


def _time_first_layer(context: RunContext, replayed: ReplayOutcome) -> TimedLayer:
    """First layer: combination of the given input features, then
    aggregation of the (dense) result.

    All modelled designs process the first layer combination-first, the
    standard optimisation when the width shrinks (Section III-A).  Input
    features are streamed once; ultra-sparse inputs (one-hot encodings) are
    stored in CSR, dense embeddings are stored densely.  Designs with
    sparsity-aware compute (SGCN's aggregation-engine combination, AWB-GCN's
    zero skipping) only compute on the non-zero inputs.
    """
    design = context.design
    fmt = context.feature_format
    config = context.config
    graph = context.graph
    workload = replayed.first_workload
    num_vertices = graph.num_vertices
    width_in = workload.width_in
    width_out = workload.width_out
    input_density = max(1e-4, 1.0 - workload.input_sparsity)

    # --- combination of X_0 @ W_0 --------------------------------------- #
    if workload.input_sparsity >= 0.5:
        input_read_bytes = num_vertices * width_in * input_density * (
            ELEMENT_BYTES + 4
        ) + (num_vertices + 1) * 4
    else:
        input_read_bytes = num_vertices * width_in * ELEMENT_BYTES

    if design.sparse_first_layer or design.combination_zero_skipping:
        # SGCN runs the first combination as a sparse gather-accumulate on
        # its aggregation engines; AWB-GCN's zero skipping achieves the same
        # compute reduction on ultra-sparse one-hot inputs.
        gemm_density = input_density
    else:
        # Other designs skip only the input feature columns that are zero
        # for every vertex in the current tile (coarse column skipping),
        # which captures part of the one-hot sparsity but leaves the
        # systolic array underutilised for scattered non-zeros; model the
        # residual work as the geometric mean of dense and fully sparse.
        gemm_density = float(np.sqrt(input_density))
    gemm = context.systolic.gemm_cost(
        m=num_vertices, k=width_in, n=width_out, density=gemm_density
    )
    weight_bytes = context.systolic.weight_bytes(width_in, width_out)

    # --- aggregation of the (dense) combination result ------------------ #
    num_edges = graph.num_edges * workload.edge_fraction
    agg_cost = context.simd.aggregation_cost(
        num_edges=num_edges, feature_width=width_out, density=1.0
    )
    dense_row_lines = bytes_to_lines(width_out * ELEMENT_BYTES)
    if replayed.first_stats is None:
        # Column-product first layer: the dense intermediate is streamed
        # once and partial sums absorb the reuse cost.
        agg_read_bytes = float(num_vertices * dense_row_lines * CACHELINE_BYTES)
        cache_accesses = float(num_vertices * dense_row_lines)
        first_layer_hit_rate = 0.0
    else:
        stats = replayed.first_stats
        agg_read_bytes = stats.miss_lines * CACHELINE_BYTES * workload.edge_fraction
        cache_accesses = float(stats.hit_lines + stats.miss_lines)
        first_layer_hit_rate = stats.hit_rate
    topology_bytes = _topology_bytes(graph, workload)

    output_write_bytes = _output_write_bytes(
        fmt, num_vertices, width_out, workload.output_sparsity
    )

    traffic = TrafficBreakdown(
        topology_bytes=topology_bytes,
        feature_read_bytes=input_read_bytes + agg_read_bytes,
        feature_write_bytes=output_write_bytes,
        weight_bytes=weight_bytes,
    )
    pattern = TrafficPattern(
        average_burst_lines=4.0, aligned=True, sequential_fraction=0.5
    )
    memory_cycles = context.dram.transfer_cycles(
        traffic.total_bytes, config.engines.frequency_ghz, pattern
    )
    compute_cycles = gemm.cycles + agg_cost.cycles
    if config.pipeline_phases:
        cycles = max(compute_cycles, memory_cycles)
    else:
        cycles = compute_cycles + memory_cycles

    return TimedLayer(
        layer_index=0,
        weight=1.0,
        cycles=cycles,
        aggregation_cycles=max(agg_cost.cycles, memory_cycles / 2),
        combination_cycles=max(gemm.cycles, memory_cycles / 2),
        aggregation_compute_cycles=agg_cost.cycles,
        combination_compute_cycles=gemm.cycles,
        memory_cycles=memory_cycles,
        macs=gemm.mac_operations + agg_cost.mac_operations,
        traffic=traffic,
        cache_accesses=cache_accesses,
        cache_hit_rate=first_layer_hit_rate,
    )


def _time_intermediate_layer(context: RunContext, layer: ReplayedLayer) -> TimedLayer:
    aggregation = _aggregation_phase(context, layer)
    combination = _combination_phase(context, layer)
    config = context.config
    if config.pipeline_phases:
        cycles = max(aggregation.cycles, combination.cycles)
    else:
        cycles = aggregation.cycles + combination.cycles
    return TimedLayer(
        layer_index=layer.workload.layer_index,
        weight=layer.weight,
        cycles=cycles,
        aggregation_cycles=aggregation.cycles,
        combination_cycles=combination.cycles,
        aggregation_compute_cycles=aggregation.compute_cycles,
        combination_compute_cycles=combination.compute_cycles,
        memory_cycles=aggregation.memory_cycles + combination.memory_cycles,
        macs=aggregation.macs + combination.macs,
        traffic=aggregation.traffic + combination.traffic,
        cache_accesses=aggregation.cache_accesses + combination.cache_accesses,
        cache_hit_rate=aggregation.cache_hit_rate,
    )


def timing(context: RunContext, replayed: ReplayOutcome) -> List[TimedLayer]:
    """Stage 4: per-layer cycles and traffic from replay stats and models."""
    timed = [_time_first_layer(context, replayed)]
    for layer in replayed.layers:
        timed.append(_time_intermediate_layer(context, layer))
    return timed


# --------------------------------------------------------------------------- #
# Stage 5: energy (price counted events, assemble LayerResults)
# --------------------------------------------------------------------------- #
def energy(context: RunContext, timed: Sequence[TimedLayer]) -> List[LayerResult]:
    """Stage 5: energy pricing and :class:`LayerResult` assembly."""
    results: List[LayerResult] = []
    for layer in timed:
        breakdown = context.energy_table.breakdown(
            num_macs=layer.macs,
            cache_accesses=layer.cache_accesses,
            dram_bytes=layer.traffic.total_bytes,
        )
        result = LayerResult(
            layer_index=layer.layer_index,
            cycles=layer.cycles,
            aggregation_cycles=layer.aggregation_cycles,
            combination_cycles=layer.combination_cycles,
            aggregation_compute_cycles=layer.aggregation_compute_cycles,
            combination_compute_cycles=layer.combination_compute_cycles,
            memory_cycles=layer.memory_cycles,
            macs=layer.macs,
            traffic=layer.traffic,
            cache_accesses=layer.cache_accesses,
            cache_hit_rate=layer.cache_hit_rate,
            energy=breakdown,
        )
        result.weight = layer.weight
        results.append(result)
    return results


# --------------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------------- #
def resolve_sparsity_dataset(
    dataset: Dataset, sparsity: Optional[SparsityProvider]
) -> Dataset:
    """Apply a provider's measured layer profile to ``dataset``.

    The synthetic provider (and ``None``) keeps the dataset untouched, so
    default runs stay byte-identical; a measured provider returns a copy
    whose :meth:`~repro.graphs.datasets.Dataset.layer_sparsities` is the
    harvested profile, which every downstream consumer (workload
    construction, output-write accounting) then picks up.
    """
    if sparsity is None:
        return dataset
    profile = sparsity.layer_profile(dataset)
    if profile is None:
        return dataset
    return dataset.with_sparsity_profile(profile)


def simulate_design(
    design: DesignPoint,
    dataset: Dataset,
    config: Optional[SystemConfig] = None,
    variant: str = "gcn",
    max_sampled_layers: int = 6,
    seed: int = 0,
    trace_cache: Optional[TraceCache] = None,
    feature_format: Optional[FeatureFormat] = None,
    sparsity: Optional[SparsityProvider] = None,
    capacity_spectrum: Sequence[int] = (),
) -> SimulationResult:
    """Run the full phase pipeline for one design on one dataset.

    Args:
        design: The accelerator design point to execute.
        dataset: Dataset to run.
        config: System configuration (Table III defaults when omitted).
        variant: Aggregation variant (``"gcn"``, ``"gin"``, ``"sage"``).
        max_sampled_layers: Intermediate layers are representative-sampled
            down to at most this many trace-driven simulations; each sampled
            layer is weighted by the number of layers it stands for, so
            totals still cover the whole network.
        seed: Seed for the per-row non-zero draws.
        trace_cache: Optional cross-run memo for access traces, replay
            structures, and derived (reordered/transposed) graphs.  These
            depend only on the topology and the schedule — not on timing
            knobs — so a :class:`~repro.core.session.Session` passes its own
            cache here and a sweep builds each trace once.
        feature_format: Pre-built format instance (``design.format_instance()``
            when omitted; models pass their own so instances are shared).
        sparsity: Optional :class:`~repro.gcn.providers.SparsityProvider`
            replacing the synthetic per-layer profile and per-row draws with
            its own tables (e.g. measured from a trained
            :class:`~repro.gcn.model.DeepGCN`); ``None`` keeps the synthetic
            behaviour byte for byte.
        capacity_spectrum: Optional cache capacities (in bytes) to evaluate
            the replay at *alongside* this run's own capacity.  The extra
            results land in the replay engine's memo (shared through
            ``trace_cache``), so the sibling runs of a cache-size sweep skip
            their replay evaluations entirely.  The returned result is
            byte-identical with or without a spectrum.

    Returns:
        A :class:`SimulationResult` covering every layer of the network.
    """
    config = config or SystemConfig()
    fmt = feature_format if feature_format is not None else design.format_instance()
    dataset = resolve_sparsity_dataset(dataset, sparsity)
    workloads = build_workloads(dataset, variant=variant)
    with span("build_context"):
        context = build_context(
            design,
            fmt,
            dataset,
            config,
            trace_cache,
            sparsity=sparsity,
            capacity_spectrum=capacity_spectrum,
        )
    check_deadline("schedule")
    fault_point("stage:schedule")
    with span("schedule"):
        context = schedule(context)
    return complete_run(
        context,
        workloads,
        variant=variant,
        seed=seed,
        max_sampled_layers=max_sampled_layers,
    )


def complete_run(
    context: RunContext,
    workloads: Sequence[LayerWorkload],
    variant: str = "gcn",
    seed: int = 0,
    max_sampled_layers: int = 6,
) -> SimulationResult:
    """Run stages 3-5 over an already-scheduled :class:`RunContext`.

    Split out of :func:`simulate_design` so callers that build (or
    customise) the context themselves — e.g. legacy ``_build_context``
    overrides — can still finish the run through the shared pipeline.
    """
    check_deadline("replay")
    fault_point("stage:replay")
    with span("replay"):
        replayed = replay(context, workloads, seed, max_sampled_layers)
    check_deadline("timing")
    with span("timing"):
        timed = timing(context, replayed)
    check_deadline("energy")
    with span("energy"):
        layers = energy(context, timed)

    return SimulationResult(
        accelerator=context.design.name,
        dataset=context.dataset.name,
        layers=layers,
        frequency_ghz=context.config.engines.frequency_ghz,
        metadata={
            "variant": variant,
            "num_layers": context.dataset.num_layers,
            "cache_lines": context.cache_lines,
            "feature_passes": context.tiling.feature_passes,
            "dest_tile_vertices": context.tiling.dest_tile_vertices,
        },
    )


__all__ = [
    "AggregateReplay",
    "GCN_VARIANTS",
    "LayerWorkload",
    "PhaseResult",
    "REPLAY_BACKENDS",
    "ReplayOutcome",
    "ReplayedLayer",
    "RunContext",
    "SAGE_EDGE_FRACTION",
    "TimedLayer",
    "build_context",
    "build_workloads",
    "complete_run",
    "effective_cache_lines",
    "energy",
    "get_replay_backend",
    "replay",
    "resolve_sparsity_dataset",
    "schedule",
    "set_replay_backend",
    "simulate_design",
    "timing",
]
