"""Systolic-array combination engine timing model.

The combination phase multiplies the aggregated features by the layer weight
matrix on a 32x32 output-stationary systolic array (paper Table III), the
same structure SCALE-Sim models.  For an output-stationary array computing a
``(M x K) @ (K x N)`` product, each ``rows x cols`` output tile takes
``K + rows + cols - 2`` cycles to stream the operands through and drain the
results; tiles are processed back to back across the configured number of
combination engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.core.config import EngineConfig
from repro.errors import SimulationError


@dataclass
class GemmCost:
    """Cycle cost of one GEMM on the combination engines."""

    mac_operations: float
    cycles: float
    tiles: int


class SystolicArray:
    """Output-stationary systolic array timing model (SCALE-Sim style)."""

    def __init__(self, config: EngineConfig) -> None:
        self.config = config

    def gemm_cost(
        self,
        m: float,
        k: float,
        n: float,
        density: float = 1.0,
    ) -> GemmCost:
        """Cost of a dense ``(m x k) @ (k x n)`` product.

        Args:
            m: Output rows (vertices in the tile).
            k: Reduction dimension (input feature width).
            n: Output columns (output feature width).
            density: Fraction of the reduction dimension that is actually
                processed — 1.0 for a plain systolic array, the input density
                for accelerators that skip zero activations in the
                combination phase (AWB-GCN) or for SGCN's sparse first-layer
                handling.
        """
        if min(m, k, n) < 0:
            raise SimulationError("GEMM dimensions must be non-negative")
        if not 0.0 < density <= 1.0:
            density = max(min(density, 1.0), 1e-6)
        if m == 0 or k == 0 or n == 0:
            return GemmCost(mac_operations=0.0, cycles=0.0, tiles=0)

        rows = self.config.systolic_rows
        cols = self.config.systolic_cols
        row_tiles = ceil(m / rows)
        col_tiles = ceil(n / cols)
        tiles = row_tiles * col_tiles

        effective_k = max(1.0, k * density)
        cycles_per_tile = effective_k + rows + cols - 2
        total_cycles = tiles * cycles_per_tile / self.config.num_combination_engines
        macs = m * k * n * density
        return GemmCost(mac_operations=macs, cycles=float(total_cycles), tiles=tiles)

    def utilization(self, m: float, k: float, n: float) -> float:
        """Fraction of peak MAC throughput achieved on this GEMM shape."""
        cost = self.gemm_cost(m, k, n)
        if cost.cycles == 0:
            return 0.0
        peak_macs = (
            cost.cycles
            * self.config.systolic_rows
            * self.config.systolic_cols
            * self.config.num_combination_engines
        )
        return float(cost.mac_operations / peak_macs)

    def weight_bytes(self, k: float, n: float, element_bytes: int = 4) -> float:
        """Bytes of weights streamed from DRAM for one layer's GEMM."""
        return float(k * n * element_bytes)
