"""Aggregation engine building blocks: SIMD MAC lanes and the prefix-sum unit.

The baseline aggregation engine (paper Fig. 5) is a 16-way SIMD unit fed by a
graph reader (edges) and a feature reader (destination feature rows).  SGCN's
sparse aggregator (Fig. 8) adds a parallel prefix-sum unit that converts each
bitmap into reversed indices into the packed non-zero values.  This module
provides both the cycle-cost models used by the performance simulator and a
functional prefix-sum implementation used by the functional aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import EngineConfig
from repro.errors import SimulationError


class PrefixSumUnit:
    """Parallel prefix-sum over a bitmap (functional + timing model).

    In hardware this is a log-depth parallel prefix adder over the bitmap
    bits of one cacheline (128 bits for a 16-element fp32 line plus headroom);
    it completes in a single pipeline stage, so its cycle cost is folded into
    the per-cacheline aggregation throughput.
    """

    def __init__(self, width_bits: int = 128) -> None:
        if width_bits <= 0:
            raise SimulationError("prefix-sum width must be positive")
        self.width_bits = width_bits

    def exclusive_prefix_sum(self, bits: np.ndarray) -> np.ndarray:
        """Exclusive prefix sum of a 0/1 bitmap.

        ``result[i]`` is the number of set bits strictly before position
        ``i`` — i.e. the index into the packed non-zero array where element
        ``i``'s value lives (when ``bits[i]`` is set).
        """
        bits = np.asarray(bits)
        if bits.ndim != 1:
            raise SimulationError("bitmap must be one-dimensional")
        if bits.size > self.width_bits:
            raise SimulationError(
                f"bitmap of {bits.size} bits exceeds unit width {self.width_bits}"
            )
        if bits.size == 0:
            return np.zeros(0, dtype=np.int64)
        sums = np.cumsum(bits.astype(np.int64))
        return np.concatenate([[0], sums[:-1]])

    def reversed_indices(self, bits: np.ndarray) -> np.ndarray:
        """Packed-array index of every set bit of the bitmap.

        This is the mapping the sparse aggregator's accumulators use to load
        the multiplier outputs into the right feature positions (paper
        Fig. 8, step 3).
        """
        bits = np.asarray(bits)
        prefix = self.exclusive_prefix_sum(bits)
        return prefix[bits.astype(bool)]

    def latency_cycles(self) -> int:
        """Pipeline latency of the prefix-sum (one stage)."""
        return 1


@dataclass
class AggregationCost:
    """Cycle cost of an aggregation phase on the SIMD engines."""

    mac_operations: float
    cycles: float


class SIMDAggregationEngine:
    """Throughput model of the SIMD aggregation engines.

    Each engine multiplies one cacheline worth of feature elements
    (``simd_width`` lanes) by the broadcast edge weight per cycle and
    accumulates into the output registers.  ``num_engines`` engines operate
    in parallel on different vertices.
    """

    def __init__(self, config: EngineConfig) -> None:
        self.config = config

    def aggregation_cost(
        self,
        num_edges: float,
        feature_width: float,
        density: float = 1.0,
    ) -> AggregationCost:
        """Cost of aggregating ``num_edges`` rows of ``feature_width`` features.

        Args:
            num_edges: Number of (source, destination) feature-row
                accumulations.
            feature_width: Elements per feature row.
            density: Fraction of elements that are non-zero *and processed*
                — 1.0 for dense engines (zeros are multiplied anyway), the
                feature density for SGCN's sparse aggregator.
        """
        if num_edges < 0 or feature_width < 0:
            raise SimulationError("workload sizes must be non-negative")
        if not 0.0 <= density <= 1.0:
            raise SimulationError("density must lie in [0, 1]")
        macs = num_edges * feature_width * density
        lanes = self.config.simd_width * self.config.num_aggregation_engines
        # Each edge pays at least one cycle (bitmap decode / edge dispatch)
        # even if its row is almost empty.
        cycles = max(macs / lanes, num_edges / self.config.num_aggregation_engines)
        return AggregationCost(mac_operations=macs, cycles=float(cycles))

    def sparse_first_layer_cost(
        self,
        num_vertices: float,
        input_nonzeros_per_vertex: float,
        output_width: float,
    ) -> AggregationCost:
        """Cost of SGCN's first-layer sparse combination on the aggregation engines.

        When the input features are ultra-sparse one-hot style vectors, SGCN
        performs the first combination ``X_1 @ W`` as a sparse gather-accumulate
        on the aggregation engines (Section V-F): each non-zero input element
        selects one weight row and accumulates it into the output.
        """
        macs = num_vertices * input_nonzeros_per_vertex * output_width
        lanes = self.config.simd_width * self.config.num_aggregation_engines
        cycles = max(macs / lanes, num_vertices)
        return AggregationCost(mac_operations=macs, cycles=float(cycles))
