"""Aggregation scheduling: topology tiling, engine partitioning, and SAC.

The aggregation phase reads, for every edge ``(src, dst)``, the feature row
of ``dst``.  How those reads are *ordered* determines how much of the reuse
the on-chip cache can capture, and this ordering is exactly where the
modelled accelerators differ:

* **No tiling** (HyGCN): sources are processed in natural order over the
  whole graph; the destination working set is the entire feature matrix.
* **Destination tiling** (EnGN / GCNAX / I-GCN / SGCN): the destination range
  is partitioned into tiles sized to the cache; all sources are swept per
  tile, confining the working set.
* **Engine partitioning**: the parallel aggregation engines each take either
  one contiguous block of the source range (conventional, paper Fig. 7a) or
  interleaved 32-vertex strips (sparsity-aware cooperation, Fig. 7c).  From
  the shared cache's perspective the engines' accesses interleave in time, so
  the partitioning changes the combined working set.

This module builds those orders as flat numpy arrays of destination vertex
ids (one entry per edge access), which the performance simulator replays
through the row-granularity cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.graphs.graph import CSRGraph


@dataclass(frozen=True)
class TilingPlan:
    """A static tiling decision for the aggregation phase.

    Attributes:
        source_tile_vertices: Source vertices whose partial output rows are
            held in the on-chip accumulation (psum) buffer at once (``None``
            disables source tiling: the whole graph is one tile).
        dest_tile_vertices: Destination vertices per tile (``None`` disables
            destination tiling).
        feature_passes: Number of feature-width slices processed as separate
            passes over the topology (1 = whole width at once).
        assumed_row_lines: Cachelines per feature row assumed when the tile
            size was chosen (static, off-line estimate).
    """

    source_tile_vertices: Optional[int]
    dest_tile_vertices: Optional[int]
    feature_passes: int
    assumed_row_lines: float


def _expected_distinct_destinations(
    num_vertices: int, source_tile: int, average_degree: float
) -> float:
    """Expected distinct destinations referenced by one source tile.

    Assumes destinations are drawn (approximately) independently; community
    clustering makes the true value lower, which the trace-driven replay
    captures — this estimate is only used to *choose* the loop order, as the
    accelerators' off-line analyses do.
    """
    edges = source_tile * average_degree
    if num_vertices <= 0:
        return 0.0
    return num_vertices * (1.0 - np.exp(-edges / num_vertices))


def plan_tiling(
    num_vertices: int,
    average_degree: float,
    cache_lines: int,
    psum_buffer_lines: int,
    assumed_row_lines: float,
    output_row_lines: float,
    topology_bytes_per_edge: float,
    supports_feature_slicing: bool,
    use_destination_tiling: bool = True,
    use_source_tiling: bool = True,
    fill_fraction: float = 0.5,
    min_tile_vertices: int = 32,
    min_feature_passes: int = 1,
    max_feature_passes: int = 8,
) -> TilingPlan:
    """Choose the loop order / tile sizes off line, as GCNAX-style designs do.

    Two constraints shape the plan:

    * the partial output rows of the sources being processed must fit the
      on-chip accumulation buffer — this bounds the *source tile*; sources
      beyond it require another sweep that re-reads destination features;
    * the destination features touched by one sweep should fit the cache —
      this bounds the *destination tile* and prevents thrashing.

    Slicing the feature width (``feature_passes`` > 1) relaxes both: each
    pass handles ``1/passes`` of the width, so ``passes`` times more sources
    fit the accumulation buffer (fewer re-read sweeps) at the price of
    streaming the topology once per pass.  The planner evaluates each legal
    pass count with the paper's own style of off-line estimate (expected
    distinct destinations per sweep) and picks the cheapest; formats that
    cannot be read in width slices (whole-row bitmaps, CSR, COO) are fixed at
    a single pass.

    Args:
        num_vertices: Number of vertices.
        average_degree: Average out-degree of the (simulated) graph.
        cache_lines: Cache capacity in cachelines.
        psum_buffer_lines: Accumulation-buffer capacity in cachelines.
        assumed_row_lines: Statically assumed cachelines per input feature row.
        output_row_lines: Cachelines per (dense) output partial-sum row.
        topology_bytes_per_edge: Bytes of topology streamed per edge per pass.
        supports_feature_slicing: Whether the feature format supports slicing.
        use_destination_tiling: Disable to model untiled designs (HyGCN).
        use_source_tiling: Disable for designs without a psum-buffer
            constraint on the source dimension.
        fill_fraction: Fraction of the cache budgeted for a destination tile.
        min_tile_vertices: Smallest tile worth scheduling.
        max_feature_passes: Upper bound on feature slicing passes.
    """
    if num_vertices <= 0 or cache_lines <= 0 or psum_buffer_lines <= 0:
        raise SimulationError("tiling needs positive vertex and buffer sizes")
    if assumed_row_lines <= 0 or output_row_lines <= 0:
        raise SimulationError("assumed row sizes must be positive")

    if not use_source_tiling and not use_destination_tiling:
        return TilingPlan(
            source_tile_vertices=None,
            dest_tile_vertices=None,
            feature_passes=1,
            assumed_row_lines=assumed_row_lines,
        )

    if min_feature_passes < 1 or min_feature_passes > max_feature_passes:
        raise SimulationError("min_feature_passes must lie in [1, max_feature_passes]")
    if supports_feature_slicing:
        candidate_passes = range(min_feature_passes, max_feature_passes + 1)
    else:
        candidate_passes = [min_feature_passes]
    best: Optional[Tuple[float, int, int]] = None
    num_edges = num_vertices * average_degree
    for passes in candidate_passes:
        out_lines_per_pass = max(1.0, output_row_lines / passes)
        in_lines_per_pass = max(1.0, assumed_row_lines / passes)
        if use_source_tiling:
            source_tile = int(psum_buffer_lines / out_lines_per_pass)
            source_tile = max(min_tile_vertices, min(source_tile, num_vertices))
        else:
            source_tile = num_vertices
        sweeps = int(np.ceil(num_vertices / source_tile))
        distinct = _expected_distinct_destinations(num_vertices, source_tile, average_degree)
        feature_bytes = passes * sweeps * distinct * in_lines_per_pass * 64.0
        topology_bytes = passes * num_edges * topology_bytes_per_edge
        cost = feature_bytes + topology_bytes
        if best is None or cost < best[0]:
            best = (cost, passes, source_tile)

    assert best is not None
    _, passes, source_tile = best
    in_lines_per_pass = max(1.0, assumed_row_lines / passes)

    if use_destination_tiling:
        budget_lines = cache_lines * fill_fraction
        dest_tile = int(budget_lines / in_lines_per_pass)
        dest_tile = max(min_tile_vertices, min(dest_tile, num_vertices))
    else:
        dest_tile = None

    return TilingPlan(
        source_tile_vertices=source_tile if use_source_tiling else None,
        dest_tile_vertices=dest_tile,
        feature_passes=passes,
        assumed_row_lines=assumed_row_lines,
    )


def source_processing_order(
    num_vertices: int,
    num_engines: int,
    mode: str = "contiguous",
    strip_height: int = 32,
) -> np.ndarray:
    """Order in which source vertices are processed by the parallel engines.

    Engines run concurrently, so from the shared cache's point of view their
    per-vertex work interleaves round-robin.

    Args:
        num_vertices: Number of source vertices.
        num_engines: Number of aggregation engines.
        mode: ``"contiguous"`` — each engine owns one contiguous block of the
            source range (conventional); ``"sac"`` — 32-vertex strips are
            dealt round-robin to the engines (sparsity-aware cooperation).
        strip_height: Strip height for SAC.

    Returns:
        A permutation of ``0..num_vertices-1`` giving the interleaved global
        processing order.
    """
    if num_vertices <= 0:
        raise SimulationError("need at least one source vertex")
    if num_engines <= 0:
        raise SimulationError("need at least one engine")
    if mode not in ("contiguous", "sac"):
        raise SimulationError(f"unknown engine partitioning mode {mode!r}")

    if num_engines == 1:
        return np.arange(num_vertices, dtype=np.int64)

    if mode == "contiguous":
        # vertex[offset, engine] = engine * block + offset, walked offset-major
        # (the engines advance through their blocks in lockstep).
        block = ceil(num_vertices / num_engines)
        grid = (
            np.arange(num_engines, dtype=np.int64)[None, :] * block
            + np.arange(block, dtype=np.int64)[:, None]
        )
        order = grid.ravel()
        return order[order < num_vertices]

    # Sparsity-aware cooperation: strips dealt round-robin; at any moment the
    # engines work on `num_engines` *consecutive* strips, then advance
    # together to the next strip group.
    if strip_height <= 0:
        raise SimulationError("strip height must be positive")
    num_strips = ceil(num_vertices / strip_height)
    num_groups = ceil(num_strips / num_engines)
    # vertex[group, offset, strip] = strip_id * H + offset, walked group-major
    # then offset-major across the group's strips.
    strip_ids = np.arange(num_groups * num_engines, dtype=np.int64).reshape(
        num_groups, num_engines
    )
    vertices = (
        strip_ids[:, None, :] * strip_height
        + np.arange(strip_height, dtype=np.int64)[None, :, None]
    )
    valid = (strip_ids[:, None, :] < num_strips) & (vertices < num_vertices)
    return vertices.ravel()[valid.ravel()]


def aggregation_access_trace(
    graph: CSRGraph,
    plan: TilingPlan,
    num_engines: int,
    engine_partition: str = "contiguous",
    strip_height: int = 32,
) -> np.ndarray:
    """Destination-id sequence of the aggregation feature reads.

    The loop nest replayed is the one the tiling plan describes::

        for source_tile:                # bounded by the psum buffer
            for destination_tile:       # bounded by the cache
                for source in engine-interleaved order within the tile:
                    for edge (source, dest) with dest in destination_tile:
                        access feature row `dest`

    Sources within a tile are visited in the order the parallel engines
    interleave them: contiguous per-engine blocks (conventional) or dealt
    32-vertex strips (sparsity-aware cooperation).

    Returns:
        An ``int64`` array with one destination vertex id per feature-row
        access; its length equals the number of edges (each edge's
        destination is read exactly once per full sweep of one feature pass).
    """
    num_vertices = graph.num_vertices
    indptr = graph.indptr
    indices = graph.indices

    source_tile = plan.source_tile_vertices or num_vertices
    dest_tile = plan.dest_tile_vertices or num_vertices

    # Engine-interleaved source sequence, one segment per source tile.
    segments: List[np.ndarray] = []
    for src_start in range(0, num_vertices, source_tile):
        src_stop = min(num_vertices, src_start + source_tile)
        local_order = source_processing_order(
            num_vertices=src_stop - src_start,
            num_engines=num_engines,
            mode=engine_partition,
            strip_height=strip_height,
        )
        segments.append(local_order + src_start)
    source_seq = np.concatenate(segments) if segments else np.zeros(0, dtype=np.int64)
    segment_lengths = np.asarray([s.size for s in segments], dtype=np.int64)

    # Expand the sequence to one entry per edge (CSR slice gather).
    counts = indptr[source_seq + 1] - indptr[source_seq]
    num_edges = int(counts.sum())
    if num_edges == 0:
        return np.zeros(0, dtype=np.int64)
    output_starts = np.cumsum(counts) - counts
    within = np.arange(num_edges, dtype=np.int64) - np.repeat(output_starts, counts)
    dests = indices[np.repeat(indptr[source_seq], counts) + within]

    # Replaying the loop nest (source tile -> destination tile -> source ->
    # edge) is a stable sort of the edges by (source tile, destination tile,
    # position in the engine-interleaved order); within one (source, tile)
    # pair the CSR neighbour order survives because the sort is stable.
    num_dest_tiles = -(-num_vertices // dest_tile)
    position_of_edge = np.repeat(
        np.arange(source_seq.size, dtype=np.int64), counts
    )
    if num_dest_tiles == 1 and len(segments) == 1:
        return dests.astype(np.int64)
    source_tile_of_edge = np.repeat(
        np.repeat(np.arange(len(segments), dtype=np.int64), segment_lengths), counts
    )
    dest_tile_of_edge = dests // dest_tile
    key = (
        source_tile_of_edge * num_dest_tiles + dest_tile_of_edge
    ) * source_seq.size + position_of_edge
    return dests[np.argsort(key, kind="stable")].astype(np.int64)


# --------------------------------------------------------------------------- #
# Reference implementations
# --------------------------------------------------------------------------- #
# The pre-vectorization loop bodies, kept as the executable specification of
# the vectorized builders above: the equivalence tests pin the two against
# each other on randomized graphs/plans, and the legacy replay backend
# (``repro.accelerator.simulator.set_replay_backend("legacy")``) runs them so
# that ``repro bench`` measures the true before/after of the trace engine.


def source_processing_order_reference(
    num_vertices: int,
    num_engines: int,
    mode: str = "contiguous",
    strip_height: int = 32,
) -> np.ndarray:
    """Loop-based reference of :func:`source_processing_order`."""
    if num_vertices <= 0:
        raise SimulationError("need at least one source vertex")
    if num_engines <= 0:
        raise SimulationError("need at least one engine")
    if mode not in ("contiguous", "sac"):
        raise SimulationError(f"unknown engine partitioning mode {mode!r}")

    if num_engines == 1:
        return np.arange(num_vertices, dtype=np.int64)

    if mode == "contiguous":
        block = ceil(num_vertices / num_engines)
        order = []
        for offset in range(block):
            for engine in range(num_engines):
                vertex = engine * block + offset
                if vertex < num_vertices:
                    order.append(vertex)
        return np.asarray(order, dtype=np.int64)

    if strip_height <= 0:
        raise SimulationError("strip height must be positive")
    num_strips = ceil(num_vertices / strip_height)
    order = []
    for group_start in range(0, num_strips, num_engines):
        group = list(range(group_start, min(group_start + num_engines, num_strips)))
        for offset in range(strip_height):
            for strip in group:
                vertex = strip * strip_height + offset
                if vertex < num_vertices:
                    order.append(vertex)
    return np.asarray(order, dtype=np.int64)


def aggregation_access_trace_reference(
    graph: CSRGraph,
    plan: TilingPlan,
    num_engines: int,
    engine_partition: str = "contiguous",
    strip_height: int = 32,
) -> np.ndarray:
    """Loop-based reference of :func:`aggregation_access_trace`."""
    num_vertices = graph.num_vertices
    indptr = graph.indptr
    indices = graph.indices

    source_tile = plan.source_tile_vertices or num_vertices
    dest_tile = plan.dest_tile_vertices or num_vertices

    trace_chunks: List[np.ndarray] = []
    for src_start in range(0, num_vertices, source_tile):
        src_stop = min(num_vertices, src_start + source_tile)
        local_order = source_processing_order_reference(
            num_vertices=src_stop - src_start,
            num_engines=num_engines,
            mode=engine_partition,
            strip_height=strip_height,
        )
        tile_sources = (local_order + src_start).tolist()
        for dst_start in range(0, num_vertices, dest_tile):
            dst_stop = min(num_vertices, dst_start + dest_tile)
            for src in tile_sources:
                start, stop = indptr[src], indptr[src + 1]
                if stop == start:
                    continue
                neighbors = indices[start:stop]
                if dest_tile >= num_vertices:
                    trace_chunks.append(neighbors)
                    continue
                # CSR neighbours are sorted, so the in-tile range is contiguous.
                lo = np.searchsorted(neighbors, dst_start, side="left")
                hi = np.searchsorted(neighbors, dst_stop, side="left")
                if hi > lo:
                    trace_chunks.append(neighbors[lo:hi])
    if not trace_chunks:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(trace_chunks).astype(np.int64)


def locality_reordering_reference(graph: CSRGraph) -> np.ndarray:
    """Loop-based (FIFO-queue BFS) reference of :func:`locality_reordering`."""
    from collections import deque

    undirected = graph.symmetrized()
    num_vertices = undirected.num_vertices
    visited = np.zeros(num_vertices, dtype=bool)
    new_ids = np.full(num_vertices, -1, dtype=np.int64)
    next_id = 0

    order_seed = np.argsort(-undirected.degrees, kind="stable")
    for seed in order_seed.tolist():
        if visited[seed]:
            continue
        queue = deque([seed])
        visited[seed] = True
        while queue:
            vertex = queue.popleft()
            new_ids[vertex] = next_id
            next_id += 1
            for neighbor in undirected.neighbors(vertex).tolist():
                if not visited[neighbor]:
                    visited[neighbor] = True
                    queue.append(neighbor)
    if next_id != num_vertices:
        raise SimulationError("reordering failed to cover every vertex")
    return new_ids


def locality_reordering(graph: CSRGraph) -> np.ndarray:
    """Locality-improving vertex permutation (I-GCN "islandization" stand-in).

    I-GCN dynamically reorders vertices with a BFS-based islandization so
    that densely connected groups (islands) occupy consecutive ids.  We use a
    BFS over the symmetrised graph from the highest-degree vertex, appending
    unreached components afterwards, which produces the same qualitative
    effect: neighbours get nearby ids and the adjacency concentrates near the
    diagonal.

    Returns:
        ``permutation`` with ``permutation[old_id] == new_id``.
    """
    undirected = graph.symmetrized()
    num_vertices = undirected.num_vertices
    indptr = undirected.indptr
    indices = undirected.indices
    visited = np.zeros(num_vertices, dtype=bool)
    new_ids = np.full(num_vertices, -1, dtype=np.int64)
    next_id = 0

    order_seed = np.argsort(-undirected.degrees, kind="stable")

    for seed in order_seed.tolist():
        if visited[seed]:
            continue
        # Level-synchronous BFS.  A FIFO queue assigns ids in pop order,
        # which is exactly level order with each level in discovery order
        # (parent position first, CSR neighbour order second, first parent
        # wins) — so batching the frontier keeps the permutation identical.
        frontier = np.asarray([seed], dtype=np.int64)
        visited[seed] = True
        while frontier.size:
            new_ids[frontier] = np.arange(
                next_id, next_id + frontier.size, dtype=np.int64
            )
            next_id += frontier.size
            counts = indptr[frontier + 1] - indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            output_starts = np.cumsum(counts) - counts
            within = np.arange(total, dtype=np.int64) - np.repeat(output_starts, counts)
            neighbors = indices[np.repeat(indptr[frontier], counts) + within]
            neighbors = neighbors[~visited[neighbors]]
            # Deduplicate keeping the first (earliest-discovered) occurrence.
            _, first_positions = np.unique(neighbors, return_index=True)
            frontier = neighbors[np.sort(first_positions)]
            visited[frontier] = True
    if next_id != num_vertices:
        raise SimulationError("reordering failed to cover every vertex")
    return new_ids
