"""Accelerator models: SGCN and the prior-work baselines it is compared to."""

from __future__ import annotations

from repro.accelerator.engines import SIMDAggregationEngine, PrefixSumUnit
from repro.accelerator.systolic import SystolicArray
from repro.accelerator.aggregator import SparseAggregator
from repro.accelerator.compressor import PostCombinationCompressor
from repro.accelerator.design import (
    BUILTIN_DESIGNS,
    DESIGN_KNOBS,
    DesignPoint,
)
from repro.accelerator.pipeline import simulate_design
from repro.accelerator.simulator import (
    LayerWorkload,
    PhaseResult,
    build_workloads,
    AcceleratorModel,
)
from repro.accelerator.sgcn import SGCNAccelerator
from repro.accelerator.baselines import (
    GCNAXAccelerator,
    HyGCNAccelerator,
    AWBGCNAccelerator,
    EnGNAccelerator,
    IGCNAccelerator,
)
from repro.accelerator.registry import (
    ACCELERATORS,
    DESIGN_POINTS,
    available_accelerators,
    get_accelerator,
    get_design,
    register_accelerator,
    register_design,
    temporary_accelerator,
    unregister_accelerator,
)
from repro.accelerator.energy_model import AcceleratorEnergyModel

__all__ = [
    "BUILTIN_DESIGNS",
    "DESIGN_KNOBS",
    "DESIGN_POINTS",
    "DesignPoint",
    "get_design",
    "register_design",
    "simulate_design",
    "SIMDAggregationEngine",
    "PrefixSumUnit",
    "SystolicArray",
    "SparseAggregator",
    "PostCombinationCompressor",
    "LayerWorkload",
    "PhaseResult",
    "build_workloads",
    "AcceleratorModel",
    "SGCNAccelerator",
    "GCNAXAccelerator",
    "HyGCNAccelerator",
    "AWBGCNAccelerator",
    "EnGNAccelerator",
    "IGCNAccelerator",
    "ACCELERATORS",
    "available_accelerators",
    "get_accelerator",
    "register_accelerator",
    "temporary_accelerator",
    "unregister_accelerator",
    "AcceleratorEnergyModel",
]
