"""SGCN reproduction library.

This package reproduces the system described in "SGCN: Exploiting
Compressed-Sparse Features in Deep Graph Convolutional Network Accelerators"
(HPCA 2023).  It contains:

* ``repro.graphs`` — graph data structures and synthetic dataset generators
  calibrated to the paper's Table II.
* ``repro.gcn`` — numpy implementations of GCN / GINConv / GraphSAGE layers,
  deep residual models, and intermediate-feature sparsity tooling.
* ``repro.formats`` — sparse feature formats (Dense, CSR, COO, BSR, Blocked
  Ellpack, BEICSR) with functional encode/decode and memory-traffic models.
* ``repro.memory`` — cache and HBM DRAM models plus energy tables, including
  the vectorized trace-replay engine (``repro.memory.replay``) behind the
  trace-driven aggregation simulation.
* ``repro.accelerator`` — the SGCN accelerator model and baseline models of
  GCNAX, HyGCN, AWB-GCN, EnGN, and I-GCN.
* ``repro.core`` — configuration dataclasses, the canonical
  ``RunSpec``/``Session`` API, the classic ``simulate()`` shims, and
  result/comparison helpers.
* ``repro.experiments`` — declarative experiment sweeps: scenario/sweep
  specs, a parallel runner with result caching, paper-figure scenario
  packs, and the ``python -m repro`` CLI.
* ``repro.bench`` — the ``repro bench`` performance harness comparing the
  vectorized engine against the legacy path and recording ``BENCH_*.json``
  trajectory documents.
* ``repro.resilience`` — deterministic fault injection, retry/timeout
  execution policies, sweep checkpointing, and graceful degradation for
  long sweeps.

Quickstart::

    from repro import RunSpec, Session

    session = Session()
    result = session.run(RunSpec(dataset="cora", accelerator="sgcn"))
    print(result.total_cycles, result.dram_traffic_bytes)

or, with the classic one-shot helpers::

    from repro import simulate, load_dataset, SystemConfig

    dataset = load_dataset("cora")
    result = simulate(dataset, accelerator="sgcn", config=SystemConfig())
    print(result.total_cycles, result.dram_traffic_bytes)
"""

from __future__ import annotations

from repro.core.config import (
    CacheConfig,
    DRAMConfig,
    EngineConfig,
    SystemConfig,
)
from repro.accelerator.design import DESIGN_KNOBS, DesignPoint
from repro.accelerator.registry import get_design, register_design
from repro.accelerator.simulator import get_replay_backend, set_replay_backend
from repro.core.runspec import RunSpec, SUPPORTED_OVERRIDES, build_config
from repro.core.session import Session, default_session, reset_default_session
from repro.gcn.providers import (
    SPARSITY_MODES,
    MeasuredSparsityProvider,
    SparsityProvider,
    SyntheticSparsityProvider,
    make_sparsity_provider,
)
from repro.memory.replay import ReplayEngine, TraceCache, replay_trace
from repro.core.api import simulate, compare_accelerators, available_accelerators
from repro.core.results import LayerResult, SimulationResult, ComparisonResult
from repro.registry import Registry
from repro.experiments.runner import RunOutcome, SweepReport, SweepRunner, run_scenario
from repro.experiments.scenarios import available_packs, get_pack
from repro.experiments.spec import Scenario, SweepSpec
from repro.experiments.store import ResultStore
from repro.graphs.datasets import load_dataset, available_datasets
from repro import telemetry
from repro.resilience import (
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SweepCheckpoint,
    TimeoutPolicy,
    faults_scope,
    load_fault_plan,
)
from repro.errors import (
    ConfigurationError,
    DatasetError,
    FaultInjectionError,
    FormatError,
    GraphError,
    ReproError,
    RunTimeoutError,
    SimulationError,
    SparsityHarvestError,
)

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy export: the bench harness drags in timing machinery that plain
    # `import repro` users (and the CI import smoke) should not pay for.
    if name == "run_benchmarks":
        from repro.bench import run_benchmarks

        return run_benchmarks
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DESIGN_KNOBS",
    "DesignPoint",
    "get_design",
    "register_design",
    "CacheConfig",
    "DRAMConfig",
    "EngineConfig",
    "SystemConfig",
    "RunSpec",
    "SUPPORTED_OVERRIDES",
    "build_config",
    "Session",
    "default_session",
    "reset_default_session",
    "SPARSITY_MODES",
    "SparsityProvider",
    "SyntheticSparsityProvider",
    "MeasuredSparsityProvider",
    "make_sparsity_provider",
    "Registry",
    "ReplayEngine",
    "TraceCache",
    "replay_trace",
    "get_replay_backend",
    "set_replay_backend",
    "run_benchmarks",
    "simulate",
    "compare_accelerators",
    "available_accelerators",
    "LayerResult",
    "SimulationResult",
    "ComparisonResult",
    "Scenario",
    "SweepSpec",
    "SweepRunner",
    "SweepReport",
    "RunOutcome",
    "ResultStore",
    "run_scenario",
    "available_packs",
    "get_pack",
    "load_dataset",
    "available_datasets",
    "telemetry",
    "ExecutionPolicy",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SweepCheckpoint",
    "TimeoutPolicy",
    "faults_scope",
    "load_fault_plan",
    "ReproError",
    "ConfigurationError",
    "GraphError",
    "FormatError",
    "SimulationError",
    "DatasetError",
    "FaultInjectionError",
    "RunTimeoutError",
    "SparsityHarvestError",
    "__version__",
]
