"""``python -m repro`` entry point (see :mod:`repro.experiments.cli`)."""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
