"""Benchmark harness for the trace-replay engine.

Times the built-in scenario packs through a :class:`~repro.core.session.Session`
under both replay backends — the vectorized engine
(:mod:`repro.memory.replay`) and the ``legacy`` backend, which restores the
dominant pre-vectorization paths (per-access ``RowCache`` replay, loop-based
trace generation and BFS reordering, per-row line tables, no cross-run trace
caching; two minor helpers stay vectorized either way, so the baseline is if
anything slightly fast).  The ratio of the two is the before/after of the
engine, measured conservatively with the repository's own code.

Sensitivity cases (schema v3) measure a second before/after on the
vectorized engine alone: replay-knob sweep packs (cache-size,
hbm-generation) timed under per-knob dispatch — every scenario in its own
fresh session, the unit cost an ungrouped worker pool pays — versus grouped
spectrum dispatch, where one session partitions the pack into replay-knob
equivalence classes and answers each class's capacity vector in a single
replay evaluation (:meth:`ReplayEngine.replay_spectrum`).

Methodology:

* each timed repeat uses a **fresh session** (cold trace cache, cold engine
  structures — everything the engine amortises is paid inside the timed
  region);
* dataset synthesis is **pre-warmed** before the clock starts: generating a
  synthetic topology costs the same under either backend and is not what
  this benchmark measures;
* the wall-clock per backend is the **best of** ``repeats`` runs, the
  conventional way to suppress scheduler noise on shared machines.

``run_benchmarks`` produces (and optionally writes) the ``BENCH_*.json``
document whose schema is documented in the README's Performance section;
``BENCH_trace_engine.json`` at the repository root is a committed run of the
default configuration and seeds the repo's performance trajectory: future
PRs can be compared against it.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.accelerator.simulator import get_replay_backend, set_replay_backend
from repro.core.session import Session
from repro.experiments.scenarios import get_pack
from repro.telemetry.spans import reset_spans, set_enabled, span_snapshot

#: Schema version of the BENCH JSON document.  v2 added the per-pack
#: ``phases`` span breakdown (telemetry-profiled, measured outside the timed
#: best-of repeats).  v3 added *sensitivity* cases: packs sweeping replay
#: knobs (cache capacity, HBM generation) timed under per-knob dispatch
#: (``vectorized_s`` — every scenario simulated independently in its own
#: fresh session, the unit cost an ungrouped worker pool pays per scenario)
#: versus grouped spectrum dispatch (``spectrum_s`` — one fresh session,
#: :meth:`Session.run_many` partitioning the pack into replay-knob
#: equivalence classes and answering each class's capacity vector in a
#: single replay evaluation).
BENCH_SCHEMA_VERSION = 3

#: Default benchmark cases: ``(pack name, max_vertices)`` — ``None`` keeps
#: the pack's default scale — with an optional third ``quick`` element
#: selecting the pack's CI-smoke variant and an optional fourth
#: ``sensitivity`` element switching the case to the per-knob-vs-spectrum
#: protocol.  The main-comparison grid is
#: measured at its default scale and at a 4x larger one where the replay
#: dominates even more clearly; the design-space grid tracks the overhead
#: of the DesignPoint/phase-pipeline path (24 derived design points per
#: dataset, none of them a memoized built-in model); the quick
#: sparsity-depth grid tracks the cost of measured-sparsity runs (DeepGCN
#: training + mask harvesting inside the timed region — the harvest memo is
#: cold in every fresh session); the cache-size and hbm-generation
#: sensitivity cases track the grouped/spectrum sweep path.
DEFAULT_CASES: Tuple[Tuple, ...] = (
    ("paper-comparison", None),
    ("paper-comparison", 2048),
    ("design-space", None),
    ("sparsity-depth", None, True),
    ("cache-size", 2048, False, True),
    ("hbm-generation", 2048, False, True),
)

#: Case used by ``repro bench --quick`` (CI smoke): the smallest built-in
#: pack (18 runs) at a reduced scale.
QUICK_CASE: Tuple[str, Optional[int]] = ("hbm-generation", 256)

#: Default number of timed repeats per backend (best-of).
DEFAULT_REPEATS = 3


@dataclass
class PackBenchResult:
    """Timing of one scenario pack under both replay backends."""

    pack: str
    runs: int
    max_vertices: Optional[int]
    repeats: int
    vectorized_s: float
    legacy_s: Optional[float] = None
    trace_cache: Dict[str, int] = field(default_factory=dict)
    quick_pack: bool = False
    #: Sensitivity protocol: ``vectorized_s`` is per-knob dispatch (every
    #: scenario in its own fresh session) and ``spectrum_s`` is grouped
    #: spectrum dispatch (one fresh session, ``run_many(grouped=True)``).
    sensitivity: bool = False
    spectrum_s: Optional[float] = None
    #: Number of replay-knob equivalence classes the pack partitions into
    #: (sensitivity cases only).
    replay_classes: Optional[int] = None
    #: Span tree of one telemetry-profiled vectorized sweep (where the
    #: pack's wall-clock goes, stage by stage).  Profiled in a separate,
    #: untimed pass so instrumentation never perturbs the best-of numbers.
    phases: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        """Legacy wall-clock divided by vectorized wall-clock."""
        if self.legacy_s is None or self.vectorized_s <= 0:
            return None
        return self.legacy_s / self.vectorized_s

    @property
    def spectrum_speedup(self) -> Optional[float]:
        """Per-knob wall-clock divided by grouped spectrum wall-clock."""
        if self.spectrum_s is None or self.spectrum_s <= 0:
            return None
        return self.vectorized_s / self.spectrum_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (one entry of the BENCH document)."""
        return {
            "pack": self.pack,
            "runs": self.runs,
            "max_vertices": self.max_vertices,
            "quick_pack": self.quick_pack,
            "sensitivity": self.sensitivity,
            "repeats": self.repeats,
            "vectorized_s": round(self.vectorized_s, 4),
            "legacy_s": None if self.legacy_s is None else round(self.legacy_s, 4),
            "speedup": None if self.speedup is None else round(self.speedup, 2),
            "spectrum_s": (
                None if self.spectrum_s is None else round(self.spectrum_s, 4)
            ),
            "spectrum_speedup": (
                None
                if self.spectrum_speedup is None
                else round(self.spectrum_speedup, 2)
            ),
            "replay_classes": self.replay_classes,
            "trace_cache": dict(self.trace_cache),
            "phases": dict(self.phases),
        }


def _prewarm_datasets(session: Session, specs: Sequence) -> None:
    """Synthesize every dataset a pack needs before the clock starts."""
    for spec in specs:
        session.load_dataset(
            spec.dataset,
            max_vertices=spec.max_vertices,
            num_layers=spec.num_layers,
            seed=spec.seed,
        )


def _time_sweep(specs: Sequence, repeats: int) -> Tuple[float, Session]:
    """Best-of-``repeats`` wall-clock of one pack sweep under the active backend."""
    best = float("inf")
    session: Optional[Session] = None
    for _ in range(max(1, repeats)):
        session = Session()
        _prewarm_datasets(session, specs)
        start = time.perf_counter()
        session.run_many(specs, annotate=False)
        best = min(best, time.perf_counter() - start)
    assert session is not None
    return best, session


def _time_isolated(specs: Sequence, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock of per-knob dispatch.

    Every scenario is simulated in its own fresh session — nothing is
    shared between knob settings, which is exactly the unit cost an
    ungrouped worker pool pays per scenario (each worker session sees one
    scenario of the class at a time, so sibling knob settings rebuild the
    trace, the replay structure, and the per-layer tables from scratch).
    Dataset synthesis is pre-warmed per session, as in :func:`_time_sweep`.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        sessions = []
        for spec in specs:
            session = Session()
            _prewarm_datasets(session, [spec])
            sessions.append(session)
        start = time.perf_counter()
        for session, spec in zip(sessions, specs):
            session.run(spec)
        best = min(best, time.perf_counter() - start)
    return best


def _round_spans(spans: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Span tree with times rounded for a stable committed JSON document."""
    rounded: Dict[str, object] = {}
    for name, node in spans.items():
        entry: Dict[str, object] = {
            "total_s": round(float(node.get("total_s", 0.0)), 4),
            "count": int(node.get("count", 0)),
        }
        children = node.get("children")
        if children:
            entry["children"] = _round_spans(children)
        rounded[name] = entry
    return rounded


def _profile_sweep(specs: Sequence) -> Dict[str, object]:
    """Span breakdown of one fresh-session sweep (outside the timed repeats)."""
    previous_enabled = set_enabled(True)
    reset_spans()
    try:
        Session().run_many(specs, annotate=False)
        return _round_spans(span_snapshot())
    finally:
        reset_spans()
        set_enabled(previous_enabled)


def bench_pack(
    name: str,
    max_vertices: Optional[int] = None,
    repeats: int = DEFAULT_REPEATS,
    include_legacy: bool = True,
    quick_pack: bool = False,
    sensitivity: bool = False,
) -> PackBenchResult:
    """Benchmark one scenario pack; restores the active backend afterwards.

    ``quick_pack`` times the pack's CI-smoke variant (reduced scale and
    grid) instead of the full grid — used for packs whose full grid is too
    expensive to time per backend (the measured-sparsity grid trains a
    model per cell).

    ``sensitivity`` switches to the replay-knob sweep protocol: both
    numbers use the vectorized backend, ``vectorized_s`` timing per-knob
    dispatch (every scenario simulated independently in its own fresh
    session) and ``spectrum_s`` timing grouped dispatch (one fresh session,
    ``run_many`` partitioning the pack into replay-knob equivalence classes
    and answering each class's capacity spectrum in one replay
    evaluation).  The legacy backend is not timed for sensitivity cases —
    the before/after of interest is grouping, not vectorization.
    """
    specs = get_pack(name, max_vertices=max_vertices, quick=quick_pack).expand()
    previous = get_replay_backend()
    spectrum_s = None
    replay_classes = None
    try:
        set_replay_backend("vectorized")
        if sensitivity:
            vectorized_s = _time_isolated(specs, repeats)
            spectrum_s, session = _time_sweep(specs, repeats)
            replay_classes = len(session.replay_groups(specs))
        else:
            vectorized_s, session = _time_sweep(specs, repeats)
        trace_cache = session.trace_cache.stats()
        phases = _profile_sweep(specs)
        legacy_s = None
        if include_legacy and not sensitivity:
            set_replay_backend("legacy")
            legacy_s, _ = _time_sweep(specs, repeats)
    finally:
        set_replay_backend(previous)
    return PackBenchResult(
        pack=name,
        runs=len(specs),
        max_vertices=max_vertices,
        repeats=repeats,
        vectorized_s=vectorized_s,
        legacy_s=legacy_s,
        trace_cache=trace_cache,
        quick_pack=quick_pack,
        sensitivity=sensitivity,
        spectrum_s=spectrum_s,
        replay_classes=replay_classes,
        phases=phases,
    )


def run_benchmarks(
    cases: Optional[Sequence[Tuple[str, Optional[int]]]] = None,
    repeats: int = DEFAULT_REPEATS,
    quick: bool = False,
    include_legacy: bool = True,
    out: Optional[Union[str, Path]] = None,
) -> Dict[str, object]:
    """Run the benchmark suite and return (optionally write) the BENCH document.

    Args:
        cases: ``(pack name, max_vertices)`` pairs — optionally with a third
            ``quick`` element selecting the pack's CI-smoke variant and a
            fourth ``sensitivity`` element selecting the per-knob-vs-spectrum
            protocol; :data:`DEFAULT_CASES` when omitted.
        repeats: Timed repeats per backend (best-of).
        quick: CI smoke mode — the smallest pack at reduced scale, one
            repeat; overrides ``cases``/``repeats``.
        include_legacy: Also time the legacy (pre-vectorization) path and
            report speedups; disable for a vectorized-only trend point.
        out: Path of the ``BENCH_*.json`` to write (skipped when ``None``).
    """
    if quick:
        cases = [QUICK_CASE]
        repeats = 1
    elif cases is None:
        cases = list(DEFAULT_CASES)

    results: List[PackBenchResult] = []
    for case in cases:
        pack_name, max_vertices = case[0], case[1]
        quick_pack = bool(case[2]) if len(case) > 2 else False
        sensitivity = bool(case[3]) if len(case) > 3 else False
        results.append(
            bench_pack(
                pack_name,
                max_vertices=max_vertices,
                repeats=repeats,
                include_legacy=include_legacy,
                quick_pack=quick_pack,
                sensitivity=sensitivity,
            )
        )

    # The summary aggregates are regression tripwires for the *engine*:
    # quick-pack cases (the measured-sparsity grid) are dominated by
    # backend-invariant work (DeepGCN training), so their ~1x speedup would
    # pin min/overall regardless of engine health — they are reported
    # per-entry but excluded from the aggregates (unless they are all there
    # is, e.g. a custom quick-only invocation).  Sensitivity cases measure a
    # different before/after (per-knob vs grouped dispatch, both on the
    # vectorized engine) and feed their own aggregate instead.
    engine_results = [
        result
        for result in results
        if not result.quick_pack and not result.sensitivity
    ]
    if not engine_results:
        engine_results = [result for result in results if not result.sensitivity]
    if not engine_results:
        engine_results = results
    total_vectorized = sum(result.vectorized_s for result in engine_results)
    legacy_times = [
        result.legacy_s for result in engine_results if result.legacy_s is not None
    ]
    speedups = [
        result.speedup for result in engine_results if result.speedup is not None
    ]
    spectrum_speedups = [
        result.spectrum_speedup
        for result in results
        if result.spectrum_speedup is not None
    ]
    document: Dict[str, object] = {
        "benchmark": "trace_engine",
        "schema_version": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": bool(quick),
        "baseline": (
            "legacy replay backend: pre-vectorization engine "
            "(per-access RowCache replay, loop-based trace generation, "
            "no trace caching)"
        ),
        "sensitivity_baseline": (
            "per-knob dispatch: every scenario of a replay-knob sweep "
            "simulated independently in its own fresh session (the unit "
            "cost ungrouped pool dispatch pays); spectrum_s instead runs "
            "the pack grouped into replay-knob equivalence classes in one "
            "fresh session, answering each class's capacity spectrum in a "
            "single replay evaluation"
        ),
        "platform": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "results": [result.to_dict() for result in results],
        "summary": {
            "total_vectorized_s": round(total_vectorized, 4),
            "total_legacy_s": (
                round(sum(legacy_times), 4) if legacy_times else None
            ),
            "overall_speedup": (
                round(sum(legacy_times) / total_vectorized, 2)
                if legacy_times and total_vectorized > 0
                else None
            ),
            "min_speedup": round(min(speedups), 2) if speedups else None,
            "min_spectrum_speedup": (
                round(min(spectrum_speedups), 2) if spectrum_speedups else None
            ),
        },
    }
    if out is not None:
        path = Path(out)
        path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return document


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_CASES",
    "DEFAULT_REPEATS",
    "QUICK_CASE",
    "PackBenchResult",
    "bench_pack",
    "run_benchmarks",
]
