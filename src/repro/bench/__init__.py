"""Performance benchmarks for the simulation engine (``repro bench``).

The :mod:`repro.bench.harness` module times the built-in scenario packs
under the vectorized replay engine and the legacy (pre-vectorization)
execution path, and emits the ``BENCH_*.json`` documents that record the
repository's performance trajectory.
"""

from __future__ import annotations

from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_CASES,
    DEFAULT_REPEATS,
    QUICK_CASE,
    PackBenchResult,
    bench_pack,
    run_benchmarks,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_CASES",
    "DEFAULT_REPEATS",
    "QUICK_CASE",
    "PackBenchResult",
    "bench_pack",
    "run_benchmarks",
]
