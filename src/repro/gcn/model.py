"""Deep residual GCN models.

Implements the modern deep GCN structure the paper targets (Eq. 2):

    S_{l+1} = A_hat @ X_l @ W_l + S_l        (residual connection)
    X_l     = ReLU(norm(S_l))                (activation, optional PairNorm)

With residual connections the network can be tens to hundreds of layers deep
and — crucially for SGCN — its intermediate features ``X_l`` become 40–80%
sparse.  The model exposes a :class:`LayerTrace` per layer so the sparsity
can be measured directly, which is what the small-graph figures and the
example scripts use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.gcn.activations import pair_norm, relu, relu_grad
from repro.gcn.layers import GraphLayer, make_layer, _Linear
from repro.gcn.sparsity import measure_sparsity
from repro.graphs.graph import CSRGraph


@dataclass
class LayerTrace:
    """Intermediate results of one layer's forward pass.

    Attributes:
        layer_index: Zero-based layer index.
        pre_activation: ``S_{l+1}`` before the activation of the next layer.
        features: ``X_{l+1}`` — the post-activation features the next layer
            (and the accelerator's feature compressor) consumes.
        sparsity: Fraction of zeros in ``features``.
    """

    layer_index: int
    pre_activation: np.ndarray
    features: np.ndarray
    sparsity: float


class DeepGCN:
    """A deep (optionally residual) GCN built from numpy layers.

    Args:
        num_layers: Number of graph convolution layers.
        in_features: Width of the input features ``X_0``.
        hidden_features: Width of every intermediate feature matrix (deep
            residual GCNs keep it constant, paper Section III-A).
        out_features: Width of the final output (e.g. number of classes).
            Defaults to ``hidden_features``.
        conv: Convolution variant: ``"gcn"``, ``"gin"``, or ``"sage"``.
        residual: Use residual connections (the "modern GCN" configuration).
        normalize: Apply PairNorm before the activation, as deep GCNs do to
            keep activations centred (this is what drives ~50% sparsity).
        seed: Seed for weight initialisation.
    """

    def __init__(
        self,
        num_layers: int,
        in_features: int,
        hidden_features: int,
        out_features: Optional[int] = None,
        conv: str = "gcn",
        residual: bool = True,
        normalize: bool = True,
        seed: int = 0,
    ) -> None:
        if num_layers <= 0:
            raise SimulationError("number of layers must be positive")
        self.num_layers = num_layers
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.out_features = out_features or hidden_features
        self.conv = conv.lower()
        self.residual = residual
        self.normalize = normalize

        rng = np.random.default_rng(seed)
        # Input projection maps the (often very wide and very sparse) input
        # features into the constant hidden width used by all layers.
        self.input_projection = _Linear(in_features, hidden_features, rng)
        self.layers: List[GraphLayer] = [
            make_layer(self.conv, hidden_features, hidden_features, seed=seed + index + 1)
            for index in range(num_layers)
        ]
        self.output_projection = _Linear(hidden_features, self.out_features, rng)

        self._forward_cache: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def forward(
        self, graph: CSRGraph, features: np.ndarray, collect_traces: bool = False
    ) -> np.ndarray:
        """Run the network and return the output logits.

        Args:
            graph: Normalised topology.
            features: ``(num_vertices, in_features)`` input features ``X_0``.
            collect_traces: Also record a :class:`LayerTrace` per layer
                (retrievable via :meth:`traces`).
        """
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (graph.num_vertices, self.in_features):
            raise SimulationError(
                f"expected features of shape {(graph.num_vertices, self.in_features)}, "
                f"got {features.shape}"
            )

        traces: List[LayerTrace] = []
        cache: dict = {"pre_norm": [], "pre_relu": [], "inputs": []}

        state = self.input_projection.forward(features)
        cache["input_state"] = state
        hidden = relu(state)
        for index, layer in enumerate(self.layers):
            cache["inputs"].append(hidden)
            update = layer.forward(graph, hidden)
            if self.residual:
                state = state + update
            else:
                state = update
            cache["pre_norm"].append(state)
            normed = pair_norm(state) if self.normalize else state
            cache["pre_relu"].append(normed)
            hidden = relu(normed)
            if collect_traces:
                traces.append(
                    LayerTrace(
                        layer_index=index,
                        pre_activation=normed,
                        features=hidden,
                        sparsity=measure_sparsity(hidden),
                    )
                )
        logits = self.output_projection.forward(hidden)
        cache["hidden"] = hidden
        self._forward_cache = cache
        self._traces = traces
        return logits

    def traces(self) -> List[LayerTrace]:
        """Layer traces collected by the last ``forward(collect_traces=True)``."""
        return list(getattr(self, "_traces", []))

    def intermediate_sparsities(
        self, graph: CSRGraph, features: np.ndarray
    ) -> List[float]:
        """Per-layer sparsity of the intermediate features for this input."""
        self.forward(graph, features, collect_traces=True)
        return [trace.sparsity for trace in self.traces()]

    def average_sparsity(self, graph: CSRGraph, features: np.ndarray) -> float:
        """Average intermediate feature sparsity across all layers."""
        sparsities = self.intermediate_sparsities(graph, features)
        return float(np.mean(sparsities)) if sparsities else 0.0

    def parameter_count(self) -> int:
        """Total number of trainable parameters in the model."""
        total = self.input_projection.weight.size + self.input_projection.bias.size
        total += self.output_projection.weight.size + self.output_projection.bias.size
        total += sum(layer.parameter_count() for layer in self.layers)
        return total

    # ------------------------------------------------------------------ #
    # Training support (used by repro.gcn.training on tiny graphs)
    # ------------------------------------------------------------------ #
    def backward(self, graph: CSRGraph, grad_logits: np.ndarray) -> None:
        """Backpropagate a gradient with respect to the output logits.

        Gradients are accumulated inside every layer; call :meth:`step` to
        apply them.  The normalisation step is treated as an identity in the
        backward pass (a standard simplification for PairNorm-like
        normalisers on tiny problems); the residual path is exact.
        """
        if self._forward_cache is None:
            raise SimulationError("backward called before forward")
        cache = self._forward_cache

        grad_hidden = self.output_projection.backward(grad_logits)
        grad_state = np.zeros_like(grad_hidden)
        for index in range(self.num_layers - 1, -1, -1):
            # Gradient with respect to S_{index+1}: the activation path plus,
            # for residual networks, the pass-through from deeper layers.
            grad_state = grad_state + grad_hidden * relu_grad(cache["pre_relu"][index])
            grad_hidden = self.layers[index].backward(graph, grad_state)
            if not self.residual:
                grad_state = np.zeros_like(grad_state)
        # Gradient with respect to S_0: the first layer's input (post-ReLU of
        # S_0) plus, with residual connections, the pass-through state path.
        grad_input_state = grad_hidden * relu_grad(cache["input_state"])
        if self.residual:
            grad_input_state = grad_input_state + grad_state
        self.input_projection.backward(grad_input_state)

    def step(self, lr: float) -> None:
        """Apply accumulated gradients to every parameter."""
        self.input_projection.step(lr)
        self.output_projection.step(lr)
        for layer in self.layers:
            layer.step(lr)

    def zero_grad(self) -> None:
        """Clear all accumulated gradients."""
        self.input_projection.zero_grad()
        self.output_projection.zero_grad()
        for layer in self.layers:
            layer.zero_grad()
