"""A small full-batch trainer for node classification on tiny graphs.

The paper trains 28-layer residual GCNs on nine real datasets; the
accelerator experiments consume the sparsity of those trained models.  We
cannot retrain the full-scale models offline, but this trainer lets tests and
examples verify the library's core empirical claims end-to-end on tiny
synthetic graphs:

* residual GCNs train to markedly higher intermediate sparsity than
  traditional GCNs of the same depth (Fig. 2a), and
* the trained sparsity lands in the 40–80% band that BEICSR targets.

The trainer performs full-batch gradient descent with a cross-entropy loss
using the manual backward passes implemented by the layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.gcn.activations import softmax
from repro.gcn.model import DeepGCN
from repro.graphs.graph import CSRGraph


@dataclass
class TrainingResult:
    """Outcome of a training run.

    Attributes:
        model: The trained model.
        losses: Training loss per epoch.
        accuracies: Training accuracy per epoch.
        final_accuracy: Accuracy after the last epoch.
        layer_sparsities: Per-layer intermediate feature sparsity of the
            trained model on the training inputs.
        average_sparsity: Mean of ``layer_sparsities``.
    """

    model: DeepGCN
    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    final_accuracy: float = 0.0
    layer_sparsities: List[float] = field(default_factory=list)
    average_sparsity: float = 0.0


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy loss of ``logits`` against integer ``labels``."""
    probabilities = softmax(logits)
    rows = np.arange(labels.size)
    picked = np.clip(probabilities[rows, labels], 1e-12, 1.0)
    return float(-np.mean(np.log(picked)))


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of the mean cross-entropy with respect to the logits."""
    probabilities = softmax(logits)
    grad = probabilities.copy()
    grad[np.arange(labels.size), labels] -= 1.0
    return grad / labels.size


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy of ``logits`` against integer ``labels``."""
    predictions = logits.argmax(axis=1)
    return float(np.mean(predictions == labels))


def train_node_classifier(
    graph: CSRGraph,
    features: np.ndarray,
    labels: np.ndarray,
    num_layers: int = 4,
    hidden_features: int = 32,
    num_classes: Optional[int] = None,
    conv: str = "gcn",
    residual: bool = True,
    normalize: bool = True,
    epochs: int = 100,
    learning_rate: float = 0.05,
    seed: int = 0,
) -> TrainingResult:
    """Train a deep GCN node classifier with full-batch gradient descent.

    Args:
        graph: Normalised topology.
        features: ``(num_vertices, in_features)`` input features.
        labels: Integer class label per vertex.
        num_layers: Depth of the GCN.
        hidden_features: Hidden width (constant across layers).
        num_classes: Number of classes; inferred from ``labels`` if omitted.
        conv: Convolution variant (``"gcn"``, ``"gin"``, ``"sage"``).
        residual: Use residual connections.
        normalize: Apply PairNorm before activations.
        epochs: Number of gradient descent steps.
        learning_rate: Step size.
        seed: Weight initialisation seed.

    Returns:
        A :class:`TrainingResult` with loss/accuracy history and the trained
        model's intermediate sparsity.
    """
    features = np.asarray(features, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.num_vertices,):
        raise SimulationError("labels must hold one integer class per vertex")
    if epochs <= 0:
        raise SimulationError("epochs must be positive")
    classes = num_classes or int(labels.max()) + 1

    model = DeepGCN(
        num_layers=num_layers,
        in_features=features.shape[1],
        hidden_features=hidden_features,
        out_features=classes,
        conv=conv,
        residual=residual,
        normalize=normalize,
        seed=seed,
    )

    losses: List[float] = []
    accuracies: List[float] = []
    for _ in range(epochs):
        logits = model.forward(graph, features)
        losses.append(cross_entropy(logits, labels))
        accuracies.append(accuracy(logits, labels))
        grad = cross_entropy_grad(logits, labels)
        model.zero_grad()
        model.backward(graph, grad)
        model.step(learning_rate)

    final_logits = model.forward(graph, features, collect_traces=True)
    final_accuracy = accuracy(final_logits, labels)
    sparsities = [trace.sparsity for trace in model.traces()]
    return TrainingResult(
        model=model,
        losses=losses,
        accuracies=accuracies,
        final_accuracy=final_accuracy,
        layer_sparsities=sparsities,
        average_sparsity=float(np.mean(sparsities)) if sparsities else 0.0,
    )


def make_classification_problem(
    graph: CSRGraph,
    num_classes: int = 3,
    feature_width: int = 16,
    label_noise: float = 0.05,
    seed: int = 0,
) -> tuple:
    """Generate a learnable node-classification problem on ``graph``.

    Vertices are assigned classes in contiguous blocks (so graph structure is
    informative), and features are class-indicative with additive noise.

    Returns:
        ``(features, labels)`` arrays.
    """
    if num_classes <= 1:
        raise SimulationError("need at least two classes")
    rng = np.random.default_rng(seed)
    block = max(1, graph.num_vertices // num_classes)
    labels = np.minimum(np.arange(graph.num_vertices) // block, num_classes - 1)

    centroids = rng.normal(0.0, 1.0, size=(num_classes, feature_width))
    features = centroids[labels] + rng.normal(0.0, 0.5, (graph.num_vertices, feature_width))

    flip = rng.random(graph.num_vertices) < label_noise
    labels = labels.copy()
    labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    return features.astype(np.float32), labels.astype(np.int64)
