"""Graph convolution layers implemented with numpy.

Three aggregation variants are provided, matching the paper's evaluation:

* :class:`GCNLayer` — the vanilla GCN of Kipf & Welling: aggregation uses the
  normalised adjacency's edge weights.
* :class:`GINConvLayer` — GIN convolution: unweighted sum aggregation of
  neighbours plus ``(1 + eps)`` times the self feature, followed by an MLP
  (paper Fig. 16a).
* :class:`SAGELayer` — GraphSAGE mean aggregation with separate self and
  neighbour transforms and optional neighbour sampling (paper Fig. 16b).

Every layer supports forward *and* backward passes so the small-graph trainer
(:mod:`repro.gcn.training`) can produce genuinely-trained sparse features on
tiny datasets, which tests and examples use to validate the sparsity claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.gcn.activations import relu, relu_grad
from repro.graphs.graph import CSRGraph


def aggregate(graph: CSRGraph, features: np.ndarray, weighted: bool = True) -> np.ndarray:
    """Compute the aggregation phase ``A_hat @ X`` for all vertices.

    For every source vertex ``v`` the result row is the weighted sum of the
    feature rows of its neighbours — exactly what the accelerator's
    aggregation engines compute one edge at a time.

    Args:
        graph: Topology; ``graph.weights`` holds the normalised adjacency
            values.
        features: ``(num_vertices, width)`` feature matrix ``X``.
        weighted: Use the edge weights (GCN); ``False`` performs an
            unweighted sum (GINConv).
    """
    features = np.asarray(features, dtype=np.float32)
    if features.ndim != 2 or features.shape[0] != graph.num_vertices:
        raise SimulationError(
            "features must be (num_vertices, width); got "
            f"{features.shape} for {graph.num_vertices} vertices"
        )
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    gathered = features[graph.indices]
    if weighted:
        gathered = gathered * graph.weights[:, None]
    out = np.zeros_like(features)
    np.add.at(out, sources, gathered)
    return out


def aggregate_transpose(
    graph: CSRGraph, grad: np.ndarray, weighted: bool = True
) -> np.ndarray:
    """Backward pass of :func:`aggregate`: compute ``A_hat^T @ grad``."""
    grad = np.asarray(grad, dtype=np.float32)
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    scattered = grad[sources]
    if weighted:
        scattered = scattered * graph.weights[:, None]
    out = np.zeros_like(grad)
    np.add.at(out, graph.indices, scattered)
    return out


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float32)


class _Linear:
    """Minimal dense layer with gradient accumulation (internal helper)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.weight = _glorot(rng, in_features, out_features)
        self.bias = np.zeros(out_features, dtype=np.float32)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise SimulationError("backward called before forward")
        self.grad_weight += self._input.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def step(self, lr: float) -> None:
        self.weight -= lr * self.grad_weight
        self.bias -= lr * self.grad_bias
        self.zero_grad()

    def zero_grad(self) -> None:
        self.grad_weight.fill(0.0)
        self.grad_bias.fill(0.0)


class GraphLayer:
    """Common interface of all graph convolution layers."""

    in_features: int
    out_features: int

    def forward(self, graph: CSRGraph, x: np.ndarray) -> np.ndarray:
        """Compute the layer output (pre-activation)."""
        raise NotImplementedError

    def backward(self, graph: CSRGraph, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` and accumulate parameter gradients."""
        raise NotImplementedError

    def step(self, lr: float) -> None:
        """Apply accumulated gradients with learning rate ``lr``."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear accumulated gradients."""
        raise NotImplementedError

    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        raise NotImplementedError


class GCNLayer(GraphLayer):
    """Vanilla GCN convolution: ``Z = A_hat @ X @ W + b``.

    The aggregation-first ordering matches SGCN's execution order (Table I):
    aggregation over the compressed features happens before the combination
    GeMM on the systolic array.
    """

    def __init__(self, in_features: int, out_features: int, seed: int = 0):
        if in_features <= 0 or out_features <= 0:
            raise SimulationError("layer dimensions must be positive")
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.linear = _Linear(in_features, out_features, rng)
        self._aggregated: Optional[np.ndarray] = None

    def forward(self, graph: CSRGraph, x: np.ndarray) -> np.ndarray:
        self._aggregated = aggregate(graph, x, weighted=True)
        return self.linear.forward(self._aggregated)

    def backward(self, graph: CSRGraph, grad_out: np.ndarray) -> np.ndarray:
        grad_agg = self.linear.backward(grad_out)
        return aggregate_transpose(graph, grad_agg, weighted=True)

    def step(self, lr: float) -> None:
        self.linear.step(lr)

    def zero_grad(self) -> None:
        self.linear.zero_grad()

    def parameter_count(self) -> int:
        return self.linear.weight.size + self.linear.bias.size


class GINConvLayer(GraphLayer):
    """GIN convolution: ``Z = MLP((1 + eps) * X + sum_{u in N(v)} X_u)``.

    The aggregation is unweighted (no edge weights are streamed), which is
    why the GINConv experiment in the paper (Fig. 16a) sees a slightly larger
    share of the aggregation traffic going to the feature matrix.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        hidden_features: Optional[int] = None,
        eps: float = 0.0,
        seed: int = 0,
    ):
        if in_features <= 0 or out_features <= 0:
            raise SimulationError("layer dimensions must be positive")
        rng = np.random.default_rng(seed)
        hidden = hidden_features or out_features
        self.in_features = in_features
        self.out_features = out_features
        self.eps = float(eps)
        self.mlp1 = _Linear(in_features, hidden, rng)
        self.mlp2 = _Linear(hidden, out_features, rng)
        self._hidden_pre: Optional[np.ndarray] = None

    def forward(self, graph: CSRGraph, x: np.ndarray) -> np.ndarray:
        self._input = x
        summed = aggregate(graph, x, weighted=False)
        combined = (1.0 + self.eps) * x + summed
        self._hidden_pre = self.mlp1.forward(combined)
        return self.mlp2.forward(relu(self._hidden_pre))

    def backward(self, graph: CSRGraph, grad_out: np.ndarray) -> np.ndarray:
        if self._hidden_pre is None:
            raise SimulationError("backward called before forward")
        grad_hidden = self.mlp2.backward(grad_out) * relu_grad(self._hidden_pre)
        grad_combined = self.mlp1.backward(grad_hidden)
        grad_self = (1.0 + self.eps) * grad_combined
        grad_neighbors = aggregate_transpose(graph, grad_combined, weighted=False)
        return grad_self + grad_neighbors

    def step(self, lr: float) -> None:
        self.mlp1.step(lr)
        self.mlp2.step(lr)

    def zero_grad(self) -> None:
        self.mlp1.zero_grad()
        self.mlp2.zero_grad()

    def parameter_count(self) -> int:
        return (
            self.mlp1.weight.size
            + self.mlp1.bias.size
            + self.mlp2.weight.size
            + self.mlp2.bias.size
        )


class SAGELayer(GraphLayer):
    """GraphSAGE convolution with mean aggregation.

    ``Z = X @ W_self + mean_{u in N(v)}(X_u) @ W_neigh + b``.  The accelerator
    experiments additionally model GraphSAGE's edge sampling, which reduces
    the effective edge count of the aggregation phase (paper Fig. 16b); the
    functional layer here uses the full neighbourhood for exactness but the
    :class:`repro.core.api.LayerWorkload` derived from it applies the sampling
    ratio.
    """

    #: Fraction of edges kept by GraphSAGE's neighbour sampling in the
    #: accelerator workload model (typical fan-out 25 on graphs whose average
    #: degree exceeds it; on the paper's graphs this removes roughly half the
    #: edges of the denser datasets).
    DEFAULT_SAMPLING_FRACTION = 0.5

    def __init__(self, in_features: int, out_features: int, seed: int = 0):
        if in_features <= 0 or out_features <= 0:
            raise SimulationError("layer dimensions must be positive")
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.linear_self = _Linear(in_features, out_features, rng)
        self.linear_neigh = _Linear(in_features, out_features, rng)
        self._degrees: Optional[np.ndarray] = None

    def forward(self, graph: CSRGraph, x: np.ndarray) -> np.ndarray:
        summed = aggregate(graph, x, weighted=False)
        degrees = np.maximum(graph.degrees, 1).astype(np.float32)[:, None]
        self._degrees = degrees
        mean = summed / degrees
        return self.linear_self.forward(x) + self.linear_neigh.forward(mean)

    def backward(self, graph: CSRGraph, grad_out: np.ndarray) -> np.ndarray:
        if self._degrees is None:
            raise SimulationError("backward called before forward")
        grad_self = self.linear_self.backward(grad_out)
        grad_mean = self.linear_neigh.backward(grad_out) / self._degrees
        grad_neighbors = aggregate_transpose(graph, grad_mean, weighted=False)
        return grad_self + grad_neighbors

    def step(self, lr: float) -> None:
        self.linear_self.step(lr)
        self.linear_neigh.step(lr)

    def zero_grad(self) -> None:
        self.linear_self.zero_grad()
        self.linear_neigh.zero_grad()

    def parameter_count(self) -> int:
        return (
            self.linear_self.weight.size
            + self.linear_self.bias.size
            + self.linear_neigh.weight.size
            + self.linear_neigh.bias.size
        )


#: Mapping from convolution name to layer class, used by the model factory.
CONV_TYPES: Dict[str, type] = {
    "gcn": GCNLayer,
    "gin": GINConvLayer,
    "sage": SAGELayer,
}


def make_layer(conv: str, in_features: int, out_features: int, seed: int = 0) -> GraphLayer:
    """Instantiate a convolution layer by name (``"gcn"``, ``"gin"``, ``"sage"``)."""
    key = conv.lower()
    if key not in CONV_TYPES:
        raise SimulationError(
            f"unknown convolution {conv!r}; available: {sorted(CONV_TYPES)}"
        )
    return CONV_TYPES[key](in_features, out_features, seed=seed)
