"""Activation and normalisation functions used by the GCN layers.

The intermediate feature sparsity that SGCN exploits is produced by the ReLU
activation: with (pair-)normalised pre-activations centred near zero, roughly
half of the outputs become exact zeros (paper Section VII-B).  These are plain
numpy functions so that both the functional model and the training loop can
use them.
"""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Gradient mask of ReLU with respect to its input (1 where x > 0)."""
    return (x > 0.0).astype(x.dtype)


def pair_norm(x: np.ndarray, scale: float = 1.0, eps: float = 1e-6) -> np.ndarray:
    """PairNorm-style feature normalisation used by deep GCNs.

    Deep residual GCNs (DeepGCN / DeeperGCN) interleave a normalisation step
    with the activation so that feature magnitudes neither explode nor vanish
    over tens of layers.  PairNorm first centres the features across the node
    dimension and then rescales every row to (approximately) unit norm.
    Centring the pre-activations is also what pushes the post-ReLU sparsity
    towards ~50%.

    Args:
        x: ``(num_nodes, width)`` feature matrix.
        scale: Target row norm.
        eps: Numerical floor for the row norms.
    """
    centered = x - x.mean(axis=0, keepdims=True)
    row_norms = np.sqrt(np.mean(np.square(centered), axis=1, keepdims=True)) + eps
    return scale * centered / row_norms


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def dropout_mask(
    shape: tuple, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Return an inverted-dropout mask (scaled so expectation is preserved)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must lie in [0, 1)")
    if rate == 0.0:
        return np.ones(shape, dtype=np.float32)
    keep = (rng.random(shape) >= rate).astype(np.float32)
    return keep / (1.0 - rate)
