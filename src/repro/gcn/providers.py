"""Sparsity providers: the bridge between the GCN stack and the accelerator.

SGCN's premise is that the *measured* intermediate-feature sparsity of deep
residual GCNs — heterogeneous across rows, slices, and layers — is what the
compressed feature formats exploit.  Historically the accelerator pipeline
consumed only a synthetic profile (one average per layer, per-row counts drawn
from a normal distribution), while the working :class:`~repro.gcn.model.DeepGCN`
stack and the format-side hooks that could consume real tables
(``FeatureLayout.build_layout(row_nnz, ..., slice_nnz)``) sat disconnected.

A :class:`SparsityProvider` closes that loop.  It answers two questions for
the phase pipeline:

1. :meth:`~SparsityProvider.layer_profile` — the per-layer sparsity profile
   the workloads are built from (``None`` = keep the dataset's own synthetic
   profile);
2. :meth:`~SparsityProvider.layer_tables` — the per-row non-zero counts (and,
   for sliced formats, the per-slice counts) of one layer's input features,
   which :meth:`~repro.formats.base.FeatureFormat.build_layout` turns into the
   per-row transfer tables the cache replay consumes.

Two backends:

* :class:`SyntheticSparsityProvider` — the historical behaviour, byte for
  byte: profile from :func:`~repro.gcn.sparsity.layer_sparsity_profile`,
  per-row counts from :func:`~repro.gcn.sparsity.row_nonzero_distribution`,
  no per-slice table (formats split rows evenly).
* :class:`MeasuredSparsityProvider` — trains/forwards a
  :class:`~repro.gcn.model.DeepGCN` on the dataset's actual (scaled)
  topology, harvests the non-zero *masks* of every intermediate feature
  matrix, and serves per-layer x per-row x per-slice tables measured from
  them, so formats see heterogeneous rows instead of one assumed average.

Measured-mode calibration: the scaled synthetic graphs and tiny training
budgets cannot literally retrain the paper's full-scale models, so the
measured activations are thresholded at the quantile that lands each layer on
a calibrated target profile — the dataset's published Table II average,
scaled across depth and residual configurations by the Fig. 1 / Fig. 2a model
:func:`~repro.gcn.sparsity.sparsity_vs_depth`.  The *level* is calibrated;
the row/slice/layer *heterogeneity* is measured.  ``calibrate=False`` serves
the raw post-ReLU masks instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError, SparsityHarvestError
from repro.gcn.model import DeepGCN
from repro.memory.replay import TraceCache
from repro.gcn.sparsity import (
    layer_sparsity_profile,
    per_slice_nonzeros,
    row_nonzero_distribution,
    sparsity_vs_depth,
)
from repro.gcn.training import make_classification_problem, train_node_classifier
from repro.resilience.faults import fault_point
from repro.telemetry.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.datasets import Dataset
    from repro.graphs.graph import CSRGraph

#: Sparsity modes accepted by the ``RunSpec.sparsity`` axis / ``--sparsity``:
#: ``synthetic`` (the calibrated profile, identical to leaving the axis
#: unset), ``measured`` (residual DeepGCN, the paper's configuration), and
#: ``measured-traditional`` (no residual connections — the low-sparsity
#: "Traditional" curve of Fig. 1 / Fig. 2a).
SPARSITY_MODES: Tuple[str, ...] = ("synthetic", "measured", "measured-traditional")

#: Accepted alias spellings of the canonical modes.
_MODE_ALIASES: Dict[str, str] = {
    "measured-residual": "measured",
    "traditional": "measured-traditional",
}

#: Input feature width cap of the measured DeepGCN driver.  The provider
#: measures *intermediate* feature sparsity; the (often 10k+-wide) published
#: input widths only size the input projection, so they are capped to keep a
#: harvest proportional to the network itself.
MEASURED_INPUT_WIDTH_CAP = 64

#: Full-batch training epochs of the measured harvest (kept small: the
#: heterogeneity comes from forwarding the trained weights, and the level is
#: calibrated — see the module docstring).
MEASURED_EPOCHS = 2

#: Classes of the synthetic node-classification problem the harvest trains on.
MEASURED_NUM_CLASSES = 4


def fold_sparsity_mode(mode: str) -> str:
    """Case/alias-fold a sparsity-mode spelling without validating it.

    Unknown spellings pass through folded, so callers that normalise early
    (e.g. :class:`~repro.core.runspec.RunSpec`) can still reject them later
    with a precise error.
    """
    key = mode.strip().lower().replace("_", "-")
    return _MODE_ALIASES.get(key, key)


def resolve_sparsity_mode(mode: Optional[str]) -> Optional[str]:
    """Canonical spelling of a sparsity mode (``None`` passes through).

    Raises :class:`ConfigurationError` for unknown modes.
    """
    if mode is None:
        return None
    key = fold_sparsity_mode(mode)
    if key not in SPARSITY_MODES:
        raise ConfigurationError(
            f"unknown sparsity mode {mode!r}; supported: "
            f"{', '.join(SPARSITY_MODES)}"
        )
    return key


def depth_scaled_average_sparsity(
    base_average: float, num_layers: int, residual: bool
) -> float:
    """Calibration target for a ``(depth, residual)`` configuration.

    Scales a dataset's published 28-layer-residual average (Table II) by the
    Fig. 1 / Fig. 2a model :func:`~repro.gcn.sparsity.sparsity_vs_depth`:
    at the paper's operating point (28 layers, residual) the target is the
    published value exactly; shallower or non-residual configurations scale
    down along the model's curve.
    """
    reference = sparsity_vs_depth(28, True)
    point = sparsity_vs_depth(num_layers, residual)
    return float(np.clip(base_average * point / reference, 0.02, 0.90))


# --------------------------------------------------------------------------- #
# Provider interface
# --------------------------------------------------------------------------- #
class SparsityProvider:
    """Source of the per-layer / per-row / per-slice sparsity of a run."""

    #: Registry-style name (``"synthetic"`` / ``"measured"`` / ...).
    name: str = "abstract"

    def layer_profile(self, dataset: "Dataset") -> Optional[List[float]]:
        """Per-layer sparsity profile for ``dataset``.

        ``None`` keeps the dataset's own (synthetic) profile — the pipeline
        then behaves exactly as it did before providers existed.
        """
        raise NotImplementedError

    def layer_tables(
        self,
        dataset: "Dataset",
        layer_index: int,
        num_rows: int,
        width: int,
        sparsity: float,
        slice_size: Optional[int],
        seed: int,
        graph: Optional["CSRGraph"] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Per-row (and optionally per-slice) non-zero counts of one layer.

        Args:
            dataset: The dataset the run executes on.
            layer_index: The *workload* layer index whose input features are
                described (always >= 1: the first layer's given inputs never
                need a table).
            num_rows: Rows of the feature matrix (vertices of the graph the
                schedule walks).
            width: Feature width of the layer's input.
            sparsity: The workload's input sparsity (the profile value).
            slice_size: Unit slice size of the consuming format, or ``None``
                for formats without per-slice metadata.
            seed: The run's sparsity seed.
            graph: The graph the schedule actually walks.  Designs that
                reorder (I-GCN islandization) or transpose (column-product)
                the topology relabel vertex ids, so row tables must be
                indexed by the *walked* graph's ids — measured providers
                harvest on this graph; ``None`` means the dataset's own.

        Returns:
            ``(row_nnz, slice_nnz)`` — ``slice_nnz`` is ``None`` when the
            provider has no per-slice information (the format then splits
            rows evenly, the historical behaviour).
        """
        raise NotImplementedError


class SyntheticSparsityProvider(SparsityProvider):
    """The historical synthetic behaviour, byte-identical to no provider."""

    name = "synthetic"

    def layer_profile(self, dataset: "Dataset") -> Optional[List[float]]:
        return None  # keep the dataset's own calibrated profile

    def layer_tables(
        self,
        dataset: "Dataset",
        layer_index: int,
        num_rows: int,
        width: int,
        sparsity: float,
        slice_size: Optional[int],
        seed: int,
        graph: Optional["CSRGraph"] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        row_nnz = row_nonzero_distribution(
            num_rows=num_rows,
            width=width,
            sparsity=sparsity,
            seed=seed + layer_index,
        )
        return row_nnz, None


# --------------------------------------------------------------------------- #
# Measured backend
# --------------------------------------------------------------------------- #
@dataclass
class MeasuredSparsity:
    """One harvested measurement: the trained model plus its non-zero masks.

    Attributes:
        model: The (trained) :class:`DeepGCN` the masks were measured from.
        masks: One boolean ``(num_vertices, hidden_width)`` non-zero mask per
            layer's *output* features (``masks[l]`` describes ``X_{l+1}``,
            the input of workload layer ``l + 1``).
        profile: Fraction of zeros of every mask (the measured per-layer
            sparsity profile).
        final_accuracy: Training accuracy of the harvest run (diagnostics).
    """

    model: DeepGCN
    masks: List[np.ndarray]
    profile: List[float]
    final_accuracy: float = 0.0
    _slice_tables: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict, repr=False
    )

    def row_nnz(self, layer: int) -> np.ndarray:
        """Per-row non-zero counts of layer ``layer``'s output features."""
        return np.count_nonzero(self.masks[layer], axis=1).astype(np.int64)

    def slice_nnz(self, layer: int, slice_size: int) -> np.ndarray:
        """Per-slice non-zero counts of layer ``layer`` (memoized)."""
        key = (layer, int(slice_size))
        cached = self._slice_tables.get(key)
        if cached is None:
            cached = per_slice_nonzeros(self.masks[layer], int(slice_size))
            self._slice_tables[key] = cached
        return cached

    def structure_bytes(self) -> int:
        """Approximate footprint of the harvested masks and slice tables.

        Feeds the resident-bytes gauge of the owning
        :class:`MeasuredSparsityCache` (the trained model's weights are small
        next to the per-vertex masks and are not itemised).
        """
        return int(
            sum(mask.nbytes for mask in self.masks)
            + sum(table.nbytes for table in self._slice_tables.values())
        )


class MeasuredSparsityCache(TraceCache):
    """LRU memo of :class:`MeasuredSparsity` harvests.

    A harvest (training + forwarding a DeepGCN) is the expensive part of a
    measured-mode run; a :class:`~repro.core.session.Session` owns one of
    these alongside its :class:`~repro.memory.replay.TraceCache` so sweeps
    over accelerators / cache sizes / formats train each
    ``(topology, depth, residual, seed)`` cell once.  The LRU mechanics are
    :class:`~repro.memory.replay.TraceCache`'s; only the default capacity
    (each entry holds a trained model plus its masks) and counter-resetting
    :meth:`clear` differ.
    """

    def __init__(self, max_entries: int = 8) -> None:
        super().__init__(max_entries=max_entries)

    def clear(self) -> None:
        """Drop every memoized harvest (counters included)."""
        super().clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class MeasuredSparsityProvider(SparsityProvider):
    """Measure sparsity by training/forwarding a DeepGCN on the topology.

    Args:
        residual: Use residual connections (the paper's "modern GCN"
            configuration).  ``False`` is the Fig. 1 / Fig. 2a "Traditional"
            curve.
        epochs: Full-batch training epochs of the harvest (0 = forward-only
            through the randomly-initialised model).
        calibrate: Threshold the measured activations so each layer's mean
            sparsity lands on the calibrated target profile (see the module
            docstring).  ``False`` serves the raw post-ReLU masks.
        cache: Optional shared :class:`MeasuredSparsityCache`; a private one
            is created when omitted.
    """

    def __init__(
        self,
        residual: bool = True,
        epochs: int = MEASURED_EPOCHS,
        calibrate: bool = True,
        cache: Optional[MeasuredSparsityCache] = None,
    ) -> None:
        if epochs < 0:
            raise ConfigurationError("epochs must be non-negative")
        self.residual = residual
        self.epochs = epochs
        self.calibrate = calibrate
        self.cache = cache if cache is not None else MeasuredSparsityCache()
        self.name = "measured" if residual else "measured-traditional"

    # ------------------------------------------------------------------ #
    def measure(
        self, dataset: "Dataset", graph: Optional["CSRGraph"] = None
    ) -> MeasuredSparsity:
        """The (memoized) harvest for one topology at ``dataset``'s depth.

        ``graph`` defaults to the dataset's own topology; schedules that
        walk a derived graph (reordered / transposed) pass that graph so
        the harvested rows carry the ids the access trace uses.
        """
        graph = dataset.graph if graph is None else graph
        key = (
            graph.fingerprint(),
            int(dataset.num_layers),
            int(dataset.hidden_width),
            bool(self.residual),
            int(self.epochs),
            bool(self.calibrate),
            int(dataset.seed),
        )
        def build() -> MeasuredSparsity:
            # The harvest (training + forwarding + calibration) is the
            # expensive part of a measured-mode run; time it only when the
            # memo actually misses.
            with span("sparsity_harvest"):
                try:
                    return self._harvest(dataset, graph)
                except Exception as exc:  # noqa: BLE001 — re-typed, never swallowed
                    raise SparsityHarvestError(
                        f"measured-sparsity harvest failed for dataset "
                        f"{dataset.name!r} ({type(exc).__name__}: {exc})"
                    ) from exc

        return self.cache.get(key, build)

    def _harvest(self, dataset: "Dataset", graph: "CSRGraph") -> MeasuredSparsity:
        input_width = int(
            min(dataset.input_feature_width, MEASURED_INPUT_WIDTH_CAP)
        )
        features, labels = make_classification_problem(
            graph,
            num_classes=MEASURED_NUM_CLASSES,
            feature_width=input_width,
            seed=dataset.seed,
        )
        final_accuracy = 0.0
        fault_point("gcn:train")
        with span("gcn_train"):
            if self.epochs > 0:
                trained = train_node_classifier(
                    graph,
                    features,
                    labels,
                    num_layers=dataset.num_layers,
                    hidden_features=dataset.hidden_width,
                    num_classes=MEASURED_NUM_CLASSES,
                    residual=self.residual,
                    normalize=True,
                    epochs=self.epochs,
                    seed=dataset.seed,
                )
                model = trained.model
                final_accuracy = trained.final_accuracy
            else:
                model = DeepGCN(
                    num_layers=dataset.num_layers,
                    in_features=input_width,
                    hidden_features=dataset.hidden_width,
                    out_features=MEASURED_NUM_CLASSES,
                    residual=self.residual,
                    normalize=True,
                    seed=dataset.seed,
                )
                model.forward(graph, features, collect_traces=True)
        traces = model.traces()
        if len(traces) != dataset.num_layers:
            raise SimulationError(
                f"measured harvest produced {len(traces)} layer traces for a "
                f"{dataset.num_layers}-layer dataset"
            )

        if self.calibrate:
            target_average = depth_scaled_average_sparsity(
                dataset.intermediate_sparsity, dataset.num_layers, self.residual
            )
            targets = layer_sparsity_profile(
                num_layers=dataset.num_layers,
                average_sparsity=target_average,
                seed=dataset.seed,
            )
            # ReLU zeroes everything below 0; calibration zeroes everything
            # below the quantile that lands the layer on its target, keeping
            # the measured row/slice heterogeneity while pinning the level.
            masks = [
                trace.pre_activation > np.quantile(trace.pre_activation, target)
                for trace, target in zip(traces, targets)
            ]
        else:
            masks = [trace.features != 0 for trace in traces]
        profile = [float(1.0 - mask.mean()) for mask in masks]
        # Only the boolean masks are consumed from here on; drop the
        # harvest's float layer traces and backward cache so a memoized
        # entry holds the trained weights + masks, not 2 x num_layers dense
        # activation matrices.
        model._traces = []
        model._forward_cache = None
        return MeasuredSparsity(
            model=model,
            masks=masks,
            profile=profile,
            final_accuracy=final_accuracy,
        )

    # ------------------------------------------------------------------ #
    def layer_profile(self, dataset: "Dataset") -> Optional[List[float]]:
        return list(self.measure(dataset).profile)

    def layer_tables(
        self,
        dataset: "Dataset",
        layer_index: int,
        num_rows: int,
        width: int,
        sparsity: float,
        slice_size: Optional[int],
        seed: int,
        graph: Optional["CSRGraph"] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if layer_index < 1:
            raise SimulationError(
                "measured layer tables describe intermediate features; "
                "the first layer's given inputs have no table"
            )
        measured = self.measure(dataset, graph)
        # masks[l] holds X_{l+1}, the input features of workload layer l + 1.
        mask_index = layer_index - 1
        if mask_index >= len(measured.masks):
            raise SimulationError(
                f"layer index {layer_index} out of range for a "
                f"{len(measured.masks)}-layer measurement"
            )
        mask = measured.masks[mask_index]
        if mask.shape != (num_rows, width):
            raise SimulationError(
                f"measured mask of shape {mask.shape} cannot describe a "
                f"({num_rows}, {width}) feature matrix; measured sparsity "
                "requires the run's hidden width and vertex count to match "
                "the harvested model"
            )
        row_nnz = measured.row_nnz(mask_index)
        slice_nnz = (
            measured.slice_nnz(mask_index, slice_size)
            if slice_size
            else None
        )
        return row_nnz, slice_nnz


def make_sparsity_provider(
    mode: str, cache: Optional[MeasuredSparsityCache] = None
) -> SparsityProvider:
    """Build the provider for a canonical sparsity mode.

    Args:
        mode: One of :data:`SPARSITY_MODES` (aliases accepted).
        cache: Shared harvest memo for the measured backends.
    """
    canonical = resolve_sparsity_mode(mode)
    if canonical is None:
        raise ConfigurationError("sparsity mode must not be None")
    if canonical == "synthetic":
        return SyntheticSparsityProvider()
    return MeasuredSparsityProvider(
        residual=(canonical == "measured"), cache=cache
    )


__all__ = [
    "MEASURED_EPOCHS",
    "MEASURED_INPUT_WIDTH_CAP",
    "MeasuredSparsity",
    "MeasuredSparsityCache",
    "MeasuredSparsityProvider",
    "SPARSITY_MODES",
    "SparsityProvider",
    "SyntheticSparsityProvider",
    "depth_scaled_average_sparsity",
    "fold_sparsity_mode",
    "make_sparsity_provider",
    "resolve_sparsity_mode",
]
