"""Intermediate feature sparsity: measurement and synthesis.

Two use cases:

1. *Measurement* — given actual feature matrices produced by the numpy GCN
   models, compute their sparsity (fraction of exact zeros) per layer.  Used
   by examples, tests, and the small-graph experiments.
2. *Synthesis* — the paper's headline results use 28-layer residual GCNs
   trained on nine real datasets.  We cannot retrain those offline, so the
   accelerator experiments consume *synthetic sparsity profiles* calibrated
   to the published numbers: the average per-dataset sparsity of Table II and
   the per-layer trend of Fig. 2b (sparsity rises towards the output layer),
   and Fig. 1 / Fig. 2a's dependence on depth and residual connections.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
def measure_sparsity(matrix: np.ndarray) -> float:
    """Fraction of exactly-zero entries in ``matrix``."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix == 0) / matrix.size)


def per_row_nonzeros(matrix: np.ndarray) -> np.ndarray:
    """Number of non-zero entries in every row of a 2-D feature matrix."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise SimulationError("feature matrix must be two-dimensional")
    return np.count_nonzero(matrix, axis=1).astype(np.int64)


def per_slice_nonzeros(matrix: np.ndarray, slice_size: int) -> np.ndarray:
    """Non-zero count of every ``slice_size``-wide slice of every row.

    Returns an array of shape ``(rows, num_slices)`` where the last slice may
    cover fewer than ``slice_size`` columns.

    Implemented as a single pad-and-reshape ``count_nonzero`` (the Python
    loop over slices is kept as :func:`per_slice_nonzeros_reference`, pinned
    equal by a randomized test); this sits on the
    ``FeatureLayout.layout_for_matrix`` path that every measured-sparsity run
    hits once per layer.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise SimulationError("feature matrix must be two-dimensional")
    if slice_size <= 0:
        raise SimulationError("slice size must be positive")
    rows, width = matrix.shape
    num_slices = (width + slice_size - 1) // slice_size
    nonzero = matrix != 0
    pad = num_slices * slice_size - width
    if pad:
        nonzero = np.concatenate(
            [nonzero, np.zeros((rows, pad), dtype=bool)], axis=1
        )
    return np.count_nonzero(
        nonzero.reshape(rows, num_slices, slice_size), axis=2
    ).astype(np.int64)


def per_slice_nonzeros_reference(matrix: np.ndarray, slice_size: int) -> np.ndarray:
    """Loop-over-slices reference implementation of :func:`per_slice_nonzeros`.

    Kept (like the ``*_reference`` twins of the trace engine) as the ground
    truth the vectorized version is pinned against.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise SimulationError("feature matrix must be two-dimensional")
    if slice_size <= 0:
        raise SimulationError("slice size must be positive")
    rows, width = matrix.shape
    num_slices = (width + slice_size - 1) // slice_size
    counts = np.zeros((rows, num_slices), dtype=np.int64)
    for index in range(num_slices):
        start = index * slice_size
        stop = min(width, start + slice_size)
        counts[:, index] = np.count_nonzero(matrix[:, start:stop], axis=1)
    return counts


# --------------------------------------------------------------------------- #
# Synthesis
# --------------------------------------------------------------------------- #
def layer_sparsity_profile(
    num_layers: int,
    average_sparsity: float,
    rise: float = 0.12,
    noise: float = 0.02,
    seed: Optional[int] = 0,
    floor: float = 0.05,
    ceiling: float = 0.90,
) -> List[float]:
    """Per-layer sparsity profile averaging ``average_sparsity``.

    Matches the qualitative shape of paper Fig. 2b: sparsity generally rises
    towards the output layer (the network finds increasingly disentangled
    representations) with small per-layer fluctuations.

    Args:
        num_layers: Number of layers.
        average_sparsity: Target mean of the profile.
        rise: Total increase from the first to the last layer.
        noise: Standard deviation of per-layer fluctuations.
        seed: RNG seed; ``None`` disables the noise.
        floor: Minimum allowed per-layer sparsity.
        ceiling: Maximum allowed per-layer sparsity.

    Returns:
        A list of ``num_layers`` sparsity values in ``[floor, ceiling]`` whose
        mean is ``average_sparsity`` (to ~1e-12, whenever the target itself
        lies in ``[floor, ceiling]``; targets outside the band saturate at
        the nearest bound, which is the closest achievable mean).
    """
    if num_layers <= 0:
        raise SimulationError("number of layers must be positive")
    if not 0.0 <= average_sparsity <= 1.0:
        raise SimulationError("average sparsity must lie in [0, 1]")

    if num_layers == 1:
        trend = np.zeros(1)
    else:
        trend = np.linspace(-rise / 2.0, rise / 2.0, num_layers)
    profile = average_sparsity + trend
    if seed is not None and noise > 0:
        rng = np.random.default_rng(seed)
        profile = profile + rng.normal(0.0, noise, size=num_layers)
    profile = np.clip(profile, floor, ceiling)

    # Re-centre the mean after clipping so the average matches Table II.  A
    # single recentre-then-clip pass drifts whenever the correction pushes
    # layers into the floor/ceiling (the clipped layers absorb less than
    # their share), so the residual error is redistributed over the layers
    # that still have headroom until the mean converges.  When nothing
    # clips, the first pass is exact and the loop is a no-op, keeping the
    # historical profiles (and every cached scenario_id built on them)
    # byte-identical.
    correction = average_sparsity - profile.mean()
    profile = np.clip(profile + correction, floor, ceiling)
    for _ in range(8 * num_layers):
        error = average_sparsity - profile.mean()
        if abs(error) <= 1e-12:
            break
        free = profile < ceiling if error > 0 else profile > floor
        count = int(np.count_nonzero(free))
        if count == 0:
            break  # target outside [floor, ceiling]: saturated at a bound
        profile[free] = np.clip(
            profile[free] + error * num_layers / count, floor, ceiling
        )
    return [float(value) for value in profile]


def sparsity_vs_depth(
    num_layers: int,
    residual: bool,
    base_sparsity: float = 0.15,
    residual_sparsity: float = 0.52,
    depth_gain: float = 0.055,
    max_sparsity: float = 0.72,
) -> float:
    """Average intermediate sparsity as a function of depth (Fig. 1 / Fig. 2a).

    Traditional GCNs (no residual connections) stay at low sparsity
    (~5–30%) regardless of depth — and do not converge at all beyond a few
    layers.  Residual GCNs jump above 50% sparsity as soon as the residual
    connection is added and become sparser as the network deepens, saturating
    around 70%.

    Args:
        num_layers: Network depth.
        residual: Whether residual connections are used.
        base_sparsity: Sparsity of a shallow traditional GCN.
        residual_sparsity: Sparsity of a shallow residual GCN.
        depth_gain: Additional sparsity per doubling of depth (residual only).
        max_sparsity: Saturation level.
    """
    if num_layers <= 0:
        raise SimulationError("number of layers must be positive")
    if not residual:
        # Slight increase with depth, but the network stops learning, so the
        # sparsity stays low (Fig. 2a "Traditional").
        return float(min(0.30, base_sparsity + 0.01 * np.log2(max(num_layers, 1))))
    depth_factor = np.log2(max(num_layers, 2) / 2.0)
    return float(min(max_sparsity, residual_sparsity + depth_gain * depth_factor))


def synthetic_feature_matrix(
    num_rows: int,
    width: int,
    sparsity: float,
    seed: Optional[int] = 0,
    correlated: bool = False,
) -> np.ndarray:
    """Generate a dense feature matrix with the requested sparsity.

    Non-zero values are positive (post-ReLU) and drawn from a half-normal
    distribution.  When ``correlated`` is true, neighbouring rows share part
    of their non-zero pattern, mimicking the neighbour similarity of real
    features.

    Args:
        num_rows: Number of feature rows (vertices).
        width: Feature width.
        sparsity: Target fraction of zero entries in [0, 1].
        seed: RNG seed.
        correlated: Correlate the zero pattern of adjacent rows.
    """
    if num_rows <= 0 or width <= 0:
        raise SimulationError("feature matrix dimensions must be positive")
    if not 0.0 <= sparsity <= 1.0:
        raise SimulationError("sparsity must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    values = np.abs(rng.normal(0.0, 1.0, size=(num_rows, width))).astype(np.float32)

    if correlated:
        pattern = rng.random(width)
        row_shift = rng.normal(0.0, 0.08, size=(num_rows, 1))
        keep_score = pattern[None, :] + row_shift + rng.normal(0, 0.05, (num_rows, width))
        threshold = np.quantile(keep_score, sparsity)
        mask = keep_score >= threshold
    else:
        mask = rng.random((num_rows, width)) >= sparsity
    return values * mask


def sparsify_to_target(
    matrix: np.ndarray, sparsity: float, seed: Optional[int] = 0
) -> np.ndarray:
    """Zero out the smallest-magnitude entries of ``matrix`` to hit ``sparsity``.

    Used to project real activations onto an exact target sparsity when the
    experiments need a controlled sweep (Fig. 19).
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    if not 0.0 <= sparsity <= 1.0:
        raise SimulationError("sparsity must lie in [0, 1]")
    if matrix.size == 0 or sparsity == 0.0:
        return matrix.copy()
    flat = np.abs(matrix).ravel()
    threshold = np.quantile(flat, sparsity)
    result = matrix.copy()
    result[np.abs(result) <= threshold] = 0.0
    # If ties at the threshold removed too many values, randomly restore some.
    target_zeros = int(round(sparsity * matrix.size))
    zeros = np.flatnonzero(result == 0)
    if zeros.size > target_zeros and seed is not None:
        rng = np.random.default_rng(seed)
        restore = rng.choice(zeros, size=zeros.size - target_zeros, replace=False)
        flat_src = matrix.ravel()
        flat_dst = result.ravel()
        flat_dst[restore] = np.where(
            flat_src[restore] == 0.0, 1e-6, flat_src[restore]
        )
        result = flat_dst.reshape(matrix.shape)
    return result


def expected_nonzeros_per_row(width: int, sparsity: float) -> float:
    """Expected number of non-zeros in a feature row of ``width`` columns."""
    if width <= 0:
        raise SimulationError("width must be positive")
    if not 0.0 <= sparsity <= 1.0:
        raise SimulationError("sparsity must lie in [0, 1]")
    return width * (1.0 - sparsity)


def row_nonzero_distribution(
    num_rows: int,
    width: int,
    sparsity: float,
    variability: float = 0.15,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Sample per-row non-zero counts around the expected value.

    The accelerator models often only need per-row non-zero counts rather
    than full matrices (the traffic depends on counts, not values).  Rows
    vary around the mean with relative standard deviation ``variability``,
    matching the paper's observation that per-slice counts have small
    variance with a few outliers (Section V-B).
    """
    if num_rows <= 0:
        raise SimulationError("num_rows must be positive")
    mean = expected_nonzeros_per_row(width, sparsity)
    rng = np.random.default_rng(seed)
    counts = rng.normal(mean, variability * max(mean, 1.0), size=num_rows)
    return np.clip(np.round(counts), 0, width).astype(np.int64)
