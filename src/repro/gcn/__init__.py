"""GCN substrate: layers, deep residual models, sparsity tooling, training."""

from __future__ import annotations

from repro.gcn.activations import relu, relu_grad, pair_norm, softmax, log_softmax
from repro.gcn.layers import GCNLayer, GINConvLayer, SAGELayer, aggregate
from repro.gcn.model import DeepGCN, LayerTrace
from repro.gcn.providers import (
    SPARSITY_MODES,
    MeasuredSparsity,
    MeasuredSparsityCache,
    MeasuredSparsityProvider,
    SparsityProvider,
    SyntheticSparsityProvider,
    depth_scaled_average_sparsity,
    make_sparsity_provider,
    resolve_sparsity_mode,
)
from repro.gcn.sparsity import (
    measure_sparsity,
    per_row_nonzeros,
    per_slice_nonzeros,
    per_slice_nonzeros_reference,
    layer_sparsity_profile,
    sparsity_vs_depth,
    synthetic_feature_matrix,
    sparsify_to_target,
)
from repro.gcn.training import TrainingResult, train_node_classifier

__all__ = [
    "relu",
    "relu_grad",
    "pair_norm",
    "softmax",
    "log_softmax",
    "GCNLayer",
    "GINConvLayer",
    "SAGELayer",
    "aggregate",
    "DeepGCN",
    "LayerTrace",
    "measure_sparsity",
    "per_row_nonzeros",
    "per_slice_nonzeros",
    "per_slice_nonzeros_reference",
    "layer_sparsity_profile",
    "sparsity_vs_depth",
    "synthetic_feature_matrix",
    "sparsify_to_target",
    "SPARSITY_MODES",
    "MeasuredSparsity",
    "MeasuredSparsityCache",
    "MeasuredSparsityProvider",
    "SparsityProvider",
    "SyntheticSparsityProvider",
    "depth_scaled_average_sparsity",
    "make_sparsity_provider",
    "resolve_sparsity_mode",
    "TrainingResult",
    "train_node_classifier",
]
