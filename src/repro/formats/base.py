"""Common interfaces of the feature compression formats.

Each format plays two roles:

1. **Functional** — :meth:`FeatureFormat.encode` / :meth:`FeatureFormat.decode`
   convert a dense numpy feature matrix to the format's in-memory
   representation and back.  Round-tripping must be lossless; the unit and
   property tests rely on this to establish correctness.
2. **Performance** — :meth:`FeatureFormat.build_layout` produces a
   :class:`FeatureLayout`, a description of where every feature row lives in
   (simulated) DRAM and how many cachelines a read or write of that row
   touches.  The accelerator models replay aggregation traces against these
   layouts through the cache simulator, which is how the memory-traffic
   differences between Dense, CSR, COO, BSR, Blocked Ellpack, and BEICSR
   (paper Fig. 3 and Fig. 19) arise.

Addresses are expressed in units of cachelines (64 bytes).  A layout places
its arrays at distinct base addresses so that, for formats with separate
index arrays (CSR's row pointers and column indices), index traffic competes
for cache space with value traffic exactly as it would in hardware.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import FormatError

#: Cacheline size in bytes (also the DRAM access granularity we model).
CACHELINE_BYTES = 64

#: Bytes per feature element (32-bit fixed point, Table III).
ELEMENT_BYTES = 4


def bytes_to_lines(num_bytes: int, line_bytes: int = CACHELINE_BYTES) -> int:
    """Number of cachelines needed to hold ``num_bytes`` (ceiling division)."""
    if num_bytes < 0:
        raise FormatError("byte count must be non-negative")
    return (num_bytes + line_bytes - 1) // line_bytes


def span_lines(start_byte: int, num_bytes: int, line_bytes: int = CACHELINE_BYTES) -> range:
    """Cacheline indices touched by an access of ``num_bytes`` at ``start_byte``.

    Unaligned accesses straddle one extra line; this helper is what makes the
    misalignment penalty of packed variable-length formats appear naturally.
    """
    if num_bytes <= 0:
        return range(0)
    first = start_byte // line_bytes
    last = (start_byte + num_bytes - 1) // line_bytes
    return range(first, last + 1)


def span_line_counts(
    start_bytes: np.ndarray, num_bytes: np.ndarray, line_bytes: int = CACHELINE_BYTES
) -> np.ndarray:
    """Vectorized line count of :func:`span_lines` for arrays of accesses."""
    start_bytes = np.asarray(start_bytes, dtype=np.int64)
    num_bytes = np.asarray(num_bytes, dtype=np.int64)
    last = (start_bytes + num_bytes - 1) // line_bytes
    first = start_bytes // line_bytes
    return np.where(num_bytes > 0, last - first + 1, 0)


@dataclass
class EncodedFeatures:
    """A feature matrix encoded into a specific format.

    Attributes:
        format_name: Name of the producing format.
        shape: Original dense shape ``(rows, width)``.
        arrays: Named numpy arrays making up the encoded representation
            (e.g. ``{"values": ..., "bitmaps": ...}``).
        metadata: Format-specific scalars (block sizes, slice size, ...).
    """

    format_name: str
    shape: tuple
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def storage_bytes(self) -> int:
        """Total bytes of all component arrays (capacity, not traffic)."""
        return int(sum(array.nbytes for array in self.arrays.values()))


class FeatureLayout(ABC):
    """Memory layout of a feature matrix in a given format.

    A layout knows, for every feature row, which cachelines a read touches
    and how many bytes a (compressed) write produces.  Rows are identified by
    their vertex id.
    """

    def __init__(self, num_rows: int, width: int, base_line: int = 0) -> None:
        if num_rows <= 0 or width <= 0:
            raise FormatError("layout dimensions must be positive")
        self.num_rows = num_rows
        self.width = width
        self.base_line = base_line

    # -- traffic ---------------------------------------------------------- #
    @abstractmethod
    def row_read_lines(self, row: int) -> np.ndarray:
        """Absolute cacheline addresses touched when reading row ``row``."""

    def row_read_line_counts(self) -> np.ndarray:
        """Number of cachelines each row read transfers, for every row.

        The performance simulator replays every feature-row access at this
        granularity, so the whole table is its inner-loop input.  Concrete
        layouts override this with closed-form array arithmetic; this
        default materialises each row's line list and is the reference the
        unit tests compare the overrides against.
        """
        return np.fromiter(
            (self.row_read_lines(row).size for row in range(self.num_rows)),
            dtype=np.int64,
            count=self.num_rows,
        )

    @abstractmethod
    def row_read_bytes(self, row: int) -> int:
        """Bytes transferred from DRAM when reading row ``row`` uncached."""

    @abstractmethod
    def row_write_bytes(self, row: int) -> int:
        """Bytes written to DRAM when producing row ``row`` as a layer output."""

    # -- capacity --------------------------------------------------------- #
    @abstractmethod
    def storage_bytes(self) -> int:
        """Total bytes reserved for the matrix in this layout."""

    # -- helpers ---------------------------------------------------------- #
    def total_read_bytes(self) -> int:
        """Bytes to read every row exactly once (no cache)."""
        return int(sum(self.row_read_bytes(row) for row in range(self.num_rows)))

    def total_write_bytes(self) -> int:
        """Bytes to write every row exactly once."""
        return int(sum(self.row_write_bytes(row) for row in range(self.num_rows)))

    def total_lines(self) -> int:
        """Number of cachelines the layout occupies."""
        return bytes_to_lines(self.storage_bytes())

    def average_row_read_bytes(self) -> float:
        """Mean bytes per row read."""
        return self.total_read_bytes() / self.num_rows

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise FormatError(f"row {row} out of range (0..{self.num_rows - 1})")


class FeatureFormat(ABC):
    """A feature compression format (functional + performance model)."""

    #: Short name used by the registry and in result tables.
    name: str = "abstract"

    #: Whether layer outputs can be written in parallel without serialising
    #: on a shared append pointer (true for fixed-stride / in-place formats).
    supports_parallel_write: bool = True

    #: Whether reads are aligned to cacheline boundaries (affects the DRAM
    #: row-buffer / bandwidth efficiency model).
    aligned: bool = True

    #: Whether the format actually compresses (skips zero elements).
    compressed: bool = True

    # -- functional ------------------------------------------------------- #
    @abstractmethod
    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        """Encode a dense ``(rows, width)`` matrix into this format."""

    @abstractmethod
    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        """Decode back to the dense matrix; must be exactly lossless."""

    # -- performance ------------------------------------------------------ #
    @abstractmethod
    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> FeatureLayout:
        """Build the memory layout for a matrix described by per-row nnz.

        Args:
            row_nnz: Non-zero count of every feature row.
            width: Feature width (columns).
            base_line: First cacheline address available to the layout.
            slice_nnz: Optional ``(rows, slices)`` per-slice non-zero counts
                for formats that store per-slice metadata (sliced BEICSR);
                other formats ignore it.  Supplied by
                :meth:`layout_for_matrix` for real matrices and by measured
                sparsity providers (:mod:`repro.gcn.providers`) for
                simulation runs; when omitted, sliced formats fall back to
                an even per-row split.
        """

    # -- convenience ------------------------------------------------------ #
    def cache_token(self) -> tuple:
        """Hashable identity of this format's *layout behaviour*.

        Two formats with equal tokens build identical layouts for identical
        inputs, so per-run derived tables (row line counts, per-pass sizes)
        may be shared across runs keyed on it.  Covers every constructor
        parameter that influences :meth:`build_layout`.
        """
        return (
            self.name,
            getattr(self, "slice_size", None),
            getattr(self, "in_place", None),
            getattr(self, "block_rows", None),
            getattr(self, "block_cols", None),
            getattr(self, "block_size", None),
        )

    def layout_for_matrix(self, matrix: np.ndarray, base_line: int = 0) -> FeatureLayout:
        """Build a layout directly from a dense matrix."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        row_nnz = np.count_nonzero(matrix, axis=1).astype(np.int64)
        slice_nnz = None
        slice_size = getattr(self, "slice_size", None)
        if slice_size:
            from repro.gcn.sparsity import per_slice_nonzeros

            slice_nnz = per_slice_nonzeros(matrix, int(slice_size))
        return self.build_layout(row_nnz, matrix.shape[1], base_line, slice_nnz)

    def roundtrip(self, matrix: np.ndarray) -> np.ndarray:
        """Encode then decode ``matrix`` (testing convenience)."""
        return self.decode(self.encode(matrix))

    def compression_ratio(self, matrix: np.ndarray) -> float:
        """Dense bytes divided by encoded bytes (> 1 means smaller)."""
        matrix = np.asarray(matrix)
        dense_bytes = matrix.shape[0] * matrix.shape[1] * ELEMENT_BYTES
        encoded_bytes = self.encode(matrix).storage_bytes()
        if encoded_bytes == 0:
            return float("inf")
        return dense_bytes / encoded_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def validate_row_nnz(row_nnz: np.ndarray, width: int) -> np.ndarray:
    """Validate and normalise a per-row non-zero-count array."""
    row_nnz = np.asarray(row_nnz, dtype=np.int64)
    if row_nnz.ndim != 1 or row_nnz.size == 0:
        raise FormatError("row_nnz must be a non-empty 1-D array")
    if width <= 0:
        raise FormatError("width must be positive")
    if row_nnz.min() < 0 or row_nnz.max() > width:
        raise FormatError("row_nnz values must lie in [0, width]")
    return row_nnz
