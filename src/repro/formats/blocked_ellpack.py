"""Blocked Ellpack storage of the feature matrix.

Blocked Ellpack stores, for every block-row, a fixed number of blocks equal
to the maximum non-empty block count over all block-rows, padding the
shorter block-rows with explicit zero blocks.  The fixed stride makes row
lookup trivial (no row pointers) and the layout aligned, but at moderate
element-level sparsity almost no blocks are empty, so the padding makes the
matrix *larger* than dense — exactly why the paper dismisses it for GCN
intermediate features (Fig. 3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
    span_line_counts,
    validate_row_nnz,
)
from repro.formats.bsr import _expected_nonempty_blocks

#: Bytes per block-column index.
INDEX_BYTES = 4


class BlockedEllpackLayout(FeatureLayout):
    """Fixed-stride blocked Ellpack layout."""

    def __init__(
        self,
        row_nnz: np.ndarray,
        width: int,
        block_rows: int,
        block_cols: int,
        base_line: int = 0,
    ) -> None:
        super().__init__(int(row_nnz.size), width, base_line)
        self.block_rows = block_rows
        self.block_cols = block_cols
        self.row_nnz = row_nnz
        num_block_rows = (self.num_rows + block_rows - 1) // block_rows

        per_blockrow = np.zeros(num_block_rows, dtype=np.int64)
        for block_row in range(num_block_rows):
            start = block_row * block_rows
            stop = min(self.num_rows, start + block_rows)
            nnz = int(row_nnz[start:stop].sum())
            per_blockrow[block_row] = _expected_nonempty_blocks(
                max(1, nnz // max(1, (stop - start))), width, block_cols, block_rows
            )
        # Ellpack pads every block-row to the maximum count.
        self.blocks_per_blockrow = int(per_blockrow.max()) if per_blockrow.size else 0
        self.actual_blocks = per_blockrow
        block_bytes = block_rows * block_cols * ELEMENT_BYTES

        self.idx_base = 0
        idx_bytes = num_block_rows * self.blocks_per_blockrow * INDEX_BYTES
        self.data_base = bytes_to_lines(idx_bytes) * CACHELINE_BYTES
        # Each block-row's data region is padded to a cacheline boundary so
        # the stride stays aligned.
        self.blockrow_data_lines = bytes_to_lines(self.blocks_per_blockrow * block_bytes)
        self._storage = self.data_base + num_block_rows * self.blockrow_data_lines * CACHELINE_BYTES
        self.block_bytes = block_bytes
        self.num_block_rows = num_block_rows

    def _span(self, start_byte: int, num_bytes: int) -> np.ndarray:
        if num_bytes <= 0:
            return np.zeros(0, dtype=np.int64)
        first = start_byte // CACHELINE_BYTES
        last = (start_byte + num_bytes - 1) // CACHELINE_BYTES
        return np.arange(first, last + 1, dtype=np.int64) + self.base_line

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        block_row = row // self.block_rows
        # Only the actually non-empty blocks need to be read; the padded tail
        # is skipped thanks to the per-block-row count (but storage-wise the
        # padding is still reserved).
        num_blocks = int(self.actual_blocks[block_row])
        idx_lines = self._span(
            self.idx_base + block_row * self.blocks_per_blockrow * INDEX_BYTES,
            num_blocks * INDEX_BYTES,
        )
        data_start = self.data_base + block_row * self.blockrow_data_lines * CACHELINE_BYTES
        data_lines = self._span(data_start, num_blocks * self.block_bytes)
        return np.concatenate([idx_lines, data_lines])

    def row_read_line_counts(self) -> np.ndarray:
        block_row = np.arange(self.num_rows, dtype=np.int64) // self.block_rows
        num_blocks = self.actual_blocks[block_row]
        data_starts = (
            self.data_base + block_row * self.blockrow_data_lines * CACHELINE_BYTES
        )
        return span_line_counts(
            self.idx_base + block_row * self.blocks_per_blockrow * INDEX_BYTES,
            num_blocks * INDEX_BYTES,
        ) + span_line_counts(data_starts, num_blocks * self.block_bytes)

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        return int(self.row_read_lines(row).size) * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        self._check_row(row)
        return self.row_read_bytes(row)

    def storage_bytes(self) -> int:
        return int(self._storage)


class BlockedEllpackFormat(FeatureFormat):
    """Blocked Ellpack feature compression (default 2x2 blocks)."""

    name = "blocked_ellpack"
    supports_parallel_write = True
    aligned = True
    compressed = True

    def __init__(self, block_rows: int = 2, block_cols: int = 2) -> None:
        if block_rows <= 0 or block_cols <= 0:
            raise FormatError("block dimensions must be positive")
        self.block_rows = block_rows
        self.block_cols = block_cols

    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        rows, width = matrix.shape
        br, bc = self.block_rows, self.block_cols
        padded_rows = ((rows + br - 1) // br) * br
        padded_cols = ((width + bc - 1) // bc) * bc
        padded = np.zeros((padded_rows, padded_cols), dtype=np.float32)
        padded[:rows, :width] = matrix
        block_rows_count = padded_rows // br
        block_cols_count = padded_cols // bc

        per_row_blocks = []
        per_row_columns = []
        max_blocks = 0
        for block_row in range(block_rows_count):
            row_slice = padded[block_row * br : (block_row + 1) * br]
            blocks = []
            columns = []
            for block_col in range(block_cols_count):
                block = row_slice[:, block_col * bc : (block_col + 1) * bc]
                if np.any(block):
                    blocks.append(block.copy())
                    columns.append(block_col)
            per_row_blocks.append(blocks)
            per_row_columns.append(columns)
            max_blocks = max(max_blocks, len(blocks))

        data = np.zeros((block_rows_count, max_blocks, br, bc), dtype=np.float32)
        column_index = -np.ones((block_rows_count, max_blocks), dtype=np.int32)
        for block_row, (blocks, columns) in enumerate(zip(per_row_blocks, per_row_columns)):
            for slot, (block, column) in enumerate(zip(blocks, columns)):
                data[block_row, slot] = block
                column_index[block_row, slot] = column
        return EncodedFeatures(
            format_name=self.name,
            shape=(rows, width),
            arrays={"data": data, "column_index": column_index},
            metadata={"block_rows": br, "block_cols": bc},
        )

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        if encoded.format_name != self.name:
            raise FormatError(f"cannot decode {encoded.format_name!r} as blocked_ellpack")
        rows, width = encoded.shape
        br = int(encoded.metadata["block_rows"])
        bc = int(encoded.metadata["block_cols"])
        padded_rows = ((rows + br - 1) // br) * br
        padded_cols = ((width + bc - 1) // bc) * bc
        padded = np.zeros((padded_rows, padded_cols), dtype=np.float32)
        data = encoded.arrays["data"]
        column_index = encoded.arrays["column_index"]
        for block_row in range(data.shape[0]):
            for slot in range(data.shape[1]):
                column = int(column_index[block_row, slot])
                if column < 0:
                    continue
                padded[
                    block_row * br : (block_row + 1) * br,
                    column * bc : (column + 1) * bc,
                ] = data[block_row, slot]
        return padded[:rows, :width]

    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> BlockedEllpackLayout:
        row_nnz = validate_row_nnz(row_nnz, width)
        return BlockedEllpackLayout(
            row_nnz, width, self.block_rows, self.block_cols, base_line
        )
