"""Registry of feature formats by name.

The experiment harness refers to formats by short names (as the paper's
Fig. 3 legend does); this module maps those names to configured format
instances and lets users register their own formats for comparison.  It is a
thin instantiation of the generic :class:`repro.registry.Registry`, so
formats and accelerators share one extension mechanism (aliases, case
folding, ``register``/``unregister``/``temporary``).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import FormatError
from repro.formats.base import FeatureFormat
from repro.formats.beicsr import BEICSRFormat
from repro.formats.blocked_ellpack import BlockedEllpackFormat
from repro.formats.bsr import BSRFeatureFormat
from repro.formats.coo import COOFeatureFormat
from repro.formats.csr import CSRFeatureFormat
from repro.formats.dense import DenseFormat
from repro.registry import Registry

#: The feature-format family registry (the single extension point for new
#: format backends).
FORMATS: Registry[FeatureFormat] = Registry("format", FormatError)

FORMATS.register("dense", DenseFormat)
FORMATS.register("csr", CSRFeatureFormat)
FORMATS.register("coo", COOFeatureFormat)
FORMATS.register("bsr", BSRFeatureFormat)
FORMATS.register("blocked_ellpack", BlockedEllpackFormat)
FORMATS.register("beicsr", lambda: BEICSRFormat(slice_size=96))
FORMATS.register("beicsr_nonsliced", lambda: BEICSRFormat(slice_size=None))
FORMATS.register("beicsr_packed", lambda: BEICSRFormat(slice_size=96, in_place=False))


def available_formats() -> List[str]:
    """Names of all registered feature formats."""
    return FORMATS.names()


def register_format(name: str, factory: Callable[[], FeatureFormat]) -> None:
    """Register a custom format factory under ``name``.

    Raises:
        FormatError: If ``name`` is already registered.
    """
    FORMATS.register(name, factory)


def unregister_format(name: str) -> None:
    """Remove a registered format (see :meth:`Registry.unregister`)."""
    FORMATS.unregister(name)


def temporary_format(name: str, factory: Callable[[], FeatureFormat]):
    """Context manager registering a format for a ``with`` block only."""
    return FORMATS.temporary(name, factory)


def get_format(name: str, slice_size: Optional[int] = None) -> FeatureFormat:
    """Instantiate a feature format by name.

    Args:
        name: Registered format name (case-insensitive).
        slice_size: Override the BEICSR unit slice size (ignored by other
            formats).
    """
    instance = FORMATS.get(name)
    if slice_size is not None and isinstance(instance, BEICSRFormat) and instance.slice_size:
        instance = BEICSRFormat(slice_size=slice_size, in_place=instance.in_place)
    return instance


__all__ = [
    "FORMATS",
    "available_formats",
    "get_format",
    "register_format",
    "temporary_format",
    "unregister_format",
]
