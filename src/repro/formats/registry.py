"""Registry of feature formats by name.

The experiment harness refers to formats by short names (as the paper's
Fig. 3 legend does); this module maps those names to configured format
instances and lets users register their own formats for comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import FormatError
from repro.formats.base import FeatureFormat
from repro.formats.beicsr import BEICSRFormat
from repro.formats.blocked_ellpack import BlockedEllpackFormat
from repro.formats.bsr import BSRFeatureFormat
from repro.formats.coo import COOFeatureFormat
from repro.formats.csr import CSRFeatureFormat
from repro.formats.dense import DenseFormat

_FACTORIES: Dict[str, Callable[[], FeatureFormat]] = {
    "dense": DenseFormat,
    "csr": CSRFeatureFormat,
    "coo": COOFeatureFormat,
    "bsr": BSRFeatureFormat,
    "blocked_ellpack": BlockedEllpackFormat,
    "beicsr": lambda: BEICSRFormat(slice_size=96),
    "beicsr_nonsliced": lambda: BEICSRFormat(slice_size=None),
    "beicsr_packed": lambda: BEICSRFormat(slice_size=96, in_place=False),
}


def available_formats() -> List[str]:
    """Names of all registered feature formats."""
    return sorted(_FACTORIES)


def register_format(name: str, factory: Callable[[], FeatureFormat]) -> None:
    """Register a custom format factory under ``name``.

    Raises:
        FormatError: If ``name`` is already registered.
    """
    key = name.lower()
    if key in _FACTORIES:
        raise FormatError(f"format {name!r} is already registered")
    _FACTORIES[key] = factory


def get_format(name: str, slice_size: Optional[int] = None) -> FeatureFormat:
    """Instantiate a feature format by name.

    Args:
        name: Registered format name (case-insensitive).
        slice_size: Override the BEICSR unit slice size (ignored by other
            formats).
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise FormatError(
            f"unknown format {name!r}; available: {', '.join(available_formats())}"
        )
    instance = _FACTORIES[key]()
    if slice_size is not None and isinstance(instance, BEICSRFormat) and instance.slice_size:
        instance = BEICSRFormat(slice_size=slice_size, in_place=instance.in_place)
    return instance
