"""Sparse feature formats: functional encode/decode plus traffic models."""

from __future__ import annotations

from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
)
from repro.formats.dense import DenseFormat
from repro.formats.csr import CSRFeatureFormat
from repro.formats.coo import COOFeatureFormat
from repro.formats.bsr import BSRFeatureFormat
from repro.formats.blocked_ellpack import BlockedEllpackFormat
from repro.formats.beicsr import BEICSRFormat
from repro.formats.registry import (
    FORMATS,
    available_formats,
    get_format,
    register_format,
    temporary_format,
    unregister_format,
)

__all__ = [
    "CACHELINE_BYTES",
    "ELEMENT_BYTES",
    "EncodedFeatures",
    "FeatureFormat",
    "FeatureLayout",
    "bytes_to_lines",
    "DenseFormat",
    "CSRFeatureFormat",
    "COOFeatureFormat",
    "BSRFeatureFormat",
    "BlockedEllpackFormat",
    "BEICSRFormat",
    "FORMATS",
    "available_formats",
    "get_format",
    "register_format",
    "temporary_format",
    "unregister_format",
]
