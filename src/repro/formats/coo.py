"""Coordinate (COO) storage of the feature matrix.

COO stores a ``(row, column, value)`` triple per non-zero element — 12 bytes
per non-zero versus CSR's 8 — so its index overhead is even larger
(Section II-B: "The COO format has even more index overheads because it
stores both row and column indices for each non-zero element").  Locating a
row additionally needs a per-row offset array because the triples of one row
are stored contiguously but at a data-dependent position.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
    span_line_counts,
    validate_row_nnz,
)

#: Bytes per stored non-zero: row index + column index + value.
TRIPLE_BYTES = 12


class COOLayout(FeatureLayout):
    """Packed COO layout: an offsets array plus an array of 12-byte triples."""

    def __init__(self, row_nnz: np.ndarray, width: int, base_line: int = 0) -> None:
        super().__init__(int(row_nnz.size), width, base_line)
        self.row_nnz = row_nnz
        self.row_offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=self.row_offsets[1:])
        total_nnz = int(self.row_offsets[-1])

        self.offsets_base = 0
        offsets_bytes = (self.num_rows + 1) * 4
        self.triples_base = bytes_to_lines(offsets_bytes) * CACHELINE_BYTES
        self._storage = self.triples_base + total_nnz * TRIPLE_BYTES
        self.total_nnz = total_nnz

    def _span(self, start_byte: int, num_bytes: int) -> np.ndarray:
        if num_bytes <= 0:
            return np.zeros(0, dtype=np.int64)
        first = start_byte // CACHELINE_BYTES
        last = (start_byte + num_bytes - 1) // CACHELINE_BYTES
        return np.arange(first, last + 1, dtype=np.int64) + self.base_line

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        nnz = int(self.row_nnz[row])
        offset = int(self.row_offsets[row])
        offset_lines = self._span(self.offsets_base + row * 4, 8)
        triple_lines = self._span(
            self.triples_base + offset * TRIPLE_BYTES, nnz * TRIPLE_BYTES
        )
        return np.concatenate([offset_lines, triple_lines])

    def row_read_line_counts(self) -> np.ndarray:
        rows = np.arange(self.num_rows, dtype=np.int64)
        return span_line_counts(self.offsets_base + rows * 4, 8) + span_line_counts(
            self.triples_base + self.row_offsets[:-1] * TRIPLE_BYTES,
            self.row_nnz * TRIPLE_BYTES,
        )

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        return int(self.row_read_lines(row).size) * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        self._check_row(row)
        nnz = int(self.row_nnz[row])
        return self.row_read_bytes(row) if nnz else CACHELINE_BYTES

    def storage_bytes(self) -> int:
        return int(self._storage)


class COOFeatureFormat(FeatureFormat):
    """COO feature compression (row and column index per non-zero value)."""

    name = "coo"
    supports_parallel_write = False
    aligned = False
    compressed = True

    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        rows_idx, cols_idx = np.nonzero(matrix)
        return EncodedFeatures(
            format_name=self.name,
            shape=matrix.shape,
            arrays={
                "rows": rows_idx.astype(np.int32),
                "columns": cols_idx.astype(np.int32),
                "values": matrix[rows_idx, cols_idx].astype(np.float32),
            },
        )

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        if encoded.format_name != self.name:
            raise FormatError(f"cannot decode {encoded.format_name!r} as coo")
        matrix = np.zeros(encoded.shape, dtype=np.float32)
        matrix[encoded.arrays["rows"], encoded.arrays["columns"]] = encoded.arrays["values"]
        return matrix

    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> COOLayout:
        row_nnz = validate_row_nnz(row_nnz, width)
        return COOLayout(row_nnz, width, base_line)
