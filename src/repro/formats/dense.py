"""Dense (uncompressed) feature storage.

This is the baseline used by every existing GCN accelerator the paper
compares against: the feature matrix is stored as a contiguous row-major
array, every row occupying ``width * 4`` bytes regardless of its sparsity.
Rows are padded to cacheline boundaries so every row read is aligned — the
best case for DRAM efficiency but the worst case for traffic volume once the
features become sparse.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
    validate_row_nnz,
)


class DenseLayout(FeatureLayout):
    """Row-major dense layout with cacheline-aligned rows."""

    def __init__(self, num_rows: int, width: int, base_line: int = 0) -> None:
        super().__init__(num_rows, width, base_line)
        self.row_lines = bytes_to_lines(width * ELEMENT_BYTES)
        self.row_bytes = width * ELEMENT_BYTES

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        start = self.base_line + row * self.row_lines
        return np.arange(start, start + self.row_lines, dtype=np.int64)

    def row_read_line_counts(self) -> np.ndarray:
        return np.full(self.num_rows, self.row_lines, dtype=np.int64)

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        return self.row_lines * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        self._check_row(row)
        return self.row_lines * CACHELINE_BYTES

    def storage_bytes(self) -> int:
        return self.num_rows * self.row_lines * CACHELINE_BYTES


class DenseFormat(FeatureFormat):
    """Uncompressed dense feature format."""

    name = "dense"
    supports_parallel_write = True
    aligned = True
    compressed = False

    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        return EncodedFeatures(
            format_name=self.name,
            shape=matrix.shape,
            arrays={"values": matrix.copy()},
        )

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        if encoded.format_name != self.name:
            raise FormatError(f"cannot decode {encoded.format_name!r} as dense")
        return encoded.arrays["values"].copy()

    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> DenseLayout:
        row_nnz = validate_row_nnz(row_nnz, width)
        return DenseLayout(row_nnz.size, width, base_line)
