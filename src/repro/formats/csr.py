"""Compressed Sparse Row storage of the feature matrix.

The "naive" alternative the paper argues against (Section II-B, Fig. 3):
every non-zero feature element costs a 4-byte value *and* a 4-byte column
index, plus a row-pointer array for locating rows.  Around 50% sparsity this
is a net capacity increase, rows are variable-length (so reads are usually
unaligned and writes must be serialised through a shared append pointer),
and the index arrays live apart from the values, hurting locality.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
    span_line_counts,
    validate_row_nnz,
)

#: Bytes per column index.
INDEX_BYTES = 4


class CSRLayout(FeatureLayout):
    """Packed CSR layout: row pointers, column indices, and values arrays.

    The three arrays are placed one after another in the address space so
    that index traffic and value traffic compete for the same cache, as in
    hardware.
    """

    def __init__(self, row_nnz: np.ndarray, width: int, base_line: int = 0) -> None:
        super().__init__(int(row_nnz.size), width, base_line)
        self.row_nnz = row_nnz
        self.row_offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(row_nnz, out=self.row_offsets[1:])
        total_nnz = int(self.row_offsets[-1])

        # Array placement (in bytes, relative to base).
        self.rowptr_base = 0
        rowptr_bytes = (self.num_rows + 1) * INDEX_BYTES
        self.colidx_base = bytes_to_lines(rowptr_bytes) * CACHELINE_BYTES
        colidx_bytes = total_nnz * INDEX_BYTES
        self.values_base = self.colidx_base + bytes_to_lines(colidx_bytes) * CACHELINE_BYTES
        values_bytes = total_nnz * ELEMENT_BYTES
        self._storage = self.values_base + values_bytes
        self.total_nnz = total_nnz

    def _span(self, start_byte: int, num_bytes: int) -> np.ndarray:
        if num_bytes <= 0:
            return np.zeros(0, dtype=np.int64)
        first = start_byte // CACHELINE_BYTES
        last = (start_byte + num_bytes - 1) // CACHELINE_BYTES
        return np.arange(first, last + 1, dtype=np.int64) + self.base_line

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        nnz = int(self.row_nnz[row])
        offset = int(self.row_offsets[row])
        # Row pointer pair (start, end) — two consecutive 4-byte entries.
        ptr_lines = self._span(self.rowptr_base + row * INDEX_BYTES, 2 * INDEX_BYTES)
        idx_lines = self._span(self.colidx_base + offset * INDEX_BYTES, nnz * INDEX_BYTES)
        val_lines = self._span(self.values_base + offset * ELEMENT_BYTES, nnz * ELEMENT_BYTES)
        return np.concatenate([ptr_lines, idx_lines, val_lines])

    def row_read_line_counts(self) -> np.ndarray:
        rows = np.arange(self.num_rows, dtype=np.int64)
        offsets = self.row_offsets[:-1]
        nnz = self.row_nnz
        return (
            span_line_counts(self.rowptr_base + rows * INDEX_BYTES, 2 * INDEX_BYTES)
            + span_line_counts(self.colidx_base + offsets * INDEX_BYTES, nnz * INDEX_BYTES)
            + span_line_counts(self.values_base + offsets * ELEMENT_BYTES, nnz * ELEMENT_BYTES)
        )

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        return int(self.row_read_lines(row).size) * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        self._check_row(row)
        nnz = int(self.row_nnz[row])
        # Writing a compressed variable-length row touches the same lines a
        # read would (indices + values + updating the row pointer); because
        # rows are unaligned, partial lines still cost a full line of traffic
        # (read-modify-write).
        return self.row_read_bytes(row) if nnz else CACHELINE_BYTES

    def storage_bytes(self) -> int:
        return int(self._storage)


class CSRFeatureFormat(FeatureFormat):
    """CSR feature compression (column index per non-zero value)."""

    name = "csr"
    supports_parallel_write = False
    aligned = False
    compressed = True

    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        rows, width = matrix.shape
        indptr = np.zeros(rows + 1, dtype=np.int64)
        columns = []
        values = []
        for row in range(rows):
            cols = np.nonzero(matrix[row])[0]
            columns.append(cols.astype(np.int32))
            values.append(matrix[row, cols])
            indptr[row + 1] = indptr[row] + cols.size
        return EncodedFeatures(
            format_name=self.name,
            shape=(rows, width),
            arrays={
                "indptr": indptr,
                "columns": (
                    np.concatenate(columns) if columns else np.zeros(0, dtype=np.int32)
                ),
                "values": (
                    np.concatenate(values).astype(np.float32)
                    if values
                    else np.zeros(0, dtype=np.float32)
                ),
            },
        )

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        if encoded.format_name != self.name:
            raise FormatError(f"cannot decode {encoded.format_name!r} as csr")
        rows, width = encoded.shape
        indptr = encoded.arrays["indptr"]
        columns = encoded.arrays["columns"]
        values = encoded.arrays["values"]
        matrix = np.zeros((rows, width), dtype=np.float32)
        for row in range(rows):
            start, stop = int(indptr[row]), int(indptr[row + 1])
            matrix[row, columns[start:stop]] = values[start:stop]
        return matrix

    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> CSRLayout:
        row_nnz = validate_row_nnz(row_nnz, width)
        return CSRLayout(row_nnz, width, base_line)
