"""BEICSR: Bitmap-index Embedded In-place CSR (the paper's format).

BEICSR is the feature compression format proposed by SGCN (Section V-A and
V-B).  Its three design choices, all reproduced here:

* **Embedded bitmap index** — instead of per-non-zero column indices, each
  row (or slice) stores a bitmap of ``width`` bits at its head, immediately
  followed by the packed non-zero values.  At ~50% sparsity the index
  overhead is ``width / 8`` bytes against ``width * 2`` bytes of values, i.e.
  ~6%, far below CSR's 100%.  Embedding the bitmap with the values means the
  index and the data arrive in the same (or adjacent) cachelines.
* **In-place compression** — every row/slice is stored at the fixed offset it
  would occupy uncompressed.  This gives cacheline-aligned reads, allows
  parallel writes from independent engines (no shared append pointer), and
  removes the need for an indirection array: the address is a multiply with
  the vertex id.  The cost is that capacity is not reduced — but traffic is,
  because only the occupied prefix of each row/slice is transferred.
* **Slicing support** — with feature-matrix slicing (tiling along the width),
  a single whole-row bitmap would force unaligned partial reads.  Sliced
  BEICSR instead partitions the bitmap per unit slice of ``C`` elements
  (default 96) and aligns every slice to a burst boundary.

A packed (non-in-place) variant is also provided (``in_place=False``) so the
ablation benchmarks can quantify how much the in-place choice matters — it
re-introduces the indirection array and the unaligned accesses the paper
argues against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
    span_line_counts,
    validate_row_nnz,
)

#: Bytes per row-offset pointer in the packed (non-in-place) variant.
POINTER_BYTES = 4


def _bitmap_bytes(slice_width: int) -> int:
    """Bytes of bitmap needed to index ``slice_width`` elements."""
    return (slice_width + 7) // 8


def _split_row_nnz(row_nnz: np.ndarray, width: int, slice_size: int) -> np.ndarray:
    """Distribute per-row non-zero counts evenly over slices.

    Used when the caller only knows per-row counts.  The real per-slice
    distribution has small variance (paper Section V-B), so an even split is
    a faithful default; callers with actual matrices pass exact counts.
    """
    num_slices = (width + slice_size - 1) // slice_size
    rows = row_nnz.size
    slice_widths = np.full(num_slices, slice_size, dtype=np.int64)
    if width % slice_size:
        slice_widths[-1] = width % slice_size

    # Base fill: nnz // slices everywhere, capped by each slice's width.
    row_nnz = row_nnz.astype(np.int64)
    base = row_nnz // num_slices
    counts = np.minimum(base[:, None], slice_widths[None, :])
    leftover = row_nnz - counts.sum(axis=1)

    # The remainder is dealt round-robin over the slices that still have
    # headroom: `t` full deal rounds give every open slice min(headroom, t)
    # extra units.  Binary-search the largest t whose give-out still fits,
    # then hand the last partial round to the lowest-indexed open slices.
    headroom = slice_widths[None, :] - counts
    low = np.zeros(rows, dtype=np.int64)
    high = np.full(rows, int(headroom.max(initial=0)), dtype=np.int64)
    while np.any(low < high):
        mid = (low + high + 1) // 2
        fits = np.minimum(headroom, mid[:, None]).sum(axis=1) <= leftover
        low = np.where(fits, mid, low)
        high = np.where(fits, high, mid - 1)
    full_rounds = np.minimum(headroom, low[:, None])
    remainder = leftover - full_rounds.sum(axis=1)
    open_slice = headroom > low[:, None]
    rank = np.cumsum(open_slice, axis=1)
    counts += full_rounds + (open_slice & (rank <= remainder[:, None]))
    return counts


class BEICSRLayout(FeatureLayout):
    """In-place BEICSR layout (per-slice bitmap + packed values, aligned)."""

    def __init__(
        self,
        slice_nnz: np.ndarray,
        width: int,
        slice_size: int,
        base_line: int = 0,
    ) -> None:
        super().__init__(int(slice_nnz.shape[0]), width, base_line)
        self.slice_size = slice_size
        self.slice_nnz = slice_nnz
        self.num_slices = slice_nnz.shape[1]

        bitmap = _bitmap_bytes(slice_size)
        # A slice's reserved space holds its bitmap plus a fully dense slice,
        # rounded up to the cacheline boundary (so slices stay aligned).
        self.slice_stride_lines = bytes_to_lines(bitmap + slice_size * ELEMENT_BYTES)
        self.row_stride_lines = self.num_slices * self.slice_stride_lines
        self._bitmap_bytes = bitmap

    def _slice_read_lines(self, nnz: int) -> int:
        """Cachelines actually transferred when reading a slice with ``nnz``."""
        return bytes_to_lines(self._bitmap_bytes + int(nnz) * ELEMENT_BYTES)

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        row_base = self.base_line + row * self.row_stride_lines
        lines = []
        for slice_index in range(self.num_slices):
            slice_base = row_base + slice_index * self.slice_stride_lines
            count = self._slice_read_lines(self.slice_nnz[row, slice_index])
            lines.append(np.arange(slice_base, slice_base + count, dtype=np.int64))
        return np.concatenate(lines) if lines else np.zeros(0, dtype=np.int64)

    def row_read_line_counts(self) -> np.ndarray:
        # bytes_to_lines over the whole (rows, slices) matrix, summed per row.
        slice_lines = (
            self._bitmap_bytes + self.slice_nnz * ELEMENT_BYTES + CACHELINE_BYTES - 1
        ) // CACHELINE_BYTES
        return slice_lines.sum(axis=1).astype(np.int64)

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        total = 0
        for slice_index in range(self.num_slices):
            total += self._slice_read_lines(self.slice_nnz[row, slice_index])
        return total * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        # The post-combination compressor flushes each unit slice as full
        # cachelines; only the occupied prefix is written.
        return self.row_read_bytes(row)

    def storage_bytes(self) -> int:
        return self.num_rows * self.row_stride_lines * CACHELINE_BYTES


class PackedBEICSRLayout(FeatureLayout):
    """Packed (non-in-place) BEICSR layout, used for the ablation study.

    Rows are stored back-to-back at byte granularity, so an indirection
    array of row offsets is required and reads usually straddle an extra
    cacheline.  Writes must serialise on the shared append pointer, so the
    format loses the parallel-write property.
    """

    def __init__(
        self,
        slice_nnz: np.ndarray,
        width: int,
        slice_size: int,
        base_line: int = 0,
    ) -> None:
        super().__init__(int(slice_nnz.shape[0]), width, base_line)
        self.slice_size = slice_size
        self.slice_nnz = slice_nnz
        self.num_slices = slice_nnz.shape[1]
        bitmap = _bitmap_bytes(slice_size)

        row_bytes = (
            self.num_slices * bitmap
            + slice_nnz.sum(axis=1).astype(np.int64) * ELEMENT_BYTES
        )
        self.row_offsets = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(row_bytes, out=self.row_offsets[1:])

        self.pointer_base = 0
        pointer_bytes = (self.num_rows + 1) * POINTER_BYTES
        self.data_base = bytes_to_lines(pointer_bytes) * CACHELINE_BYTES
        self._storage = self.data_base + int(self.row_offsets[-1])
        self.row_bytes = row_bytes

    def _span(self, start_byte: int, num_bytes: int) -> np.ndarray:
        if num_bytes <= 0:
            return np.zeros(0, dtype=np.int64)
        first = start_byte // CACHELINE_BYTES
        last = (start_byte + num_bytes - 1) // CACHELINE_BYTES
        return np.arange(first, last + 1, dtype=np.int64) + self.base_line

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        pointer_lines = self._span(self.pointer_base + row * POINTER_BYTES, 2 * POINTER_BYTES)
        data_lines = self._span(
            self.data_base + int(self.row_offsets[row]), int(self.row_bytes[row])
        )
        return np.concatenate([pointer_lines, data_lines])

    def row_read_line_counts(self) -> np.ndarray:
        rows = np.arange(self.num_rows, dtype=np.int64)
        return span_line_counts(
            self.pointer_base + rows * POINTER_BYTES, 2 * POINTER_BYTES
        ) + span_line_counts(self.data_base + self.row_offsets[:-1], self.row_bytes)

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        return int(self.row_read_lines(row).size) * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        self._check_row(row)
        return self.row_read_bytes(row)

    def storage_bytes(self) -> int:
        return int(self._storage)


class BEICSRFormat(FeatureFormat):
    """Bitmap-index Embedded In-place CSR (sliced or whole-row).

    Args:
        slice_size: Unit slice size ``C`` in elements (paper default 96);
            ``None`` produces the non-sliced variant (one bitmap per row).
        in_place: Reserve dense-size space per row/slice (the paper's
            choice).  ``False`` packs rows back-to-back for the ablation.
    """

    name = "beicsr"
    supports_parallel_write = True
    aligned = True
    compressed = True

    def __init__(self, slice_size: Optional[int] = 96, in_place: bool = True) -> None:
        if slice_size is not None and slice_size <= 0:
            raise FormatError("slice size must be positive")
        self.slice_size = slice_size
        self.in_place = in_place
        if slice_size is None:
            self.name = "beicsr_nonsliced"
        if not in_place:
            self.name = f"{self.name}_packed"
            self.supports_parallel_write = False
            self.aligned = False

    # ------------------------------------------------------------------ #
    # Functional encode / decode
    # ------------------------------------------------------------------ #
    def _effective_slice(self, width: int) -> int:
        return self.slice_size if self.slice_size is not None else width

    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        rows, width = matrix.shape
        slice_size = self._effective_slice(width)
        num_slices = (width + slice_size - 1) // slice_size
        bitmap_bytes = _bitmap_bytes(slice_size)

        bitmaps = np.zeros((rows, num_slices, bitmap_bytes), dtype=np.uint8)
        values = np.zeros((rows, num_slices, slice_size), dtype=np.float32)
        counts = np.zeros((rows, num_slices), dtype=np.int64)
        for row in range(rows):
            for slice_index in range(num_slices):
                start = slice_index * slice_size
                stop = min(width, start + slice_size)
                chunk = matrix[row, start:stop]
                nonzero_positions = np.nonzero(chunk)[0]
                counts[row, slice_index] = nonzero_positions.size
                bits = np.zeros(slice_size, dtype=np.uint8)
                bits[nonzero_positions] = 1
                bitmaps[row, slice_index] = np.packbits(bits, bitorder="little")[:bitmap_bytes]
                values[row, slice_index, : nonzero_positions.size] = chunk[nonzero_positions]
        return EncodedFeatures(
            format_name=self.name,
            shape=(rows, width),
            arrays={"bitmaps": bitmaps, "values": values, "counts": counts},
            metadata={"slice_size": slice_size, "in_place": self.in_place},
        )

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        if encoded.format_name != self.name:
            raise FormatError(f"cannot decode {encoded.format_name!r} as {self.name}")
        rows, width = encoded.shape
        slice_size = int(encoded.metadata["slice_size"])
        bitmaps = encoded.arrays["bitmaps"]
        values = encoded.arrays["values"]
        counts = encoded.arrays["counts"]
        num_slices = bitmaps.shape[1]

        matrix = np.zeros((rows, width), dtype=np.float32)
        for row in range(rows):
            for slice_index in range(num_slices):
                start = slice_index * slice_size
                stop = min(width, start + slice_size)
                bits = np.unpackbits(bitmaps[row, slice_index], bitorder="little")[
                    : stop - start
                ]
                positions = np.nonzero(bits)[0]
                count = int(counts[row, slice_index])
                if positions.size != count:
                    raise FormatError(
                        "bitmap population count does not match stored value count "
                        f"(row {row}, slice {slice_index}: {positions.size} != {count})"
                    )
                matrix[row, start + positions] = values[row, slice_index, :count]
        return matrix

    # ------------------------------------------------------------------ #
    # Performance layout
    # ------------------------------------------------------------------ #
    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> FeatureLayout:
        row_nnz = validate_row_nnz(row_nnz, width)
        slice_size = self._effective_slice(width)
        num_slices = (width + slice_size - 1) // slice_size
        if slice_nnz is None:
            slice_nnz = _split_row_nnz(row_nnz, width, slice_size)
        else:
            slice_nnz = np.asarray(slice_nnz, dtype=np.int64)
            if slice_nnz.shape != (row_nnz.size, num_slices):
                raise FormatError(
                    f"slice_nnz must have shape {(row_nnz.size, num_slices)}, "
                    f"got {slice_nnz.shape}"
                )
            if not np.array_equal(slice_nnz.sum(axis=1), row_nnz):
                raise FormatError("slice_nnz rows must sum to row_nnz")
        if self.in_place:
            return BEICSRLayout(slice_nnz, width, slice_size, base_line)
        return PackedBEICSRLayout(slice_nnz, width, slice_size, base_line)

    # ------------------------------------------------------------------ #
    # Analytical helpers used in the paper's Section V-A discussion
    # ------------------------------------------------------------------ #
    @staticmethod
    def index_overhead(width: int, sparsity: float) -> float:
        """Bitmap index bytes relative to stored non-zero value bytes.

        For 50% sparsity and 32-bit elements this is ``n/16n`` = 6.25%
        (Section V-A).
        """
        if width <= 0:
            raise FormatError("width must be positive")
        nonzero_bytes = width * (1.0 - sparsity) * ELEMENT_BYTES
        if nonzero_bytes == 0:
            return float("inf")
        return _bitmap_bytes(width) / nonzero_bytes
