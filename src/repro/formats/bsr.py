"""Block Compressed Sparse Row (BSR) storage of the feature matrix.

BSR partitions the matrix into small dense blocks (default 2x2) and stores
only the blocks that contain at least one non-zero, each with a block-column
index.  It compresses well only when many blocks are *entirely* empty — at
the ~50% element-level sparsity of GCN intermediate features the probability
of an empty 2x2 block is only ~6%, so BSR mostly adds index overhead and
padding (paper Section II-B: blocked formats "are beneficial only when there
are many empty blocks ... GCN intermediate activations seldom exhibit such
patterns").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import FormatError
from repro.formats.base import (
    CACHELINE_BYTES,
    ELEMENT_BYTES,
    EncodedFeatures,
    FeatureFormat,
    FeatureLayout,
    bytes_to_lines,
    span_line_counts,
    validate_row_nnz,
)

#: Bytes per block-column index.
INDEX_BYTES = 4


def _expected_nonempty_blocks(row_nnz: int, width: int, block_cols: int, block_rows: int) -> int:
    """Expected number of non-empty blocks in one block-row.

    Assumes non-zeros are spread uniformly over the ``block_rows`` rows x
    ``width`` columns of the block-row (the paper's own assumption when it
    argues blocked formats do not help).
    """
    num_blocks = (width + block_cols - 1) // block_cols
    cells_per_block = block_cols * block_rows
    total_cells = num_blocks * cells_per_block
    density = min(1.0, (row_nnz * block_rows) / max(total_cells, 1))
    prob_empty = (1.0 - density) ** cells_per_block
    return int(round(num_blocks * (1.0 - prob_empty)))


class BSRLayout(FeatureLayout):
    """BSR layout: block row pointers, block column indices, dense blocks."""

    def __init__(
        self,
        row_nnz: np.ndarray,
        width: int,
        block_rows: int,
        block_cols: int,
        base_line: int = 0,
    ) -> None:
        super().__init__(int(row_nnz.size), width, base_line)
        self.block_rows = block_rows
        self.block_cols = block_cols
        self.row_nnz = row_nnz
        num_block_rows = (self.num_rows + block_rows - 1) // block_rows

        # Expected non-empty blocks per block-row, derived from the nnz of
        # the rows it contains.
        self.blocks_per_blockrow = np.zeros(num_block_rows, dtype=np.int64)
        for block_row in range(num_block_rows):
            start = block_row * block_rows
            stop = min(self.num_rows, start + block_rows)
            nnz = int(row_nnz[start:stop].sum())
            self.blocks_per_blockrow[block_row] = _expected_nonempty_blocks(
                max(1, nnz // max(1, (stop - start))), width, block_cols, block_rows
            )
        self.block_offsets = np.zeros(num_block_rows + 1, dtype=np.int64)
        np.cumsum(self.blocks_per_blockrow, out=self.block_offsets[1:])
        total_blocks = int(self.block_offsets[-1])
        block_bytes = block_rows * block_cols * ELEMENT_BYTES

        self.ptr_base = 0
        ptr_bytes = (num_block_rows + 1) * INDEX_BYTES
        self.idx_base = bytes_to_lines(ptr_bytes) * CACHELINE_BYTES
        idx_bytes = total_blocks * INDEX_BYTES
        self.data_base = self.idx_base + bytes_to_lines(idx_bytes) * CACHELINE_BYTES
        self._storage = self.data_base + total_blocks * block_bytes
        self.block_bytes = block_bytes

    def _span(self, start_byte: int, num_bytes: int) -> np.ndarray:
        if num_bytes <= 0:
            return np.zeros(0, dtype=np.int64)
        first = start_byte // CACHELINE_BYTES
        last = (start_byte + num_bytes - 1) // CACHELINE_BYTES
        return np.arange(first, last + 1, dtype=np.int64) + self.base_line

    def row_read_lines(self, row: int) -> np.ndarray:
        self._check_row(row)
        block_row = row // self.block_rows
        num_blocks = int(self.blocks_per_blockrow[block_row])
        offset = int(self.block_offsets[block_row])
        ptr_lines = self._span(self.ptr_base + block_row * INDEX_BYTES, 2 * INDEX_BYTES)
        idx_lines = self._span(self.idx_base + offset * INDEX_BYTES, num_blocks * INDEX_BYTES)
        # Reading one feature row requires touching every non-empty block of
        # its block-row (the row's slice of each block is interleaved with the
        # other rows of the block, so whole blocks are fetched).
        data_lines = self._span(
            self.data_base + offset * self.block_bytes, num_blocks * self.block_bytes
        )
        return np.concatenate([ptr_lines, idx_lines, data_lines])

    def row_read_line_counts(self) -> np.ndarray:
        block_row = np.arange(self.num_rows, dtype=np.int64) // self.block_rows
        num_blocks = self.blocks_per_blockrow[block_row]
        offset = self.block_offsets[block_row]
        return (
            span_line_counts(self.ptr_base + block_row * INDEX_BYTES, 2 * INDEX_BYTES)
            + span_line_counts(self.idx_base + offset * INDEX_BYTES, num_blocks * INDEX_BYTES)
            + span_line_counts(
                self.data_base + offset * self.block_bytes, num_blocks * self.block_bytes
            )
        )

    def row_read_bytes(self, row: int) -> int:
        self._check_row(row)
        return int(self.row_read_lines(row).size) * CACHELINE_BYTES

    def row_write_bytes(self, row: int) -> int:
        self._check_row(row)
        return self.row_read_bytes(row)

    def storage_bytes(self) -> int:
        return int(self._storage)


class BSRFeatureFormat(FeatureFormat):
    """Block CSR feature compression (default 2x2 blocks)."""

    name = "bsr"
    supports_parallel_write = False
    aligned = False
    compressed = True

    def __init__(self, block_rows: int = 2, block_cols: int = 2) -> None:
        if block_rows <= 0 or block_cols <= 0:
            raise FormatError("block dimensions must be positive")
        self.block_rows = block_rows
        self.block_cols = block_cols

    def encode(self, matrix: np.ndarray) -> EncodedFeatures:
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.ndim != 2:
            raise FormatError("feature matrix must be two-dimensional")
        rows, width = matrix.shape
        br, bc = self.block_rows, self.block_cols
        padded_rows = ((rows + br - 1) // br) * br
        padded_cols = ((width + bc - 1) // bc) * bc
        padded = np.zeros((padded_rows, padded_cols), dtype=np.float32)
        padded[:rows, :width] = matrix

        block_rows_count = padded_rows // br
        block_cols_count = padded_cols // bc
        indptr = np.zeros(block_rows_count + 1, dtype=np.int64)
        block_columns = []
        blocks = []
        for block_row in range(block_rows_count):
            row_slice = padded[block_row * br : (block_row + 1) * br]
            count = 0
            for block_col in range(block_cols_count):
                block = row_slice[:, block_col * bc : (block_col + 1) * bc]
                if np.any(block):
                    block_columns.append(block_col)
                    blocks.append(block.copy())
                    count += 1
            indptr[block_row + 1] = indptr[block_row] + count
        return EncodedFeatures(
            format_name=self.name,
            shape=(rows, width),
            arrays={
                "indptr": indptr,
                "block_columns": np.asarray(block_columns, dtype=np.int32),
                "blocks": (
                    np.stack(blocks) if blocks else np.zeros((0, br, bc), dtype=np.float32)
                ),
            },
            metadata={"block_rows": br, "block_cols": bc},
        )

    def decode(self, encoded: EncodedFeatures) -> np.ndarray:
        if encoded.format_name != self.name:
            raise FormatError(f"cannot decode {encoded.format_name!r} as bsr")
        rows, width = encoded.shape
        br = int(encoded.metadata["block_rows"])
        bc = int(encoded.metadata["block_cols"])
        padded_rows = ((rows + br - 1) // br) * br
        padded_cols = ((width + bc - 1) // bc) * bc
        padded = np.zeros((padded_rows, padded_cols), dtype=np.float32)
        indptr = encoded.arrays["indptr"]
        block_columns = encoded.arrays["block_columns"]
        blocks = encoded.arrays["blocks"]
        for block_row in range(indptr.size - 1):
            for position in range(int(indptr[block_row]), int(indptr[block_row + 1])):
                block_col = int(block_columns[position])
                padded[
                    block_row * br : (block_row + 1) * br,
                    block_col * bc : (block_col + 1) * bc,
                ] = blocks[position]
        return padded[:rows, :width]

    def build_layout(
        self,
        row_nnz: np.ndarray,
        width: int,
        base_line: int = 0,
        slice_nnz: Optional[np.ndarray] = None,
    ) -> BSRLayout:
        row_nnz = validate_row_nnz(row_nnz, width)
        return BSRLayout(row_nnz, width, self.block_rows, self.block_cols, base_line)
