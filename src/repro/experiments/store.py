"""Content-addressed on-disk result cache and exporters.

Every cached entry is keyed by a SHA-256 over the scenario's canonical
identity (:meth:`~repro.experiments.spec.Scenario.key`) plus a schema
version, so re-running a sweep only simulates scenarios whose results are
missing, and bumping :data:`SCHEMA_VERSION` after a model change invalidates
every stale entry at once.

The store also provides the export paths the paper-figure tooling consumes:
per-scenario JSON documents and a merged CSV of one summary row per run.
"""

from __future__ import annotations

import csv
import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.results import SimulationResult
from repro.errors import SimulationError
from repro.experiments.spec import Scenario
from repro.resilience.faults import fault_point
from repro.telemetry.spans import span

logger = logging.getLogger(__name__)

#: Bump when the performance model changes in a way that invalidates cached
#: results (cache keys incorporate this value).
SCHEMA_VERSION = 1

#: Directory (under the store root) where corrupt entries are moved for
#: post-mortem inspection instead of being deleted.
QUARANTINE_DIRNAME = "quarantine"

#: Column order of the merged summary CSV.
SUMMARY_COLUMNS: Tuple[str, ...] = (
    "scenario_id",
    "tag",
    "dataset",
    "accelerator",
    "variant",
    "seed",
    "num_layers",
    "max_vertices",
    "sparsity",
    "overrides",
    "design",
    "cycles",
    "runtime_s",
    "dram_bytes",
    "macs",
    "energy_j",
    "cache_hit_rate",
    # Sweep-level throughput context (identical on every row of one sweep).
    # Only populated by profiled sweeps (`repro sweep --profile`): wall-clock
    # values would otherwise break the byte-identical summary.csv guarantee
    # across worker counts and reruns. Empty outside sweeps too, e.g.
    # `repro export` over a bare cache store.
    "sweep_elapsed_seconds",
    "sweep_runs_per_second",
)


def scenario_cache_key(scenario: Scenario) -> str:
    """Full SHA-256 cache key of ``scenario`` under the current schema."""
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "scenario": scenario.key()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_checksum(result_document: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of a result document.

    Embedded in every store entry and verified on :meth:`ResultStore.get`,
    so bit-rot (or a partial write that still parses) surfaces as a
    quarantined entry instead of a silently wrong cached result.
    """
    payload = json.dumps(result_document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def summary_row(scenario: Scenario, result: SimulationResult) -> Dict[str, object]:
    """One merged-CSV row for ``(scenario, result)``."""
    row: Dict[str, object] = {
        "scenario_id": scenario.scenario_id,
        "tag": scenario.tag,
        "dataset": scenario.dataset,
        "accelerator": scenario.accelerator,
        "variant": scenario.variant,
        "seed": scenario.seed,
        "num_layers": scenario.num_layers,
        "max_vertices": scenario.max_vertices,
        "sparsity": scenario.sparsity or "synthetic",
        "overrides": json.dumps(dict(sorted(scenario.overrides.items())), sort_keys=True),
        "design": json.dumps(dict(scenario.design or {}), sort_keys=True),
    }
    summary = result.summary()
    for column in ("cycles", "runtime_s", "dram_bytes", "macs", "energy_j",
                   "cache_hit_rate"):
        row[column] = summary[column]
    return row


class ResultStore:
    """Content-addressed cache of :class:`SimulationResult` documents.

    Entries live under ``root/<k0:2>/<key>.json`` (two-level fan-out keeps
    directories small for big sweeps).  Writes are atomic (temp file +
    ``os.replace``) so a crashed worker never leaves a truncated entry.

    Every entry embeds a SHA-256 checksum over its result document, verified
    on :meth:`get`.  A corrupt entry (unreadable, unparsable, or checksum
    mismatch) is *quarantined* — moved under ``root/quarantine/`` and
    counted in :meth:`stats` — never silently deleted, so damaged caches
    stay debuggable while sweeps heal around them.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.puts = 0

    # ------------------------------------------------------------------ #
    def path_for(self, scenario: Scenario) -> Path:
        """On-disk path of the entry for ``scenario``."""
        key = scenario_cache_key(scenario)
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / QUARANTINE_DIRNAME

    def contains(self, scenario: Scenario) -> bool:
        """Whether a cached result exists for ``scenario``."""
        return self.path_for(scenario).is_file()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/corruption counters of this store instance."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "puts": self.puts,
        }

    def get(self, scenario: Scenario) -> Optional[SimulationResult]:
        """Load the cached result for ``scenario``, or ``None`` on a miss.

        Corrupt entries — unreadable, unparsable, or failing their embedded
        checksum — count as misses and are moved to ``quarantine/`` so a
        sweep heals a damaged cache without destroying the evidence.
        """
        fault_point("store:get")
        path = self.path_for(scenario)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            with span("store_get"):
                with path.open("r", encoding="utf-8") as handle:
                    document = json.load(handle)
                expected = document.get("checksum")
                if expected is not None and expected != result_checksum(
                    document["result"]
                ):
                    raise ValueError("embedded checksum mismatch")
                result = SimulationResult.from_dict(document["result"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.misses += 1
            self._quarantine(path, exc)
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupt entry under ``quarantine/`` (never delete it)."""
        self.corrupt += 1
        destination = self.quarantine_dir / path.name
        logger.warning(
            "quarantining corrupt cache entry %s -> %s (%s)",
            path,
            destination,
            reason,
        )
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError as exc:
            logger.warning("could not quarantine %s (%s)", path, exc)

    def put(self, scenario: Scenario, result: SimulationResult) -> Path:
        """Store ``result`` for ``scenario`` and return the entry path."""
        fault_point("store:put")
        path = self.path_for(scenario)
        with span("store_put"):
            path.parent.mkdir(parents=True, exist_ok=True)
            result_document = result.to_dict()
            document = {
                "schema": SCHEMA_VERSION,
                "key": scenario_cache_key(scenario),
                "scenario": scenario.to_dict(),
                "result": result_document,
                "checksum": result_checksum(result_document),
                "summary": result.summary(),
            }
            _atomic_write_json(path, document)
        self.puts += 1
        return path

    # ------------------------------------------------------------------ #
    def entries(self) -> Iterable[Tuple[Scenario, SimulationResult]]:
        """Iterate over every (scenario, result) pair in the store."""
        for path in sorted(self.root.glob("*/*.json")):
            if path.parent.name == QUARANTINE_DIRNAME:
                continue
            try:
                with path.open("r", encoding="utf-8") as handle:
                    document = json.load(handle)
                yield (
                    Scenario.from_dict(document["scenario"]),
                    SimulationResult.from_dict(document["result"]),
                )
            except (OSError, ValueError, KeyError, TypeError) as exc:
                logger.warning("skipping unreadable cache entry %s (%s)", path, exc)

    def __len__(self) -> int:
        return sum(
            1
            for path in self.root.glob("*/*.json")
            if path.parent.name != QUARANTINE_DIRNAME
        )


# --------------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------------- #
def export_scenario_json(
    out_dir: Union[str, Path],
    scenario: Scenario,
    result: SimulationResult,
) -> Path:
    """Write one per-scenario JSON document and return its path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{scenario.dataset}-{scenario.accelerator}-{scenario.scenario_id}.json"
    document = {
        "scenario": scenario.to_dict(),
        "summary": result.summary(),
        "result": result.to_dict(),
    }
    _atomic_write_json(path, document)
    return path


def export_summary_csv(
    path: Union[str, Path],
    rows: Sequence[Dict[str, object]],
) -> Path:
    """Write the merged summary CSV (one row per scenario) and return its path."""
    if not rows:
        raise SimulationError("no rows to export; run the sweep first")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(SUMMARY_COLUMNS))
        writer.writeheader()
        for row in rows:
            writer.writerow({column: row.get(column, "") for column in SUMMARY_COLUMNS})
    return path


def export_summary_json(
    path: Union[str, Path],
    rows: Sequence[Dict[str, object]],
) -> Path:
    """Write the merged summary as a JSON array and return its path."""
    if not rows:
        raise SimulationError("no rows to export; run the sweep first")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_json(path, list(rows))
    return path


def load_sweep_rows(results_dir: Union[str, Path]) -> List[Dict[str, object]]:
    """Collect summary rows from a directory of per-scenario JSON documents.

    Accepts both the sweep output layout (flat ``*.json`` files) and the
    cache-store layout (two-level fan-out); merged summary files are ignored.
    Hidden directories (notably the ``.cache`` store a sweep places under its
    output root) are skipped, and documents describing the same scenario are
    deduplicated, so exporting an output tree that also contains the cache
    yields one row per scenario.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise SimulationError(f"no such results directory: {results_dir}")
    rows: List[Dict[str, object]] = []
    seen: set = set()
    duplicates = 0
    for path in sorted(results_dir.rglob("*.json")):
        relative = path.relative_to(results_dir)
        if any(part.startswith(".") for part in relative.parts):
            continue
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            logger.warning("skipping unreadable result %s (%s)", path, exc)
            continue
        if not isinstance(document, dict) or "scenario" not in document:
            continue
        try:
            scenario = Scenario.from_dict(document["scenario"])
            result = SimulationResult.from_dict(document["result"])
        except (KeyError, ValueError, TypeError) as exc:
            logger.warning("skipping malformed result %s (%s)", path, exc)
            continue
        if scenario.scenario_id in seen:
            duplicates += 1
            continue
        seen.add(scenario.scenario_id)
        rows.append(summary_row(scenario, result))
    if duplicates:
        logger.info("skipped %d duplicate scenario document(s)", duplicates)
    return rows


def _atomic_write_json(path: Path, payload: object) -> None:
    handle = tempfile.NamedTemporaryFile(
        "w",
        encoding="utf-8",
        dir=str(path.parent),
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(handle.name, path)
    except (KeyboardInterrupt, SystemExit):
        # Control-flow exceptions re-raise explicitly ahead of the broad
        # cleanup clause: an interrupt must never be delayed or re-labelled
        # by temp-file housekeeping.
        _unlink_quietly(handle.name)
        raise
    except BaseException:
        _unlink_quietly(handle.name)
        raise


def _unlink_quietly(name: str) -> None:
    try:
        os.unlink(name)
    except OSError:
        pass


__all__ = [
    "QUARANTINE_DIRNAME",
    "ResultStore",
    "SCHEMA_VERSION",
    "SUMMARY_COLUMNS",
    "export_scenario_json",
    "export_summary_csv",
    "export_summary_json",
    "load_sweep_rows",
    "result_checksum",
    "scenario_cache_key",
    "summary_row",
]
