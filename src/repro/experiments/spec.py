"""Declarative experiment specifications.

A :class:`Scenario` is one fully-determined simulation run — dataset,
accelerator, GCN variant, seed, scale caps, network depth, and a flat set of
:class:`~repro.core.config.SystemConfig` overrides.  Scenarios are plain data:
they serialise to JSON, hash deterministically (for the result cache), and
pickle cheaply (for the multiprocessing sweep runner).

A :class:`SweepSpec` declares axes (datasets x accelerators x variants x
seeds x depths x config overrides) and expands them into the cartesian grid
of scenarios, validating every axis value up front so a sweep fails before
the first simulation rather than hours in.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.accelerator.registry import ACCELERATOR_ALIASES, get_accelerator
from repro.accelerator.simulator import GCN_VARIANTS
from repro.core.config import HBM1, HBM2, DRAMConfig, SystemConfig
from repro.errors import ConfigurationError
from repro.graphs.datasets import DATASET_SPECS, DEFAULT_NUM_LAYERS

#: Named DRAM generations accepted by the ``"dram"`` override.
DRAM_GENERATIONS: Dict[str, DRAMConfig] = {"hbm1": HBM1, "hbm2": HBM2}

#: Flat SystemConfig override keys accepted by :meth:`Scenario.build_config`.
SUPPORTED_OVERRIDES: Tuple[str, ...] = (
    "cache_capacity_bytes",
    "cache_ways",
    "num_engines",
    "num_aggregation_engines",
    "num_combination_engines",
    "frequency_ghz",
    "simd_width",
    "systolic_rows",
    "systolic_cols",
    "dram",
    "dram_bandwidth_gbps",
    "sgcn_slice_size",
    "sac_strip_height",
    "pipeline_phases",
)


def _normalise_overrides(overrides: Mapping[str, object]) -> Dict[str, object]:
    """Validate override keys and return a plain, sorted dictionary."""
    unknown = sorted(set(overrides) - set(SUPPORTED_OVERRIDES))
    if unknown:
        raise ConfigurationError(
            f"unknown SystemConfig override(s) {unknown}; supported: "
            f"{', '.join(SUPPORTED_OVERRIDES)}"
        )
    return {key: overrides[key] for key in sorted(overrides)}


def build_config(
    overrides: Mapping[str, object], base: Optional[SystemConfig] = None
) -> SystemConfig:
    """Apply flat override keys to a base :class:`SystemConfig`.

    The frozen config dataclasses perform their own validation, so illegal
    combinations (e.g. a cache capacity that is not a multiple of
    ``ways * line_bytes``) surface as :class:`ConfigurationError` here rather
    than mid-sweep.
    """
    overrides = _normalise_overrides(overrides)
    config = base or SystemConfig()
    engines = config.engines
    cache = config.cache
    dram = config.dram

    if "num_engines" in overrides:
        count = int(overrides["num_engines"])
        engines = replace(
            engines,
            num_aggregation_engines=count,
            num_combination_engines=count,
        )
    for key in ("num_aggregation_engines", "num_combination_engines"):
        if key in overrides:
            engines = replace(engines, **{key: int(overrides[key])})
    for key in ("simd_width", "systolic_rows", "systolic_cols"):
        if key in overrides:
            engines = replace(engines, **{key: int(overrides[key])})
    if "frequency_ghz" in overrides:
        engines = replace(engines, frequency_ghz=float(overrides["frequency_ghz"]))

    if "cache_capacity_bytes" in overrides:
        cache = replace(cache, capacity_bytes=int(overrides["cache_capacity_bytes"]))
    if "cache_ways" in overrides:
        cache = replace(cache, ways=int(overrides["cache_ways"]))

    if "dram" in overrides:
        name = str(overrides["dram"]).lower()
        if name not in DRAM_GENERATIONS:
            raise ConfigurationError(
                f"unknown DRAM generation {overrides['dram']!r}; "
                f"choose from {', '.join(sorted(DRAM_GENERATIONS))}"
            )
        dram = DRAM_GENERATIONS[name]
    if "dram_bandwidth_gbps" in overrides:
        dram = replace(
            dram, peak_bandwidth_gbps=float(overrides["dram_bandwidth_gbps"])
        )

    config = replace(config, engines=engines, cache=cache, dram=dram)
    if "sgcn_slice_size" in overrides:
        config = replace(config, sgcn_slice_size=int(overrides["sgcn_slice_size"]))
    if "sac_strip_height" in overrides:
        config = replace(config, sac_strip_height=int(overrides["sac_strip_height"]))
    if "pipeline_phases" in overrides:
        config = replace(config, pipeline_phases=bool(overrides["pipeline_phases"]))
    return config


@dataclass(frozen=True)
class Scenario:
    """One fully-determined simulation run.

    Attributes:
        dataset: Dataset key (``"cora"``, ... — see Table II).
        accelerator: Accelerator registry name (``"sgcn"``, ``"gcnax"``, ...).
        variant: Aggregation variant (``"gcn"``, ``"gin"``, ``"sage"``).
        seed: Seed for topology generation and per-row sparsity draws.
        max_vertices: Scale cap applied when loading the dataset.
        max_sampled_layers: Representative-layer sampling budget.
        num_layers: GCN depth (paper default 28).
        overrides: Flat :class:`SystemConfig` overrides (see
            :data:`SUPPORTED_OVERRIDES`); empty means Table III defaults.
        tag: Optional free-form label carried into exports (e.g. the sweep
            axis value the scenario represents).
    """

    dataset: str
    accelerator: str
    variant: str = "gcn"
    seed: int = 0
    max_vertices: int = 2048
    max_sampled_layers: int = 6
    num_layers: int = DEFAULT_NUM_LAYERS
    overrides: Mapping[str, object] = field(default_factory=dict)
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "dataset", self.dataset.strip().lower())
        # Fold accelerator spellings to the canonical registry key (including
        # aliases) so e.g. "i-gcn" and "igcn" share one scenario identity and
        # cache entry.
        accelerator = (
            self.accelerator.strip().lower().replace("-", "_").replace(" ", "_")
        )
        accelerator = ACCELERATOR_ALIASES.get(accelerator, accelerator)
        object.__setattr__(self, "accelerator", accelerator)
        object.__setattr__(self, "variant", self.variant.strip().lower())
        object.__setattr__(self, "overrides", dict(self.overrides))

    def __hash__(self) -> int:
        # The frozen dataclass's generated __hash__ would hash the overrides
        # dict and raise; hash the canonical identity instead so scenarios
        # work in sets and as dict keys (consistent with field equality:
        # equal scenarios have equal keys, hence equal hashes).
        return hash((self.scenario_id, self.tag))

    # ------------------------------------------------------------------ #
    def validate(self) -> "Scenario":
        """Check every field against the library's registries.

        Returns ``self`` so the call chains; raises
        :class:`ConfigurationError` on the first problem.
        """
        if self.dataset not in DATASET_SPECS:
            raise ConfigurationError(
                f"unknown dataset {self.dataset!r}; available: "
                f"{', '.join(sorted(DATASET_SPECS))}"
            )
        get_accelerator(self.accelerator)
        if self.variant not in GCN_VARIANTS:
            raise ConfigurationError(
                f"unknown GCN variant {self.variant!r}; supported: "
                f"{', '.join(GCN_VARIANTS)}"
            )
        if self.num_layers <= 0:
            raise ConfigurationError("num_layers must be positive")
        if self.max_vertices < 2:
            raise ConfigurationError("max_vertices must be at least 2")
        if self.max_sampled_layers <= 0:
            raise ConfigurationError("max_sampled_layers must be positive")
        build_config(self.overrides)
        return self

    def build_config(self, base: Optional[SystemConfig] = None) -> SystemConfig:
        """The :class:`SystemConfig` this scenario runs under."""
        return build_config(self.overrides, base=base)

    # ------------------------------------------------------------------ #
    def key(self) -> Dict[str, object]:
        """Canonical mapping that determines the scenario's identity.

        Everything that can change the simulation output is included; the
        display-only ``tag`` is not.
        """
        return {
            "dataset": self.dataset,
            "accelerator": self.accelerator,
            "variant": self.variant,
            "seed": int(self.seed),
            "max_vertices": int(self.max_vertices),
            "max_sampled_layers": int(self.max_sampled_layers),
            "num_layers": int(self.num_layers),
            "overrides": _normalise_overrides(self.overrides),
        }

    @property
    def scenario_id(self) -> str:
        """Deterministic 12-hex-digit identity derived from :meth:`key`."""
        payload = json.dumps(self.key(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def label(self) -> str:
        """Human-readable one-line description used in logs."""
        parts = [self.dataset, self.accelerator]
        if self.variant != "gcn":
            parts.append(self.variant)
        if self.num_layers != DEFAULT_NUM_LAYERS:
            parts.append(f"L{self.num_layers}")
        if self.seed:
            parts.append(f"seed{self.seed}")
        for key, value in sorted(self.overrides.items()):
            parts.append(f"{key}={value}")
        return "/".join(str(part) for part in parts)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        data = self.key()
        data["tag"] = self.tag
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Rebuild a scenario produced by :meth:`to_dict`."""
        return cls(
            dataset=str(data["dataset"]),
            accelerator=str(data["accelerator"]),
            variant=str(data.get("variant", "gcn")),
            seed=int(data.get("seed", 0)),
            max_vertices=int(data.get("max_vertices", 2048)),
            max_sampled_layers=int(data.get("max_sampled_layers", 6)),
            num_layers=int(data.get("num_layers", DEFAULT_NUM_LAYERS)),
            overrides=dict(data.get("overrides", {})),
            tag=str(data.get("tag", "")),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of scenarios.

    The grid is the cartesian product of the five axes (``datasets`` x
    ``accelerators`` x ``variants`` x ``seeds`` x ``depths`` x
    ``override_grid``); scalar run parameters (``max_vertices``,
    ``max_sampled_layers``) are shared by every scenario.

    Attributes:
        name: Sweep name (used for output directories).
        datasets: Dataset keys to sweep.
        accelerators: Accelerator registry names to sweep.
        variants: Aggregation variants to sweep.
        seeds: RNG seeds to sweep.
        depths: GCN depths (``num_layers``) to sweep.
        override_grid: One :class:`SystemConfig` override mapping per grid
            point; ``[{}]`` means a single point at Table III defaults.
        override_tags: Optional display tag per override grid point (same
            length as ``override_grid``).
        max_vertices: Scale cap shared by every scenario.
        max_sampled_layers: Layer-sampling budget shared by every scenario.
        description: One-line description shown by ``repro list``.
    """

    name: str
    datasets: Sequence[str]
    accelerators: Sequence[str]
    variants: Sequence[str] = ("gcn",)
    seeds: Sequence[int] = (0,)
    depths: Sequence[int] = (DEFAULT_NUM_LAYERS,)
    override_grid: Sequence[Mapping[str, object]] = (
        field(default_factory=lambda: [{}])
    )
    override_tags: Sequence[str] = ()
    max_vertices: int = 2048
    max_sampled_layers: int = 6
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep name must not be empty")
        for axis_name in ("datasets", "accelerators", "variants", "seeds", "depths"):
            if not list(getattr(self, axis_name)):
                raise ConfigurationError(f"sweep axis {axis_name!r} must not be empty")
        grid = [dict(point) for point in self.override_grid]
        if not grid:
            raise ConfigurationError("override_grid must not be empty (use [{}])")
        object.__setattr__(self, "override_grid", grid)
        tags = list(self.override_tags)
        if tags and len(tags) != len(grid):
            raise ConfigurationError(
                "override_tags must match override_grid in length "
                f"(got {len(tags)} tags for {len(grid)} grid points)"
            )
        object.__setattr__(self, "override_tags", tags)

    # ------------------------------------------------------------------ #
    @property
    def num_scenarios(self) -> int:
        """Size of the expanded grid."""
        return (
            len(list(self.datasets))
            * len(list(self.accelerators))
            * len(list(self.variants))
            * len(list(self.seeds))
            * len(list(self.depths))
            * len(list(self.override_grid))
        )

    def expand(self, validate: bool = True) -> List[Scenario]:
        """Expand the axes into the cartesian grid of scenarios.

        Args:
            validate: Check every scenario against the registries (datasets,
                accelerators, variants, config legality) before returning.

        Returns:
            The scenarios in deterministic axis order (overrides outermost,
            then dataset, accelerator, variant, seed, depth).
        """
        scenarios: List[Scenario] = []
        for grid_index, overrides in enumerate(self.override_grid):
            tag = self.override_tags[grid_index] if self.override_tags else ""
            for dataset, accelerator, variant, seed, depth in itertools.product(
                self.datasets, self.accelerators, self.variants, self.seeds, self.depths
            ):
                scenarios.append(
                    Scenario(
                        dataset=dataset,
                        accelerator=accelerator,
                        variant=variant,
                        seed=seed,
                        max_vertices=self.max_vertices,
                        max_sampled_layers=self.max_sampled_layers,
                        num_layers=depth,
                        overrides=overrides,
                        tag=tag,
                    )
                )
        if validate:
            for scenario in scenarios:
                scenario.validate()
        unique = {scenario.scenario_id for scenario in scenarios}
        if len(unique) != len(scenarios):
            raise ConfigurationError(
                f"sweep {self.name!r} expands to duplicate scenarios; "
                "check the axes for repeated values"
            )
        return scenarios

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "datasets": list(self.datasets),
            "accelerators": list(self.accelerators),
            "variants": list(self.variants),
            "seeds": [int(seed) for seed in self.seeds],
            "depths": [int(depth) for depth in self.depths],
            "override_grid": [dict(point) for point in self.override_grid],
            "override_tags": list(self.override_tags),
            "max_vertices": int(self.max_vertices),
            "max_sampled_layers": int(self.max_sampled_layers),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a spec produced by :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            datasets=list(data["datasets"]),
            accelerators=list(data["accelerators"]),
            variants=list(data.get("variants", ["gcn"])),
            seeds=[int(seed) for seed in data.get("seeds", [0])],
            depths=[int(depth) for depth in data.get("depths", [DEFAULT_NUM_LAYERS])],
            override_grid=[dict(point) for point in data.get("override_grid", [{}])],
            override_tags=list(data.get("override_tags", [])),
            max_vertices=int(data.get("max_vertices", 2048)),
            max_sampled_layers=int(data.get("max_sampled_layers", 6)),
            description=str(data.get("description", "")),
        )

    def scaled_to(self, max_vertices: int) -> "SweepSpec":
        """Return a copy with a different shared ``max_vertices`` cap."""
        return replace(self, max_vertices=max_vertices)


__all__ = [
    "DRAM_GENERATIONS",
    "SUPPORTED_OVERRIDES",
    "Scenario",
    "SweepSpec",
    "build_config",
]
