"""Declarative experiment specifications.

A :class:`Scenario` is one fully-determined simulation run.  Historically
this module owned that dataclass; it is now literally the canonical
:class:`repro.core.runspec.RunSpec` — ``Scenario`` is an alias, kept so
experiment code, cached sweep output, and pickled payloads keep working while
validation, identity (``scenario_id``), and ``to_dict``/``from_dict`` exist
exactly once in :mod:`repro.core.runspec`.

A :class:`SweepSpec` declares axes (datasets x accelerators x variants x
seeds x depths x sparsity modes x config overrides x design overrides) and
expands them into the cartesian grid of run specs, validating every axis
value up front so a sweep fails before the first simulation rather than
hours in.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.runspec import (
    DRAM_GENERATIONS,
    SUPPORTED_OVERRIDES,
    RunSpec,
    build_config,
)
from repro.errors import ConfigurationError
from repro.graphs.datasets import DEFAULT_NUM_LAYERS

#: One fully-determined simulation run — the canonical
#: :class:`repro.core.runspec.RunSpec` under its historical experiment name.
Scenario = RunSpec


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of scenarios.

    The grid is the cartesian product of the axes (``datasets`` x
    ``accelerators`` x ``variants`` x ``seeds`` x ``depths`` x
    ``sparsities`` x ``override_grid`` x ``design_grid``); scalar run
    parameters (``max_vertices``, ``max_sampled_layers``) are shared by
    every scenario.

    Attributes:
        name: Sweep name (used for output directories).
        datasets: Dataset keys to sweep.
        accelerators: Accelerator registry names to sweep.
        variants: Aggregation variants to sweep.
        seeds: RNG seeds to sweep.
        depths: GCN depths (``num_layers``) to sweep.
        sparsities: Sparsity modes to sweep (see
            :data:`~repro.gcn.providers.SPARSITY_MODES`); ``(None,)`` — the
            default — runs the synthetic profile with the axis left out of
            every scenario identity.
        override_grid: One :class:`SystemConfig` override mapping per grid
            point; ``[{}]`` means a single point at Table III defaults.
        override_tags: Optional display tag per override grid point (same
            length as ``override_grid``).
        design_grid: One :class:`~repro.accelerator.design.DesignPoint` knob
            override mapping per grid point; ``[{}]`` means a single point
            running each accelerator's design as registered.
        design_tags: Optional display tag per design grid point (same length
            as ``design_grid``).
        max_vertices: Scale cap shared by every scenario.
        max_sampled_layers: Layer-sampling budget shared by every scenario.
        description: One-line description shown by ``repro list``.
    """

    name: str
    datasets: Sequence[str]
    accelerators: Sequence[str]
    variants: Sequence[str] = ("gcn",)
    seeds: Sequence[int] = (0,)
    depths: Sequence[int] = (DEFAULT_NUM_LAYERS,)
    sparsities: Sequence[Optional[str]] = (None,)
    override_grid: Sequence[Mapping[str, object]] = (
        field(default_factory=lambda: [{}])
    )
    override_tags: Sequence[str] = ()
    design_grid: Sequence[Mapping[str, object]] = (
        field(default_factory=lambda: [{}])
    )
    design_tags: Sequence[str] = ()
    max_vertices: int = 2048
    max_sampled_layers: int = 6
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep name must not be empty")
        for axis_name in (
            "datasets",
            "accelerators",
            "variants",
            "seeds",
            "depths",
            "sparsities",
        ):
            if not list(getattr(self, axis_name)):
                raise ConfigurationError(f"sweep axis {axis_name!r} must not be empty")
        for grid_name in ("override_grid", "design_grid"):
            grid = [dict(point) for point in getattr(self, grid_name)]
            if not grid:
                raise ConfigurationError(
                    f"{grid_name} must not be empty (use [{{}}])"
                )
            object.__setattr__(self, grid_name, grid)
            tags_name = grid_name.replace("_grid", "_tags")
            tags = list(getattr(self, tags_name))
            if tags and len(tags) != len(grid):
                raise ConfigurationError(
                    f"{tags_name} must match {grid_name} in length "
                    f"(got {len(tags)} tags for {len(grid)} grid points)"
                )
            object.__setattr__(self, tags_name, tags)

    # ------------------------------------------------------------------ #
    @property
    def num_scenarios(self) -> int:
        """Size of the expanded grid."""
        return (
            len(list(self.datasets))
            * len(list(self.accelerators))
            * len(list(self.variants))
            * len(list(self.seeds))
            * len(list(self.depths))
            * len(list(self.sparsities))
            * len(list(self.override_grid))
            * len(list(self.design_grid))
        )

    def expand(self, validate: bool = True) -> List[Scenario]:
        """Expand the axes into the cartesian grid of run specs.

        Args:
            validate: Check every spec against the registries (datasets,
                accelerators, variants, config legality) before returning.

        Returns:
            The specs in deterministic axis order (design overrides
            outermost, then config overrides, dataset, accelerator, variant,
            seed, depth, sparsity mode).
        """
        scenarios: List[Scenario] = []
        for design_index, design in enumerate(self.design_grid):
            design_tag = self.design_tags[design_index] if self.design_tags else ""
            for grid_index, overrides in enumerate(self.override_grid):
                tag = self.override_tags[grid_index] if self.override_tags else ""
                combined_tag = "/".join(part for part in (tag, design_tag) if part)
                for (
                    dataset,
                    accelerator,
                    variant,
                    seed,
                    depth,
                    sparsity,
                ) in itertools.product(
                    self.datasets,
                    self.accelerators,
                    self.variants,
                    self.seeds,
                    self.depths,
                    self.sparsities,
                ):
                    scenarios.append(
                        Scenario(
                            dataset=dataset,
                            accelerator=accelerator,
                            variant=variant,
                            seed=seed,
                            max_vertices=self.max_vertices,
                            max_sampled_layers=self.max_sampled_layers,
                            num_layers=depth,
                            overrides=overrides,
                            design=design or None,
                            sparsity=sparsity,
                            tag=combined_tag,
                        )
                    )
        if validate:
            for scenario in scenarios:
                scenario.validate()
        unique = {scenario.scenario_id for scenario in scenarios}
        if len(unique) != len(scenarios):
            raise ConfigurationError(
                f"sweep {self.name!r} expands to duplicate scenarios; "
                "check the axes for repeated values"
            )
        return scenarios

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Round-trip serialisation (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "datasets": list(self.datasets),
            "accelerators": list(self.accelerators),
            "variants": list(self.variants),
            "seeds": [int(seed) for seed in self.seeds],
            "depths": [int(depth) for depth in self.depths],
            "sparsities": [
                None if mode is None else str(mode) for mode in self.sparsities
            ],
            "override_grid": [dict(point) for point in self.override_grid],
            "override_tags": list(self.override_tags),
            "design_grid": [dict(point) for point in self.design_grid],
            "design_tags": list(self.design_tags),
            "max_vertices": int(self.max_vertices),
            "max_sampled_layers": int(self.max_sampled_layers),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a spec produced by :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            datasets=list(data["datasets"]),
            accelerators=list(data["accelerators"]),
            variants=list(data.get("variants", ["gcn"])),
            seeds=[int(seed) for seed in data.get("seeds", [0])],
            depths=[int(depth) for depth in data.get("depths", [DEFAULT_NUM_LAYERS])],
            sparsities=[
                None if mode is None else str(mode)
                for mode in data.get("sparsities", [None])
            ],
            override_grid=[dict(point) for point in data.get("override_grid", [{}])],
            override_tags=list(data.get("override_tags", [])),
            design_grid=[dict(point) for point in data.get("design_grid", [{}])],
            design_tags=list(data.get("design_tags", [])),
            max_vertices=int(data.get("max_vertices", 2048)),
            max_sampled_layers=int(data.get("max_sampled_layers", 6)),
            description=str(data.get("description", "")),
        )

    def scaled_to(self, max_vertices: int) -> "SweepSpec":
        """Return a copy with a different shared ``max_vertices`` cap."""
        return replace(self, max_vertices=max_vertices)


__all__ = [
    "DRAM_GENERATIONS",
    "SUPPORTED_OVERRIDES",
    "RunSpec",
    "Scenario",
    "SweepSpec",
    "build_config",
]
