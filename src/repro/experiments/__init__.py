"""Parallel experiment sweeps over the SGCN performance model.

This subsystem sits above :func:`repro.core.api.simulate` and provides the
declarative layer the paper's evaluation needs:

* :mod:`repro.experiments.spec` — :class:`Scenario` / :class:`SweepSpec`
  dataclasses that expand axes into a validated cartesian grid of runs;
* :mod:`repro.experiments.runner` — :class:`SweepRunner`, a multiprocessing
  executor with per-run error isolation, retry/timeout policies, worker-death
  recovery, and sweep checkpointing (see :mod:`repro.resilience`);
* :mod:`repro.experiments.store` — :class:`ResultStore`, a content-addressed
  on-disk result cache, plus JSON/CSV exporters;
* :mod:`repro.experiments.scenarios` — built-in packs reproducing the
  paper's evaluation shapes (main comparison grid, cache/engine/HBM/depth
  sensitivity sweeps);
* :mod:`repro.experiments.cli` — the ``python -m repro`` command line.

Quickstart::

    from repro.experiments import SweepRunner, ResultStore, get_pack

    spec = get_pack("paper-comparison", max_vertices=512)
    runner = SweepRunner(store=ResultStore("results/.cache"), workers=4)
    report = runner.run(spec.expand())
    print(report.num_simulated, report.num_cached, report.num_failed)
"""

from __future__ import annotations

from repro.experiments.runner import (
    RunOutcome,
    SweepReport,
    SweepRunner,
    run_scenario,
)
from repro.experiments.scenarios import (
    SCENARIO_PACKS,
    available_packs,
    get_pack,
)
from repro.experiments.spec import (
    SUPPORTED_OVERRIDES,
    RunSpec,
    Scenario,
    SweepSpec,
    build_config,
)
from repro.experiments.store import (
    ResultStore,
    export_scenario_json,
    export_summary_csv,
    export_summary_json,
    load_sweep_rows,
    summary_row,
)

__all__ = [
    "RunOutcome",
    "SweepReport",
    "SweepRunner",
    "run_scenario",
    "SCENARIO_PACKS",
    "available_packs",
    "get_pack",
    "SUPPORTED_OVERRIDES",
    "RunSpec",
    "Scenario",
    "SweepSpec",
    "build_config",
    "ResultStore",
    "export_scenario_json",
    "export_summary_csv",
    "export_summary_json",
    "load_sweep_rows",
    "summary_row",
]
