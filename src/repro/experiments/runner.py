"""Parallel sweep execution.

:class:`SweepRunner` turns a list of :class:`~repro.experiments.spec.Scenario`
objects into :class:`RunOutcome` records:

* cached scenarios are answered from the :class:`ResultStore` without
  touching the worker pool (incremental re-runs are near-no-ops);
* the remaining scenarios are dispatched to a ``multiprocessing`` pool in a
  bounded window of ``apply_async`` tasks; scenarios cross the process
  boundary as plain dictionaries and results come back as ``to_dict()``
  payloads, so the parent reconstructs identical :class:`SimulationResult`
  objects whether a run happened in-process (``workers=1``) or in a worker;
* each worker run is wrapped in its own try/except, so one failing scenario
  reports an error outcome instead of killing the sweep.

Serial and pool paths share one executor (:func:`_execute_payload`), so both
produce byte-identical payload dictionaries: results round-trip through
``to_dict()``/``from_dict()``, errors ship as structured
``{type, message, traceback}`` blocks, and — under ``profile=True`` — each
run carries its own telemetry delta (span tree + cache-counter changes, see
:mod:`repro.telemetry`).  The parent merges the per-run deltas into the sweep
aggregate exposed by :meth:`SweepReport.metrics_document`.

Failure handling is declarative (:mod:`repro.resilience`): an
:class:`~repro.resilience.policy.ExecutionPolicy` governs per-run retries
(deterministic backoff), wall-clock budgets (cooperative deadline in the
worker, ``AsyncResult`` reclamation in the parent), and graceful degradation
(measured-sparsity fallback, store failures downgraded to misses).  A
SIGKILLed pool worker is detected through the pool's pid set; its in-flight
scenarios are re-dispatched on the serial path instead of hanging the sweep.
An optional :class:`~repro.resilience.checkpoint.SweepCheckpoint` records
per-scenario accounting so ``--resume`` can skip completed work.

Everything the simulation depends on is seeded from the scenario, so serial
and parallel sweeps of the same spec produce identical summaries.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.core.session import Session, default_session, replay_class_key
from repro.errors import ConfigurationError, RunTimeoutError
from repro.experiments.spec import Scenario
from repro.experiments.store import ResultStore
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import (
    FaultPlan,
    active_faults,
    arm_faults,
    disarm_faults,
    fault_point,
)
from repro.resilience.policy import ExecutionPolicy, deadline_scope, policy_scope
from repro.telemetry.metrics import (
    cache_hit_ratios,
    diff_counters,
    merge_counters,
    merge_spans,
)
from repro.telemetry.spans import reset_spans, set_enabled, span_snapshot

logger = logging.getLogger(__name__)

ProgressCallback = Callable[["RunOutcome", int, int], None]

#: Parent-side poll interval while waiting on pool completions (seconds).
_POOL_POLL_S = 0.05


def run_scenario(
    scenario: Scenario,
    session: Optional[Session] = None,
    capacity_spectrum: Sequence[int] = (),
) -> SimulationResult:
    """Execute one scenario in the current process.

    The dataset topology, the per-row sparsity draws, and the layer-sampling
    budget are all derived from the scenario, so repeated calls are
    bit-identical.  The scenario's identity is recorded in the result's
    metadata for downstream exports.

    Args:
        scenario: The run to execute (validated against the registries).
        session: Session to execute under; the process-wide default session
            when omitted, so repeated calls share memoized datasets.
        capacity_spectrum: Cache capacities (bytes) of the scenario's
            replay-knob class; identity-neutral, see :meth:`Session.run`.
    """
    return (session or default_session()).run(
        scenario, annotate=True, capacity_spectrum=capacity_spectrum
    )


#: Per-worker-process session, so the scenarios of one pool chunk reuse
#: memoized datasets (created lazily inside the worker, never inherited).
_WORKER_SESSION: Optional[Session] = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _error_block(exc: BaseException) -> Dict[str, object]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(),
    }


def _execute_payload(
    session: Session,
    scenario: Scenario,
    profile: bool,
    policy: Optional[ExecutionPolicy] = None,
    capacity_spectrum: Sequence[int] = (),
) -> Dict[str, object]:
    """Run one scenario and build the wire payload (serial and pool path).

    Success payloads carry the result as a ``to_dict()`` document; failures
    carry a structured ``{"type", "message", "traceback"}`` error block.
    Every payload reports ``attempts`` (total tries under the policy's
    :class:`~repro.resilience.policy.RetryPolicy`), ``timed_out`` (the final
    failure was a blown wall-clock budget), and ``degraded`` (the run fell
    back to synthetic sparsity).  Under ``profile=True`` the payload
    additionally ships a ``telemetry`` delta: the span tree recorded during
    this run plus the change in the session's cache counters — both
    attributable to exactly this scenario, so the parent can merge worker
    telemetry without double counting.

    Only ordinary :class:`Exception` is isolated: KeyboardInterrupt /
    SystemExit must still abort the sweep (especially in serial mode, where
    this runs in the main process).
    """
    if policy is None:
        policy = ExecutionPolicy()
    retry = policy.retry
    before = session.metrics_snapshot()["caches"] if profile else None
    previous_enabled: Optional[bool] = None
    if profile:
        previous_enabled = set_enabled(True)
        reset_spans()
    started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
    attempts = 0
    timed_out = False
    degraded = False
    try:
        with policy_scope(policy):
            while True:
                attempts += 1
                try:
                    fault_point("worker:execute")
                    with deadline_scope(policy.run_timeout_s):
                        result = run_scenario(
                            scenario,
                            session=session,
                            capacity_spectrum=capacity_spectrum,
                        )
                except Exception as exc:  # noqa: BLE001 — isolation is the point
                    if retry is not None and retry.should_retry(exc, attempts):
                        logger.warning(
                            "retrying %s after %s: %s (attempt %d/%d)",
                            scenario.label(),
                            type(exc).__name__,
                            exc,
                            attempts,
                            retry.max_attempts,
                        )
                        retry.sleep_before(attempts, scenario.scenario_id)
                    else:
                        timed_out = isinstance(exc, RunTimeoutError)
                        payload = {"ok": False, "error": _error_block(exc)}
                        break
                else:
                    degraded = bool(result.metadata.get("degraded", False))
                    payload = {"ok": True, "result": result.to_dict()}
                    break
    finally:
        payload_elapsed = time.perf_counter() - started  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        if profile:
            telemetry = {
                "spans": span_snapshot(),
                "caches": diff_counters(
                    before, session.metrics_snapshot()["caches"]
                ),
            }
            reset_spans()
            set_enabled(previous_enabled)
    payload["elapsed_s"] = payload_elapsed
    payload["attempts"] = attempts
    payload["timed_out"] = timed_out
    payload["degraded"] = degraded
    if profile:
        payload["telemetry"] = telemetry
    return payload


def _worker_execute(
    payload: Tuple[
        int,
        Dict[str, object],
        bool,
        Optional[Dict[str, object]],
        Optional[Dict[str, object]],
    ]
) -> Tuple[int, Dict[str, object]]:
    """Pool entry point: run one scenario, never raise.

    The wire tuple carries the scenario plus the sweep's fault plan and
    execution policy as plain dictionaries.  The fault plan is armed once
    per worker *process* (fresh counters — injection schedules are
    per-worker deterministic); the policy is rebuilt per task.
    """
    index, scenario_dict, profile, plan_dict, policy_dict = payload
    if plan_dict is not None and active_faults() is None:
        arm_faults(FaultPlan.from_dict(plan_dict))
    policy = (
        ExecutionPolicy.from_dict(policy_dict) if policy_dict is not None else None
    )
    started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
    try:
        scenario = Scenario.from_dict(scenario_dict)
    except Exception as exc:  # noqa: BLE001 — a bad payload must not kill the pool
        return index, {
            "ok": False,
            "error": _error_block(exc),
            "elapsed_s": time.perf_counter() - started,  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
            "attempts": 1,
            "timed_out": False,
            "degraded": False,
        }
    return index, _execute_payload(_worker_session(), scenario, profile, policy)


def _worker_execute_group(
    payload: Tuple[
        List[int],
        List[Dict[str, object]],
        bool,
        Optional[Dict[str, object]],
        Optional[Dict[str, object]],
        List[int],
    ]
) -> List[Tuple[int, Dict[str, object]]]:
    """Pool entry point: run one replay-knob class on one worker, never raise.

    Dispatching the whole class as a single task pins it to one worker
    session, so the class's trace, schedule, and spectrum-seeded replay memo
    are shared across its scenarios instead of being rebuilt wherever the
    scheduler happened to scatter them.  Each scenario still produces its own
    :func:`_execute_payload` dictionary (telemetry deltas, retries, and
    errors stay per-scenario).
    """
    indices, scenario_dicts, profile, plan_dict, policy_dict, spectrum = payload
    if plan_dict is not None and active_faults() is None:
        arm_faults(FaultPlan.from_dict(plan_dict))
    policy = (
        ExecutionPolicy.from_dict(policy_dict) if policy_dict is not None else None
    )
    results: List[Tuple[int, Dict[str, object]]] = []
    for index, scenario_dict in zip(indices, scenario_dicts):
        started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        try:
            scenario = Scenario.from_dict(scenario_dict)
        except Exception as exc:  # noqa: BLE001 — a bad payload must not kill the pool
            results.append(
                (
                    index,
                    {
                        "ok": False,
                        "error": _error_block(exc),
                        "elapsed_s": time.perf_counter() - started,  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
                        "attempts": 1,
                        "timed_out": False,
                        "degraded": False,
                    },
                )
            )
            continue
        results.append(
            (
                index,
                _execute_payload(
                    _worker_session(),
                    scenario,
                    profile,
                    policy,
                    capacity_spectrum=tuple(spectrum),
                ),
            )
        )
    return results


def _replay_knob_groups(
    pending: Sequence[Tuple[int, Scenario]],
) -> List[Tuple[List[Tuple[int, Scenario]], Tuple[int, ...]]]:
    """Partition pending scenarios into dispatch units.

    Returns one ``(members, capacity_spectrum)`` task per replay-knob
    equivalence class (:func:`repro.core.session.replay_class_key`), in order
    of first appearance; members keep their relative order.  The spectrum is
    the class's distinct cache capacities — empty unless the class actually
    sweeps the capacity knob.
    """
    base_capacity = int(SystemConfig().cache.capacity_bytes)
    groups: "OrderedDict[Tuple, List[Tuple[int, Scenario]]]" = OrderedDict()
    for index, scenario in pending:
        groups.setdefault(replay_class_key(scenario), []).append((index, scenario))
    tasks: List[Tuple[List[Tuple[int, Scenario]], Tuple[int, ...]]] = []
    for members in groups.values():
        capacities = list(
            dict.fromkeys(
                int(scenario.overrides.get("cache_capacity_bytes", base_capacity))  # type: ignore[call-overload]
                for _, scenario in members
            )
        )
        spectrum = tuple(capacities) if len(capacities) > 1 else ()
        tasks.append((members, spectrum))
    return tasks


@dataclass
class RunOutcome:
    """What happened to one scenario of a sweep.

    Attributes:
        scenario: The scenario that was (or failed to be) simulated.
        result: The simulation result; ``None`` when ``error`` is set.
        error: ``"ExcType: message"`` of a failed run; ``None`` on success.
        error_type: Exception class name of a failed run.
        traceback: Full traceback text of a failed run (crosses the worker
            boundary intact, so pool failures debug like serial ones).
        cached: Whether the result came from the store without simulating.
        elapsed_s: Wall-clock seconds the run took (0 for cache hits).
        telemetry: Per-run telemetry delta (``{"spans", "caches"}``) when the
            sweep ran with ``profile=True``; ``None`` otherwise.
        attempts: Total execution attempts under the retry policy (1 when
            the first try settled it).
        timed_out: The run failed by exceeding its wall-clock budget (either
            cooperatively or by parent-side reclamation).
        degraded: The run completed on a fallback path (synthetic sparsity
            after a failed measured harvest); the result is valid but not
            what the scenario nominally asked for, and is never cached.
    """

    scenario: Scenario
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    cached: bool = False
    elapsed_s: float = 0.0
    telemetry: Optional[Dict[str, object]] = None
    attempts: int = 1
    timed_out: bool = False
    degraded: bool = False

    @property
    def ok(self) -> bool:
        """Whether the scenario produced a result."""
        return self.result is not None


@dataclass
class SweepReport:
    """Aggregate outcome of one :meth:`SweepRunner.run` call."""

    outcomes: List[RunOutcome]
    elapsed_s: float = 0.0
    store_stats: Optional[Dict[str, int]] = None

    @property
    def num_cached(self) -> int:
        """Scenarios answered from the result cache."""
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def num_simulated(self) -> int:
        """Scenarios actually simulated this run."""
        return sum(1 for outcome in self.outcomes if outcome.ok and not outcome.cached)

    @property
    def num_failed(self) -> int:
        """Scenarios that raised inside the worker."""
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def num_degraded(self) -> int:
        """Scenarios that completed on a fallback path."""
        return sum(1 for outcome in self.outcomes if outcome.degraded)

    @property
    def num_timed_out(self) -> int:
        """Scenarios that failed by blowing their wall-clock budget."""
        return sum(1 for outcome in self.outcomes if outcome.timed_out)

    @property
    def num_retried(self) -> int:
        """Scenarios that needed more than one execution attempt."""
        return sum(1 for outcome in self.outcomes if outcome.attempts > 1)

    @property
    def failures(self) -> List[RunOutcome]:
        """The failed outcomes, in scenario order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def successes(self) -> List[RunOutcome]:
        """The successful outcomes, in scenario order."""
        return [outcome for outcome in self.outcomes if outcome.ok]

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds of the whole sweep (including cache hits)."""
        return self.elapsed_s

    @property
    def runs_per_second(self) -> float:
        """Scenario throughput over the sweep's wall-clock (0 if instant)."""
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed_s

    def phase_totals(self) -> Dict[str, Dict[str, object]]:
        """Per-run span trees merged across every profiled outcome."""
        spans: Dict[str, Dict[str, object]] = {}
        for outcome in self.outcomes:
            if outcome.telemetry:
                merge_spans(spans, outcome.telemetry.get("spans", {}))
        return spans

    def cache_totals(self) -> Dict[str, object]:
        """Per-run cache-counter deltas summed across profiled outcomes."""
        caches: Dict[str, object] = {}
        for outcome in self.outcomes:
            if outcome.telemetry:
                merge_counters(caches, outcome.telemetry.get("caches", {}))
        return caches

    def metrics_document(self, pack: Optional[str] = None) -> Dict[str, object]:
        """One sweep's aggregate block of a ``sweep-profile`` metrics document.

        Merges every outcome's telemetry delta (span trees summed node-wise,
        cache counters summed leaf-wise) and folds in the sweep-level
        run counts and throughput.  Feed a list of these to
        :func:`repro.telemetry.metrics.sweep_metrics_document`.
        """
        caches = self.cache_totals()
        if self.store_stats is not None:
            caches = dict(caches)
            caches["store"] = dict(self.store_stats)
        document: Dict[str, object] = {
            "total_runs": len(self.outcomes),
            "simulated": self.num_simulated,
            "cached": self.num_cached,
            "failed": self.num_failed,
            "degraded": self.num_degraded,
            "timed_out": self.num_timed_out,
            "retried": self.num_retried,
            "elapsed_seconds": self.elapsed_s,
            "runs_per_second": self.runs_per_second,
            "spans": self.phase_totals(),
            "caches": caches,
            "cache_hit_ratios": cache_hit_ratios(caches),
        }
        if pack is not None:
            document["pack"] = pack
        return document


class _InFlight:
    """Parent-side bookkeeping for one dispatched pool task.

    A task is one replay-knob class: ``members`` holds its
    ``(index, scenario)`` pairs (a single-scenario task is just a class of
    one), and ``spectrum`` the class's capacity vector.
    """

    __slots__ = ("members", "spectrum", "async_result", "dispatched_at")

    def __init__(
        self,
        members: List[Tuple[int, Scenario]],
        spectrum: Tuple[int, ...],
        async_result: "multiprocessing.pool.AsyncResult",
        dispatched_at: float,
    ) -> None:
        self.members = members
        self.spectrum = spectrum
        self.async_result = async_result
        self.dispatched_at = dispatched_at


def _pool_pids(pool: "multiprocessing.pool.Pool") -> Set[int]:
    """Current worker pids of ``pool`` (private API, read defensively)."""
    processes = getattr(pool, "_pool", None) or ()
    return {process.pid for process in processes if process.pid is not None}


class SweepRunner:
    """Execute scenarios across a worker pool with result caching.

    Args:
        store: Optional :class:`ResultStore`; when given, hits skip the pool
            and fresh results are written back.
        workers: Worker processes; ``1`` runs everything in-process (no pool
            unless ``force_pool``).
        chunk_size: Accepted for API compatibility (validated, otherwise
            unused): windowed ``apply_async`` dispatch replaced chunked
            ``imap`` so hung tasks can be reclaimed individually.
        mp_context: ``multiprocessing`` start method (``"fork"``/``"spawn"``);
            platform default when omitted.
        profile: Record per-run telemetry (phase spans + cache-counter
            deltas) into each :class:`RunOutcome`; the aggregate is exposed
            by :meth:`SweepReport.metrics_document`.  Results are
            byte-identical with profiling on or off.
        policy: Failure-handling contract (retries, wall-clock budget,
            degradation); the default :class:`ExecutionPolicy` means one
            attempt, no budget, degradation allowed.
        faults: Optional :class:`FaultPlan` armed around execution — in each
            worker process on the pool path, around the loop on the serial
            path.  ``None`` (production) leaves the hooks on their null
            fast path.
        checkpoint_path: Where to flush the sweep's
            :class:`SweepCheckpoint`; ``None`` disables checkpointing.
        checkpoint_interval: Outcomes between checkpoint flushes.
        resume: Consult an existing checkpoint at ``checkpoint_path`` and
            report previously completed scenarios (their results are
            answered by the store as cache hits); failed/degraded/missing
            scenarios re-execute.
        force_pool: Use the pool path even for one worker (chaos tests need
            a killable single-worker pool).
        worker_grace_s: After a worker death is detected, how long still
            in-flight tasks may finish before they are presumed lost and
            re-dispatched serially.
        grouped: Partition scenarios into replay-knob equivalence classes
            before dispatch (:func:`_replay_knob_groups`).  A class executes
            back-to-back on one session — the whole class on one pool worker
            — so trace/schedule/replay structures build once per class and a
            capacity-sweep class answers its spectrum in a single replay
            evaluation.  Results, checkpointing, and per-scenario telemetry
            are identical either way; only the execution order changes.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
        profile: bool = False,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: int = 8,
        resume: bool = False,
        force_pool: bool = False,
        worker_grace_s: float = 5.0,
        grouped: bool = True,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        if checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be at least 1")
        if worker_grace_s < 0:
            raise ConfigurationError("worker_grace_s must be >= 0")
        self.store = store
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.profile = profile
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.force_pool = force_pool
        self.worker_grace_s = worker_grace_s
        self.grouped = grouped

    # ------------------------------------------------------------------ #
    def run(
        self,
        scenarios: Sequence[Scenario],
        progress: Optional[ProgressCallback] = None,
    ) -> SweepReport:
        """Run every scenario and return a :class:`SweepReport`.

        Outcomes are returned in the order of ``scenarios`` regardless of
        worker completion order.  ``progress`` (if given) is called once per
        finished scenario with ``(outcome, finished_count, total)``.
        """
        started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        total = len(scenarios)
        outcomes: List[Optional[RunOutcome]] = [None] * total
        finished = 0

        checkpoint: Optional[SweepCheckpoint] = None
        if self.checkpoint_path is not None:
            if self.resume:
                document = SweepCheckpoint.load(self.checkpoint_path)
                prior = SweepCheckpoint.completed_ids(document)
                if prior:
                    logger.info(
                        "resuming: checkpoint lists %d completed scenario(s)",
                        len(prior),
                    )
            checkpoint = SweepCheckpoint(
                self.checkpoint_path, total, self.checkpoint_interval
            )

        def record(index: int, outcome: RunOutcome) -> None:
            nonlocal finished
            if outcomes[index] is not None:
                # A task presumed lost (worker death / reclamation) was
                # re-run, and the original completion surfaced later; the
                # results are deterministic, so the first one stands.
                logger.info(
                    "ignoring duplicate completion of %s",
                    outcome.scenario.scenario_id,
                )
                return
            outcomes[index] = outcome
            finished += 1
            if checkpoint is not None:
                self._checkpoint_outcome(checkpoint, outcome)
            if progress is not None:
                progress(outcome, finished, total)

        pending: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(scenarios):
            cached = self._store_get(scenario)
            if cached is not None:
                logger.info("cache hit: %s [%s]", scenario.label(), scenario.scenario_id)
                record(index, RunOutcome(scenario=scenario, result=cached, cached=True))
            else:
                pending.append((index, scenario))

        if pending:
            if self.grouped:
                tasks = _replay_knob_groups(pending)
            else:
                tasks = [([item], ()) for item in pending]
            if self.workers == 1 and not self.force_pool:
                self._run_serial(tasks, record)
            else:
                self._run_pool(tasks, record)

        if checkpoint is not None:
            checkpoint.flush()
        assert all(outcome is not None for outcome in outcomes)
        return SweepReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            elapsed_s=time.perf_counter() - started,  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
            store_stats=self.store.stats() if self.store is not None else None,
        )

    # ------------------------------------------------------------------ #
    def _checkpoint_outcome(
        self, checkpoint: SweepCheckpoint, outcome: RunOutcome
    ) -> None:
        scenario_id = outcome.scenario.scenario_id
        if outcome.ok:
            if outcome.degraded:
                status = "degraded"
            elif outcome.cached:
                status = "cached"
            else:
                status = "ok"
            checkpoint.record_success(
                scenario_id,
                status=status,
                attempts=outcome.attempts,
                telemetry=outcome.telemetry,
            )
        else:
            checkpoint.record_failure(
                scenario_id,
                error_type=outcome.error_type or "Exception",
                error=outcome.error or "",
                attempts=outcome.attempts,
                timed_out=outcome.timed_out,
                telemetry=outcome.telemetry,
            )

    def _degrade_allowed(self) -> bool:
        return self.policy.degrade

    def _store_get(self, scenario: Scenario) -> Optional[SimulationResult]:
        """Store lookup that degrades to a miss instead of failing the sweep."""
        if self.store is None:
            return None
        try:
            return self.store.get(scenario)
        except Exception as exc:  # noqa: BLE001 — a broken cache must not kill the sweep
            if not self._degrade_allowed():
                raise
            logger.warning(
                "result store get failed for %s (%s); treating as a miss",
                scenario.scenario_id,
                exc,
            )
            return None

    def _store_put(self, scenario: Scenario, result: SimulationResult) -> None:
        """Store write that degrades to uncached instead of failing the sweep."""
        if self.store is None:
            return
        try:
            self.store.put(scenario, result)
        except Exception as exc:  # noqa: BLE001 — a broken cache must not kill the sweep
            if not self._degrade_allowed():
                raise
            logger.warning(
                "result store put failed for %s (%s); result stays uncached",
                scenario.scenario_id,
                exc,
            )

    # ------------------------------------------------------------------ #
    def _finish(
        self,
        index: int,
        scenario: Scenario,
        payload: Dict[str, object],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        elapsed = float(payload.get("elapsed_s", 0.0))
        telemetry = payload.get("telemetry")
        attempts = int(payload.get("attempts", 1))
        timed_out = bool(payload.get("timed_out", False))
        degraded = bool(payload.get("degraded", False))
        if payload["ok"]:
            result = SimulationResult.from_dict(payload["result"])
            if not degraded:
                # A degraded result is a valid answer to *this* sweep but
                # not to the scenario's nominal identity; caching it would
                # serve the fallback to future non-degraded requests.
                self._store_put(scenario, result)
            record(
                index,
                RunOutcome(
                    scenario=scenario,
                    result=result,
                    elapsed_s=elapsed,
                    telemetry=telemetry,
                    attempts=attempts,
                    timed_out=timed_out,
                    degraded=degraded,
                ),
            )
        else:
            error = payload["error"]
            if isinstance(error, dict):
                error_type = str(error.get("type", "Exception"))
                message = str(error.get("message", ""))
                trace = str(error.get("traceback", ""))
            else:  # legacy flat-string payloads
                error_type, message, trace = "Exception", str(error), str(error)
            summary = f"{error_type}: {message}" if message else error_type
            logger.error("scenario %s failed:\n%s", scenario.label(), trace or summary)
            record(
                index,
                RunOutcome(
                    scenario=scenario,
                    error=summary,
                    error_type=error_type,
                    traceback=trace or None,
                    elapsed_s=elapsed,
                    telemetry=telemetry,
                    attempts=attempts,
                    timed_out=timed_out,
                ),
            )

    def _run_serial(
        self,
        tasks: Sequence[Tuple[List[Tuple[int, Scenario]], Tuple[int, ...]]],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        """Run the pending tasks in-process through one shared session.

        Each scenario goes through the same :func:`_execute_payload` path as
        a pool worker, so serial and parallel sweeps produce identical
        payload dictionaries (results round-trip through ``to_dict()`` /
        ``from_dict()``, failures carry structured tracebacks, telemetry
        deltas attribute to single runs).  KeyboardInterrupt/SystemExit
        propagate and abort the sweep.
        """
        session = Session()
        token = arm_faults(self.faults) if self.faults is not None else None
        try:
            for members, spectrum in tasks:
                for index, scenario in members:
                    payload = _execute_payload(
                        session,
                        scenario,
                        self.profile,
                        self.policy,
                        capacity_spectrum=spectrum,
                    )
                    self._finish(index, scenario, payload, record)
        finally:
            if token is not None:
                disarm_faults(token)

    def _run_pool(
        self,
        tasks: Sequence[Tuple[List[Tuple[int, Scenario]], Tuple[int, ...]]],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        """Windowed ``apply_async`` dispatch with reclamation and death watch.

        At most ``workers`` tasks are in flight at a time; a task is one
        replay-knob class (a single scenario when grouping is off), so a
        class's scenarios share one worker session.  Three things can happen
        to a task: it completes (normal path); it exceeds the policy's
        reclamation budget, scaled by the class size (every member recorded
        as a timed-out failure, the pool is terminated at the end rather
        than joined); or its worker dies (pid-set change) — after
        ``worker_grace_s`` every task still in flight is presumed lost and
        re-dispatched on the serial path, so a SIGKILLed worker costs a
        re-run, never a hung or incomplete sweep.
        """
        queue = deque(tasks)
        workers = min(self.workers, len(queue))
        context = multiprocessing.get_context(self.mp_context)
        plan_dict = self.faults.to_dict() if self.faults is not None else None
        policy_dict = self.policy.to_dict()
        reclaim_s: Optional[float] = None
        if self.policy.timeout is not None:
            reclaim_s = self.policy.timeout.reclaim_timeout_s
        lost: List[Tuple[int, Scenario, Tuple[int, ...]]] = []
        reclaimed = False
        pool = context.Pool(processes=workers)
        try:
            in_flight: "OrderedDict[int, _InFlight]" = OrderedDict()
            known_pids = _pool_pids(pool)
            death_detected_at: Optional[float] = None
            while queue or in_flight:
                while queue and len(in_flight) < workers:
                    members, spectrum = queue.popleft()
                    wire = (
                        [index for index, _ in members],
                        [scenario.to_dict() for _, scenario in members],
                        self.profile,
                        plan_dict,
                        policy_dict,
                        list(spectrum),
                    )
                    in_flight[members[0][0]] = _InFlight(
                        members,
                        spectrum,
                        pool.apply_async(_worker_execute_group, (wire,)),
                        time.monotonic(),  # repro: noqa[N1] pool dispatch bookkeeping; never enters simulated results
                    )
                progressed = False
                now = time.monotonic()  # repro: noqa[N1] pool dispatch bookkeeping; never enters simulated results
                for task_key in list(in_flight):
                    task = in_flight[task_key]
                    if task.async_result.ready():
                        del in_flight[task_key]
                        progressed = True
                        try:
                            payloads = dict(task.async_result.get())
                        except Exception as exc:  # noqa: BLE001 — e.g. an unpicklable result
                            error = _error_block(exc)
                            payloads = {
                                index: {
                                    "ok": False,
                                    "error": error,
                                    "elapsed_s": now - task.dispatched_at,
                                    "attempts": 1,
                                }
                                for index, _ in task.members
                            }
                        for index, scenario in task.members:
                            payload = payloads.get(
                                index,
                                {
                                    "ok": False,
                                    "error": {
                                        "type": "RuntimeError",
                                        "message": "worker returned no payload "
                                        "for this scenario",
                                        "traceback": "",
                                    },
                                    "elapsed_s": 0.0,
                                    "attempts": 1,
                                },
                            )
                            self._finish(index, scenario, payload, record)
                    elif (
                        reclaim_s is not None
                        and now - task.dispatched_at >= reclaim_s * len(task.members)
                    ):
                        del in_flight[task_key]
                        progressed = True
                        reclaimed = True
                        budget = reclaim_s * len(task.members)
                        for index, scenario in task.members:
                            logger.warning(
                                "reclaiming %s: no result within %.1fs",
                                scenario.scenario_id,
                                budget,
                            )
                            self._finish(
                                index,
                                scenario,
                                {
                                    "ok": False,
                                    "error": {
                                        "type": "RunTimeoutError",
                                        "message": (
                                            "worker produced no result within "
                                            f"{budget:.1f}s; task reclaimed"
                                        ),
                                        "traceback": "",
                                    },
                                    "elapsed_s": now - task.dispatched_at,
                                    "attempts": 1,
                                    "timed_out": True,
                                },
                                record,
                            )
                pids = _pool_pids(pool)
                if pids != known_pids:
                    logger.warning(
                        "pool worker death detected (pids %s -> %s)",
                        sorted(known_pids),
                        sorted(pids),
                    )
                    known_pids = pids
                    if death_detected_at is None:
                        death_detected_at = now
                if death_detected_at is not None:
                    if not in_flight:
                        death_detected_at = None
                    elif now - death_detected_at >= self.worker_grace_s:
                        for task_key in list(in_flight):
                            task = in_flight.pop(task_key)
                            for index, scenario in task.members:
                                lost.append((index, scenario, task.spectrum))
                        logger.warning(
                            "presuming %d in-flight scenario(s) lost to worker "
                            "death; will re-run serially",
                            len(lost),
                        )
                        death_detected_at = None
                if not progressed and in_flight:
                    oldest = next(iter(in_flight.values()))
                    oldest.async_result.wait(_POOL_POLL_S)
        finally:
            if reclaimed or lost:
                # An abandoned task never leaves the pool's result cache, so
                # the result-handler thread (and therefore join) would wait
                # on it forever; tear the pool down instead.
                pool.terminate()
            else:
                pool.close()
            pool.join()
        if lost:
            session = Session()
            for index, scenario, spectrum in sorted(
                lost, key=lambda item: item[0]
            ):
                logger.warning(
                    "re-running %s serially after worker death", scenario.scenario_id
                )
                payload = _execute_payload(
                    session,
                    scenario,
                    self.profile,
                    self.policy,
                    capacity_spectrum=spectrum,
                )
                self._finish(index, scenario, payload, record)


__all__ = ["RunOutcome", "SweepReport", "SweepRunner", "run_scenario"]
