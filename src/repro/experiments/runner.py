"""Parallel sweep execution.

:class:`SweepRunner` turns a list of :class:`~repro.experiments.spec.Scenario`
objects into :class:`RunOutcome` records:

* cached scenarios are answered from the :class:`ResultStore` without
  touching the worker pool (incremental re-runs are near-no-ops);
* the remaining scenarios are dispatched to a ``multiprocessing`` pool in
  chunks; scenarios cross the process boundary as plain dictionaries and
  results come back as ``to_dict()`` payloads, so the parent reconstructs
  identical :class:`SimulationResult` objects whether a run happened
  in-process (``workers=1``) or in a worker;
* each worker run is wrapped in its own try/except, so one failing scenario
  reports an error outcome instead of killing the sweep.

Execution itself is delegated to :class:`repro.core.session.Session`: the
serial path batches the pending scenarios through
:meth:`~repro.core.session.Session.run_many`, and every worker process keeps
its own session, so scenarios that share a dataset reuse one generated
topology instead of rebuilding it per run.

Everything the simulation depends on is seeded from the scenario, so serial
and parallel sweeps of the same spec produce identical summaries.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.core.session import Session, default_session
from repro.errors import ConfigurationError
from repro.experiments.spec import Scenario
from repro.experiments.store import ResultStore

logger = logging.getLogger(__name__)

ProgressCallback = Callable[["RunOutcome", int, int], None]


def run_scenario(
    scenario: Scenario, session: Optional[Session] = None
) -> SimulationResult:
    """Execute one scenario in the current process.

    The dataset topology, the per-row sparsity draws, and the layer-sampling
    budget are all derived from the scenario, so repeated calls are
    bit-identical.  The scenario's identity is recorded in the result's
    metadata for downstream exports.

    Args:
        scenario: The run to execute (validated against the registries).
        session: Session to execute under; the process-wide default session
            when omitted, so repeated calls share memoized datasets.
    """
    return (session or default_session()).run(scenario, annotate=True)


#: Per-worker-process session, so the scenarios of one pool chunk reuse
#: memoized datasets (created lazily inside the worker, never inherited).
_WORKER_SESSION: Optional[Session] = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _worker_execute(payload: Tuple[int, Dict[str, object]]) -> Tuple[int, Dict[str, object]]:
    """Pool entry point: run one scenario, never raise."""
    index, scenario_dict = payload
    started = time.perf_counter()
    try:
        scenario = Scenario.from_dict(scenario_dict)
        result = run_scenario(scenario, session=_worker_session())
        return index, {
            "ok": True,
            "result": result.to_dict(),
            "elapsed_s": time.perf_counter() - started,
        }
    except Exception:  # noqa: BLE001 — isolation is the point
        # Only ordinary errors are isolated: KeyboardInterrupt/SystemExit
        # must still abort the sweep (especially in serial mode, where this
        # runs in the main process).
        return index, {
            "ok": False,
            "error": traceback.format_exc(),
            "elapsed_s": time.perf_counter() - started,
        }


@dataclass
class RunOutcome:
    """What happened to one scenario of a sweep.

    Attributes:
        scenario: The scenario that was (or failed to be) simulated.
        result: The simulation result; ``None`` when ``error`` is set.
        error: Traceback text of a failed run; ``None`` on success.
        cached: Whether the result came from the store without simulating.
        elapsed_s: Wall-clock seconds the run took (0 for cache hits).
    """

    scenario: Scenario
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    cached: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the scenario produced a result."""
        return self.result is not None


@dataclass
class SweepReport:
    """Aggregate outcome of one :meth:`SweepRunner.run` call."""

    outcomes: List[RunOutcome]
    elapsed_s: float = 0.0

    @property
    def num_cached(self) -> int:
        """Scenarios answered from the result cache."""
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def num_simulated(self) -> int:
        """Scenarios actually simulated this run."""
        return sum(1 for outcome in self.outcomes if outcome.ok and not outcome.cached)

    @property
    def num_failed(self) -> int:
        """Scenarios that raised inside the worker."""
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def failures(self) -> List[RunOutcome]:
        """The failed outcomes, in scenario order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def successes(self) -> List[RunOutcome]:
        """The successful outcomes, in scenario order."""
        return [outcome for outcome in self.outcomes if outcome.ok]


class SweepRunner:
    """Execute scenarios across a worker pool with result caching.

    Args:
        store: Optional :class:`ResultStore`; when given, hits skip the pool
            and fresh results are written back.
        workers: Worker processes; ``1`` runs everything in-process (no pool).
        chunk_size: Scenarios per pool task; defaults to a heuristic that
            balances dispatch overhead against load imbalance.
        mp_context: ``multiprocessing`` start method (``"fork"``/``"spawn"``);
            platform default when omitted.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        self.store = store
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context

    # ------------------------------------------------------------------ #
    def run(
        self,
        scenarios: Sequence[Scenario],
        progress: Optional[ProgressCallback] = None,
    ) -> SweepReport:
        """Run every scenario and return a :class:`SweepReport`.

        Outcomes are returned in the order of ``scenarios`` regardless of
        worker completion order.  ``progress`` (if given) is called once per
        finished scenario with ``(outcome, finished_count, total)``.
        """
        started = time.perf_counter()
        total = len(scenarios)
        outcomes: List[Optional[RunOutcome]] = [None] * total
        finished = 0

        def record(index: int, outcome: RunOutcome) -> None:
            nonlocal finished
            outcomes[index] = outcome
            finished += 1
            if progress is not None:
                progress(outcome, finished, total)

        pending: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(scenarios):
            cached = self.store.get(scenario) if self.store is not None else None
            if cached is not None:
                logger.info("cache hit: %s [%s]", scenario.label(), scenario.scenario_id)
                record(index, RunOutcome(scenario=scenario, result=cached, cached=True))
            else:
                pending.append((index, scenario))

        if pending:
            if self.workers == 1:
                self._run_serial(pending, record)
            else:
                self._run_pool(pending, record)

        assert all(outcome is not None for outcome in outcomes)
        return SweepReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            elapsed_s=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    def _finish(
        self,
        index: int,
        scenario: Scenario,
        payload: Dict[str, object],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        elapsed = float(payload.get("elapsed_s", 0.0))
        if payload["ok"]:
            result = SimulationResult.from_dict(payload["result"])
            if self.store is not None:
                self.store.put(scenario, result)
            record(
                index,
                RunOutcome(scenario=scenario, result=result, elapsed_s=elapsed),
            )
        else:
            error = str(payload["error"])
            logger.error("scenario %s failed:\n%s", scenario.label(), error)
            record(
                index,
                RunOutcome(scenario=scenario, error=error, elapsed_s=elapsed),
            )

    def _run_serial(
        self,
        pending: Sequence[Tuple[int, Scenario]],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        """Run the pending scenarios through one :meth:`Session.run_many` batch.

        Results take the same ``to_dict()``/``from_dict()`` round-trip as pool
        payloads, so serial and parallel sweeps reconstruct identical result
        objects; per-scenario failures are isolated via the session's
        ``on_error`` hook (KeyboardInterrupt/SystemExit still abort).
        """
        session = Session()
        # The callbacks fire right after each run; elapsed is measured from
        # the previous callback's *exit*, so store writes / progress work done
        # inside _finish are not attributed to the following scenario.
        timer = [time.perf_counter()]

        def on_done(position: int, spec: Scenario, result: SimulationResult) -> None:
            elapsed = time.perf_counter() - timer[0]
            index, scenario = pending[position]
            payload: Dict[str, object] = {
                "ok": True,
                "result": result.to_dict(),
                "elapsed_s": elapsed,
            }
            self._finish(index, scenario, payload, record)
            timer[0] = time.perf_counter()

        def on_error(position: int, spec: Scenario, exc: Exception) -> None:
            elapsed = time.perf_counter() - timer[0]
            index, scenario = pending[position]
            payload: Dict[str, object] = {
                "ok": False,
                "error": "".join(
                    traceback.format_exception(type(exc), exc, exc.__traceback__)
                ),
                "elapsed_s": elapsed,
            }
            self._finish(index, scenario, payload, record)
            timer[0] = time.perf_counter()

        session.run_many(
            [scenario for _, scenario in pending],
            annotate=True,
            progress=on_done,
            on_error=on_error,
        )

    def _run_pool(
        self,
        pending: Sequence[Tuple[int, Scenario]],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        scenarios_by_index = {index: scenario for index, scenario in pending}
        payloads = [(index, scenario.to_dict()) for index, scenario in pending]
        workers = min(self.workers, len(payloads))
        chunk = self.chunk_size or max(1, len(payloads) // (workers * 4))
        context = multiprocessing.get_context(self.mp_context)
        with context.Pool(processes=workers) as pool:
            for index, payload in pool.imap_unordered(
                _worker_execute, payloads, chunksize=chunk
            ):
                self._finish(index, scenarios_by_index[index], payload, record)


__all__ = ["RunOutcome", "SweepReport", "SweepRunner", "run_scenario"]
