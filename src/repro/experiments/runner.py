"""Parallel sweep execution.

:class:`SweepRunner` turns a list of :class:`~repro.experiments.spec.Scenario`
objects into :class:`RunOutcome` records:

* cached scenarios are answered from the :class:`ResultStore` without
  touching the worker pool (incremental re-runs are near-no-ops);
* the remaining scenarios are dispatched to a ``multiprocessing`` pool in
  chunks; scenarios cross the process boundary as plain dictionaries and
  results come back as ``to_dict()`` payloads, so the parent reconstructs
  identical :class:`SimulationResult` objects whether a run happened
  in-process (``workers=1``) or in a worker;
* each worker run is wrapped in its own try/except, so one failing scenario
  reports an error outcome instead of killing the sweep.

Serial and pool paths share one executor (:func:`_execute_payload`), so both
produce byte-identical payload dictionaries: results round-trip through
``to_dict()``/``from_dict()``, errors ship as structured
``{type, message, traceback}`` blocks, and — under ``profile=True`` — each
run carries its own telemetry delta (span tree + cache-counter changes, see
:mod:`repro.telemetry`).  The parent merges the per-run deltas into the sweep
aggregate exposed by :meth:`SweepReport.metrics_document`.

Everything the simulation depends on is seeded from the scenario, so serial
and parallel sweeps of the same spec produce identical summaries.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import SimulationResult
from repro.core.session import Session, default_session
from repro.errors import ConfigurationError
from repro.experiments.spec import Scenario
from repro.experiments.store import ResultStore
from repro.telemetry.metrics import (
    cache_hit_ratios,
    diff_counters,
    merge_counters,
    merge_spans,
)
from repro.telemetry.spans import reset_spans, set_enabled, span_snapshot

logger = logging.getLogger(__name__)

ProgressCallback = Callable[["RunOutcome", int, int], None]


def run_scenario(
    scenario: Scenario, session: Optional[Session] = None
) -> SimulationResult:
    """Execute one scenario in the current process.

    The dataset topology, the per-row sparsity draws, and the layer-sampling
    budget are all derived from the scenario, so repeated calls are
    bit-identical.  The scenario's identity is recorded in the result's
    metadata for downstream exports.

    Args:
        scenario: The run to execute (validated against the registries).
        session: Session to execute under; the process-wide default session
            when omitted, so repeated calls share memoized datasets.
    """
    return (session or default_session()).run(scenario, annotate=True)


#: Per-worker-process session, so the scenarios of one pool chunk reuse
#: memoized datasets (created lazily inside the worker, never inherited).
_WORKER_SESSION: Optional[Session] = None


def _worker_session() -> Session:
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = Session()
    return _WORKER_SESSION


def _execute_payload(
    session: Session, scenario: Scenario, profile: bool
) -> Dict[str, object]:
    """Run one scenario and build the wire payload (serial and pool path).

    Success payloads carry the result as a ``to_dict()`` document; failures
    carry a structured ``{"type", "message", "traceback"}`` error block.
    Under ``profile=True`` the payload additionally ships a ``telemetry``
    delta: the span tree recorded during this run plus the change in the
    session's cache counters — both attributable to exactly this scenario,
    so the parent can merge worker telemetry without double counting.

    Only ordinary :class:`Exception` is isolated: KeyboardInterrupt /
    SystemExit must still abort the sweep (especially in serial mode, where
    this runs in the main process).
    """
    before = session.metrics_snapshot()["caches"] if profile else None
    previous_enabled: Optional[bool] = None
    if profile:
        previous_enabled = set_enabled(True)
        reset_spans()
    started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
    try:
        result = run_scenario(scenario, session=session)
        payload: Dict[str, object] = {"ok": True, "result": result.to_dict()}
    except Exception as exc:  # noqa: BLE001 — isolation is the point
        payload = {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }
    finally:
        payload_elapsed = time.perf_counter() - started  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        if profile:
            telemetry = {
                "spans": span_snapshot(),
                "caches": diff_counters(
                    before, session.metrics_snapshot()["caches"]
                ),
            }
            reset_spans()
            set_enabled(previous_enabled)
    payload["elapsed_s"] = payload_elapsed
    if profile:
        payload["telemetry"] = telemetry
    return payload


def _worker_execute(
    payload: Tuple[int, Dict[str, object], bool]
) -> Tuple[int, Dict[str, object]]:
    """Pool entry point: run one scenario, never raise."""
    index, scenario_dict, profile = payload
    started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
    try:
        scenario = Scenario.from_dict(scenario_dict)
    except Exception as exc:  # noqa: BLE001 — a bad payload must not kill the pool
        return index, {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "elapsed_s": time.perf_counter() - started,  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        }
    return index, _execute_payload(_worker_session(), scenario, profile)


@dataclass
class RunOutcome:
    """What happened to one scenario of a sweep.

    Attributes:
        scenario: The scenario that was (or failed to be) simulated.
        result: The simulation result; ``None`` when ``error`` is set.
        error: ``"ExcType: message"`` of a failed run; ``None`` on success.
        error_type: Exception class name of a failed run.
        traceback: Full traceback text of a failed run (crosses the worker
            boundary intact, so pool failures debug like serial ones).
        cached: Whether the result came from the store without simulating.
        elapsed_s: Wall-clock seconds the run took (0 for cache hits).
        telemetry: Per-run telemetry delta (``{"spans", "caches"}``) when the
            sweep ran with ``profile=True``; ``None`` otherwise.
    """

    scenario: Scenario
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    cached: bool = False
    elapsed_s: float = 0.0
    telemetry: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        """Whether the scenario produced a result."""
        return self.result is not None


@dataclass
class SweepReport:
    """Aggregate outcome of one :meth:`SweepRunner.run` call."""

    outcomes: List[RunOutcome]
    elapsed_s: float = 0.0

    @property
    def num_cached(self) -> int:
        """Scenarios answered from the result cache."""
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def num_simulated(self) -> int:
        """Scenarios actually simulated this run."""
        return sum(1 for outcome in self.outcomes if outcome.ok and not outcome.cached)

    @property
    def num_failed(self) -> int:
        """Scenarios that raised inside the worker."""
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def failures(self) -> List[RunOutcome]:
        """The failed outcomes, in scenario order."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def successes(self) -> List[RunOutcome]:
        """The successful outcomes, in scenario order."""
        return [outcome for outcome in self.outcomes if outcome.ok]

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds of the whole sweep (including cache hits)."""
        return self.elapsed_s

    @property
    def runs_per_second(self) -> float:
        """Scenario throughput over the sweep's wall-clock (0 if instant)."""
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed_s

    def phase_totals(self) -> Dict[str, Dict[str, object]]:
        """Per-run span trees merged across every profiled outcome."""
        spans: Dict[str, Dict[str, object]] = {}
        for outcome in self.outcomes:
            if outcome.telemetry:
                merge_spans(spans, outcome.telemetry.get("spans", {}))
        return spans

    def cache_totals(self) -> Dict[str, object]:
        """Per-run cache-counter deltas summed across profiled outcomes."""
        caches: Dict[str, object] = {}
        for outcome in self.outcomes:
            if outcome.telemetry:
                merge_counters(caches, outcome.telemetry.get("caches", {}))
        return caches

    def metrics_document(self, pack: Optional[str] = None) -> Dict[str, object]:
        """One sweep's aggregate block of a ``sweep-profile`` metrics document.

        Merges every outcome's telemetry delta (span trees summed node-wise,
        cache counters summed leaf-wise) and folds in the sweep-level
        run counts and throughput.  Feed a list of these to
        :func:`repro.telemetry.metrics.sweep_metrics_document`.
        """
        caches = self.cache_totals()
        document: Dict[str, object] = {
            "total_runs": len(self.outcomes),
            "simulated": self.num_simulated,
            "cached": self.num_cached,
            "failed": self.num_failed,
            "elapsed_seconds": self.elapsed_s,
            "runs_per_second": self.runs_per_second,
            "spans": self.phase_totals(),
            "caches": caches,
            "cache_hit_ratios": cache_hit_ratios(caches),
        }
        if pack is not None:
            document["pack"] = pack
        return document


class SweepRunner:
    """Execute scenarios across a worker pool with result caching.

    Args:
        store: Optional :class:`ResultStore`; when given, hits skip the pool
            and fresh results are written back.
        workers: Worker processes; ``1`` runs everything in-process (no pool).
        chunk_size: Scenarios per pool task; defaults to a heuristic that
            balances dispatch overhead against load imbalance.
        mp_context: ``multiprocessing`` start method (``"fork"``/``"spawn"``);
            platform default when omitted.
        profile: Record per-run telemetry (phase spans + cache-counter
            deltas) into each :class:`RunOutcome`; the aggregate is exposed
            by :meth:`SweepReport.metrics_document`.  Results are
            byte-identical with profiling on or off.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
        profile: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        self.store = store
        self.workers = workers
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.profile = profile

    # ------------------------------------------------------------------ #
    def run(
        self,
        scenarios: Sequence[Scenario],
        progress: Optional[ProgressCallback] = None,
    ) -> SweepReport:
        """Run every scenario and return a :class:`SweepReport`.

        Outcomes are returned in the order of ``scenarios`` regardless of
        worker completion order.  ``progress`` (if given) is called once per
        finished scenario with ``(outcome, finished_count, total)``.
        """
        started = time.perf_counter()  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        total = len(scenarios)
        outcomes: List[Optional[RunOutcome]] = [None] * total
        finished = 0

        def record(index: int, outcome: RunOutcome) -> None:
            nonlocal finished
            outcomes[index] = outcome
            finished += 1
            if progress is not None:
                progress(outcome, finished, total)

        pending: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(scenarios):
            cached = self.store.get(scenario) if self.store is not None else None
            if cached is not None:
                logger.info("cache hit: %s [%s]", scenario.label(), scenario.scenario_id)
                record(index, RunOutcome(scenario=scenario, result=cached, cached=True))
            else:
                pending.append((index, scenario))

        if pending:
            if self.workers == 1:
                self._run_serial(pending, record)
            else:
                self._run_pool(pending, record)

        assert all(outcome is not None for outcome in outcomes)
        return SweepReport(
            outcomes=[outcome for outcome in outcomes if outcome is not None],
            elapsed_s=time.perf_counter() - started,  # repro: noqa[N1] run/sweep wall-clock reporting; never enters simulated results
        )

    # ------------------------------------------------------------------ #
    def _finish(
        self,
        index: int,
        scenario: Scenario,
        payload: Dict[str, object],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        elapsed = float(payload.get("elapsed_s", 0.0))
        telemetry = payload.get("telemetry")
        if payload["ok"]:
            result = SimulationResult.from_dict(payload["result"])
            if self.store is not None:
                self.store.put(scenario, result)
            record(
                index,
                RunOutcome(
                    scenario=scenario,
                    result=result,
                    elapsed_s=elapsed,
                    telemetry=telemetry,
                ),
            )
        else:
            error = payload["error"]
            if isinstance(error, dict):
                error_type = str(error.get("type", "Exception"))
                message = str(error.get("message", ""))
                trace = str(error.get("traceback", ""))
            else:  # legacy flat-string payloads
                error_type, message, trace = "Exception", str(error), str(error)
            summary = f"{error_type}: {message}" if message else error_type
            logger.error("scenario %s failed:\n%s", scenario.label(), trace or summary)
            record(
                index,
                RunOutcome(
                    scenario=scenario,
                    error=summary,
                    error_type=error_type,
                    traceback=trace or None,
                    elapsed_s=elapsed,
                    telemetry=telemetry,
                ),
            )

    def _run_serial(
        self,
        pending: Sequence[Tuple[int, Scenario]],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        """Run the pending scenarios in-process through one shared session.

        Each scenario goes through the same :func:`_execute_payload` path as
        a pool worker, so serial and parallel sweeps produce identical
        payload dictionaries (results round-trip through ``to_dict()`` /
        ``from_dict()``, failures carry structured tracebacks, telemetry
        deltas attribute to single runs).  KeyboardInterrupt/SystemExit
        propagate and abort the sweep.
        """
        session = Session()
        for index, scenario in pending:
            payload = _execute_payload(session, scenario, self.profile)
            self._finish(index, scenario, payload, record)

    def _run_pool(
        self,
        pending: Sequence[Tuple[int, Scenario]],
        record: Callable[[int, RunOutcome], None],
    ) -> None:
        scenarios_by_index = {index: scenario for index, scenario in pending}
        payloads = [
            (index, scenario.to_dict(), self.profile) for index, scenario in pending
        ]
        workers = min(self.workers, len(payloads))
        chunk = self.chunk_size or max(1, len(payloads) // (workers * 4))
        context = multiprocessing.get_context(self.mp_context)
        with context.Pool(processes=workers) as pool:
            for index, payload in pool.imap_unordered(
                _worker_execute, payloads, chunksize=chunk
            ):
                self._finish(index, scenarios_by_index[index], payload, record)


__all__ = ["RunOutcome", "SweepReport", "SweepRunner", "run_scenario"]
