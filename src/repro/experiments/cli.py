"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Subcommands:

* ``list`` — show the built-in scenario packs, datasets, and accelerators;
* ``accelerators`` — list the registered accelerators; ``--describe`` prints
  each design point's Table-I row and full knob settings;
* ``run`` — simulate one scenario and print its summary (``--set`` accepts
  both flat ``SystemConfig`` override keys and ``DesignPoint`` knob
  overrides, routed by key name; ``--sparsity measured`` swaps the synthetic
  sparsity profile for tables harvested from a trained DeepGCN);
* ``sweep`` — expand a scenario pack and run it across a worker pool with
  result caching, writing per-scenario JSON plus a merged summary CSV
  (execution is session-based: ``--workers 1`` batches the pack through
  :meth:`repro.core.session.Session.run_many`, reusing datasets across
  scenarios);
* ``export`` — merge a directory of per-scenario JSON documents (sweep
  output or the cache store) into one CSV/JSON summary table;
* ``bench`` — time the built-in scenario packs under the vectorized
  trace-replay engine and the legacy (pre-vectorization) path, and write a
  ``BENCH_*.json`` performance-trajectory document.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerator.design import DESIGN_KNOBS
from repro.accelerator.registry import (
    available_accelerators,
    resolve_design,
)
from repro.accelerator.simulator import GCN_VARIANTS
from repro.errors import ReproError
from repro.formats.registry import FORMATS, available_formats
from repro.gcn.providers import SPARSITY_MODES
from repro.experiments.runner import RunOutcome, SweepRunner, run_scenario
from repro.experiments.scenarios import SCENARIO_PACKS, available_packs, get_pack
from repro.experiments.spec import SUPPORTED_OVERRIDES, Scenario
from repro.experiments.store import (
    ResultStore,
    export_scenario_json,
    export_summary_csv,
    export_summary_json,
    load_sweep_rows,
    summary_row,
)
from repro.graphs.datasets import DATASET_SPECS, DEFAULT_NUM_LAYERS

logger = logging.getLogger("repro")


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SGCN (HPCA 2023) reproduction: experiment sweeps and exports.",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="enable debug logging"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list scenario packs, datasets, and accelerators"
    )
    list_parser.set_defaults(func=_cmd_list)

    accel_parser = subparsers.add_parser(
        "accelerators", help="list registered accelerators (designs)"
    )
    accel_parser.add_argument(
        "--describe",
        action="store_true",
        help="print each design point's Table-I row and knob settings",
    )
    accel_parser.set_defaults(func=_cmd_accelerators)

    run_parser = subparsers.add_parser("run", help="simulate one scenario")
    run_parser.add_argument("--dataset", required=True, help="dataset name")
    run_parser.add_argument(
        "--accelerator", default="sgcn", help="accelerator name (default: sgcn)"
    )
    run_parser.add_argument(
        "--variant", default="gcn", choices=list(GCN_VARIANTS), help="GCN variant"
    )
    run_parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    run_parser.add_argument(
        "--max-vertices", type=int, default=2048, help="dataset scale cap"
    )
    run_parser.add_argument(
        "--layers", type=int, default=DEFAULT_NUM_LAYERS, help="GCN depth"
    )
    run_parser.add_argument(
        "--feature-format",
        default=None,
        help=(
            "replace the accelerator's native intermediate-feature format "
            f"with a registry format ({', '.join(available_formats())})"
        ),
    )
    run_parser.add_argument(
        "--sparsity",
        default=None,
        choices=list(SPARSITY_MODES),
        help=(
            "sparsity mode: 'synthetic' (calibrated profile, the default "
            "behaviour) or 'measured' / 'measured-traditional' (train a "
            "DeepGCN on the dataset's topology and feed its per-row/"
            "per-slice non-zero tables to the accelerator)"
        ),
    )
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "SystemConfig override or DesignPoint knob override "
            "(repeatable; routed by key). Config keys: "
            f"{', '.join(SUPPORTED_OVERRIDES)}. Design knobs: "
            f"{', '.join(DESIGN_KNOBS)}"
        ),
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a built-in scenario pack across a worker pool"
    )
    sweep_parser.add_argument(
        "pack",
        help=f"scenario pack name or 'all'; packs: {', '.join(available_packs())}",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    sweep_parser.add_argument(
        "--out", default="results", help="output directory (default: results/)"
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: <out>/.cache)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sweep_parser.add_argument(
        "--max-vertices",
        type=int,
        default=None,
        help="override the pack's dataset scale cap",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="expand and validate the pack without simulating",
    )
    sweep_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: the pack's reduced-scale, tiny-grid variant",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    export_parser = subparsers.add_parser(
        "export", help="merge per-scenario JSON results into one summary table"
    )
    export_parser.add_argument(
        "results_dir", help="directory of per-scenario JSON documents"
    )
    export_parser.add_argument(
        "--out", required=True, help="output file (.csv or .json)"
    )
    export_parser.add_argument(
        "--format",
        choices=("csv", "json"),
        default=None,
        help="output format (default: inferred from --out suffix)",
    )
    export_parser.set_defaults(func=_cmd_export)

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark the trace-replay engine on the built-in scenario packs",
    )
    bench_parser.add_argument(
        "packs",
        nargs="*",
        help=(
            "scenario packs to time (default: the main-comparison grid at "
            "its default scale and at 2048 vertices)"
        ),
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: the smallest pack at reduced scale, one repeat",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per backend, best-of (default: 3)",
    )
    bench_parser.add_argument(
        "--max-vertices",
        type=int,
        default=None,
        help="scale cap applied to the packs named on the command line",
    )
    bench_parser.add_argument(
        "--skip-legacy",
        action="store_true",
        help="time only the vectorized engine (no baseline, no speedups)",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_trace_engine.json",
        help="output JSON path (default: BENCH_trace_engine.json)",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    return parser


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"override {pair!r} is not of the form KEY=VALUE")
        key, _, raw = pair.partition("=")
        try:
            value: object = json.loads(raw)
        except ValueError:
            # JSON only accepts lowercase true/false; accept the Python
            # spellings too so --set column_product=False cannot smuggle a
            # truthy string into a boolean knob.
            lowered = raw.strip().lower()
            if lowered in ("true", "false"):
                value = lowered == "true"
            else:
                value = raw
        overrides[key.strip()] = value
    return overrides


def _route_overrides(
    pairs: Sequence[str],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Split ``--set`` pairs into (SystemConfig overrides, design knobs).

    The two key families are disjoint, so every key routes unambiguously;
    unknown keys fail here with both families listed.
    """
    config_overrides: Dict[str, object] = {}
    design_overrides: Dict[str, object] = {}
    for key, value in _parse_overrides(pairs).items():
        if key in SUPPORTED_OVERRIDES:
            config_overrides[key] = value
        elif key in DESIGN_KNOBS:
            design_overrides[key] = value
        else:
            raise ReproError(
                f"unknown --set key {key!r}; SystemConfig keys: "
                f"{', '.join(SUPPORTED_OVERRIDES)}; design knobs: "
                f"{', '.join(DESIGN_KNOBS)}"
            )
    return config_overrides, design_overrides


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> int:
    print("Scenario packs:")
    for name in available_packs():
        spec = get_pack(name)
        print(f"  {name:<18} {spec.num_scenarios:>4} runs  {spec.description}")
    print()
    print(f"Datasets:     {', '.join(sorted(DATASET_SPECS))}")
    print(f"Accelerators: {', '.join(available_accelerators())}")
    print(f"Formats:      {', '.join(available_formats())}")
    print(f"Variants:     {', '.join(GCN_VARIANTS)}")
    print(f"Sparsity:     {', '.join(SPARSITY_MODES)}")
    print(f"Overrides:    {', '.join(SUPPORTED_OVERRIDES)}")
    return 0


def _cmd_accelerators(args: argparse.Namespace) -> int:
    for name in available_accelerators():
        design = resolve_design(name)
        if not args.describe:
            print(f"{name:<16} {design.display_name}")
            continue
        print(f"{name}:")
        for key, value in design.describe().items():
            print(f"  {key:<22} {value}")
        print("  knobs:")
        for key, value in design.to_dict().items():
            if key in ("name", "display_name"):
                continue
            print(f"    {key:<26} {value}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config_overrides, design_overrides = _route_overrides(args.overrides)
    feature_format = args.feature_format
    # "--set feature_format=X" and "--feature-format X" describe the same
    # run; fold the former into the latter so both spellings share one
    # scenario identity.  The design axis keeps the format only when a
    # slice_size override accompanies it (the two knobs must be derived
    # together; the feature_format axis cannot carry a slice).
    if "feature_format" in design_overrides and "slice_size" not in design_overrides:
        spelled = str(design_overrides.pop("feature_format"))
        if feature_format is not None and FORMATS.canonical(
            feature_format
        ) != FORMATS.canonical(spelled):
            raise ReproError(
                f"--set feature_format={spelled!r} conflicts with "
                f"--feature-format {feature_format!r}"
            )
        feature_format = spelled
    scenario = Scenario(
        dataset=args.dataset,
        accelerator=args.accelerator,
        variant=args.variant,
        seed=args.seed,
        max_vertices=args.max_vertices,
        num_layers=args.layers,
        overrides=config_overrides,
        feature_format=feature_format,
        design=design_overrides or None,
        sparsity=args.sparsity,
    )
    result = run_scenario(scenario)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(json.dumps(summary_row(scenario, result), indent=2))
    return 0


def _resolve_packs(
    name: str, max_vertices: Optional[int], quick: bool = False
) -> List:
    if name.strip().lower() == "all":
        return [
            get_pack(pack, max_vertices=max_vertices, quick=quick)
            for pack in available_packs()
        ]
    return [get_pack(name, max_vertices=max_vertices, quick=quick)]


def _cmd_sweep(args: argparse.Namespace) -> int:
    specs = _resolve_packs(args.pack, args.max_vertices, quick=args.quick)

    if args.dry_run:
        total = 0
        for spec in specs:
            scenarios = spec.expand()
            total += len(scenarios)
            print(f"{spec.name}: {len(scenarios)} scenarios (validated)")
            for scenario in scenarios[:3]:
                print(f"  {scenario.scenario_id}  {scenario.label()}")
            if len(scenarios) > 3:
                print(f"  ... {len(scenarios) - 3} more")
        print(f"total: {total} scenarios across {len(specs)} pack(s); nothing simulated")
        return 0

    out_root = Path(args.out)
    store: Optional[ResultStore] = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir else out_root / ".cache"
        store = ResultStore(cache_dir)
    runner = SweepRunner(store=store, workers=args.workers)

    exit_code = 0
    for spec in specs:
        scenarios = spec.expand()
        pack_dir = out_root / spec.name
        print(
            f"sweep {spec.name}: {len(scenarios)} scenarios, "
            f"{args.workers} worker(s), out={pack_dir}"
        )

        def progress(outcome: RunOutcome, finished: int, total: int) -> None:
            status = "cached" if outcome.cached else ("ok" if outcome.ok else "FAILED")
            print(
                f"  [{finished:>{len(str(total))}}/{total}] "
                f"{status:<6} {outcome.scenario.label()}"
            )

        report = runner.run(scenarios, progress=progress)

        rows = []
        for outcome in report.successes():
            export_scenario_json(pack_dir, outcome.scenario, outcome.result)
            rows.append(summary_row(outcome.scenario, outcome.result))
        if rows:
            csv_path = export_summary_csv(pack_dir / "summary.csv", rows)
            export_summary_json(pack_dir / "summary.json", rows)
            print(f"  wrote {len(rows)} scenario JSON files and {csv_path}")
        print(
            f"  done in {report.elapsed_s:.1f}s: {report.num_simulated} simulated, "
            f"{report.num_cached} cache hits, {report.num_failed} failed"
        )
        for outcome in report.failures:
            print(f"  FAILED {outcome.scenario.label()}:", file=sys.stderr)
            print(outcome.error, file=sys.stderr)
            exit_code = 1
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench harness drags in the whole simulation stack.
    from repro.bench import DEFAULT_REPEATS, run_benchmarks

    cases = None
    if args.packs:
        cases = [(name, args.max_vertices) for name in args.packs]
    document = run_benchmarks(
        cases=cases,
        repeats=args.repeats if args.repeats is not None else DEFAULT_REPEATS,
        quick=args.quick,
        include_legacy=not args.skip_legacy,
        out=args.out,
    )
    for entry in document["results"]:
        scale = entry["max_vertices"] if entry["max_vertices"] else "default"
        pack_label = entry["pack"] + (
            " (quick)" if entry.get("quick_pack") else ""
        )
        line = (
            f"{pack_label:<18} scale={scale:<8} runs={entry['runs']:<4} "
            f"vectorized={entry['vectorized_s']:.3f}s"
        )
        if entry["legacy_s"] is not None:
            line += f"  legacy={entry['legacy_s']:.3f}s  speedup={entry['speedup']:.2f}x"
        print(line)
    summary = document["summary"]
    if summary["overall_speedup"] is not None:
        print(
            f"overall: {summary['total_legacy_s']:.3f}s -> "
            f"{summary['total_vectorized_s']:.3f}s "
            f"({summary['overall_speedup']:.2f}x)"
        )
    print(f"wrote {args.out}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    rows = load_sweep_rows(args.results_dir)
    out = Path(args.out)
    fmt = args.format or ("json" if out.suffix.lower() == ".json" else "csv")
    if fmt == "csv":
        path = export_summary_csv(out, rows)
    else:
        path = export_summary_json(out, rows)
    print(f"exported {len(rows)} rows to {path}")
    return 0


# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    try:
        return int(args.func(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


__all__ = ["build_parser", "main"]
