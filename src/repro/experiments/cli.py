"""Command-line interface: ``python -m repro`` / the ``repro`` console script.

Subcommands:

* ``list`` — show the built-in scenario packs, datasets, and accelerators;
* ``accelerators`` — list the registered accelerators; ``--describe`` prints
  each design point's Table-I row and full knob settings;
* ``run`` — simulate one scenario and print its summary (``--set`` accepts
  both flat ``SystemConfig`` override keys and ``DesignPoint`` knob
  overrides, routed by key name; ``--sparsity measured`` swaps the synthetic
  sparsity profile for tables harvested from a trained DeepGCN);
* ``sweep`` — expand a scenario pack and run it across a worker pool with
  result caching, writing per-scenario JSON plus a merged summary CSV
  (execution is session-based: every worker keeps one
  :class:`repro.core.session.Session`, reusing datasets across scenarios);
* ``export`` — merge a directory of per-scenario JSON documents (sweep
  output or the cache store) into one CSV/JSON summary table;
* ``bench`` — time the built-in scenario packs under the vectorized
  trace-replay engine and the legacy (pre-vectorization) path, and write a
  ``BENCH_*.json`` performance-trajectory document;
* ``stats`` — pretty-print a ``metrics.json`` telemetry document;
* ``lint`` — run the AST invariant battery (``--changed`` lints only
  git-modified files for pre-commit use);
* ``audit`` — render the interprocedural identity-flow evidence: derived
  stage read-sets, identity coverage per class, the replay-knob partition,
  and the exemption ledger (text or the ``identity-audit`` JSON document).

Observability controls (see :mod:`repro.telemetry`):

* ``--profile`` on ``run``/``sweep`` records phase spans and cache counters
  and writes a schema-v1 ``metrics.json`` next to the results — simulation
  output is byte-identical with or without it;
* ``--log-level`` (or ``REPRO_LOG_LEVEL``) controls the ``repro.*`` logger
  tree; ``--quiet`` suppresses informational narration while keeping
  machine-readable output (JSON summaries, exports) on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accelerator.design import DESIGN_KNOBS
from repro.accelerator.registry import (
    available_accelerators,
    resolve_design,
)
from repro.accelerator.simulator import GCN_VARIANTS
from repro.core.session import default_session
from repro.errors import ReproError
from repro.formats.registry import FORMATS, available_formats
from repro.gcn.providers import SPARSITY_MODES
from repro.experiments.runner import RunOutcome, SweepRunner, run_scenario
from repro.experiments.scenarios import SCENARIO_PACKS, available_packs, get_pack
from repro.experiments.spec import SUPPORTED_OVERRIDES, Scenario
from repro.experiments.store import (
    ResultStore,
    export_scenario_json,
    export_summary_csv,
    export_summary_json,
    load_sweep_rows,
    summary_row,
)
from repro.graphs.datasets import DATASET_SPECS, DEFAULT_NUM_LAYERS
from repro.resilience.checkpoint import CHECKPOINT_FILENAME
from repro.resilience.faults import FaultPlan, faults_scope, load_fault_plan
from repro.resilience.policy import ExecutionPolicy, RetryPolicy, TimeoutPolicy
from repro.telemetry.logs import LOG_LEVELS, configure_logging
from repro.telemetry.metrics import (
    METRICS_SCHEMA_VERSION,
    render_metrics,
    run_metrics_document,
    sweep_metrics_document,
    write_metrics_json,
)
from repro.telemetry.spans import reset_spans, set_enabled

import logging

logger = logging.getLogger("repro")


class OutputWriter:
    """One funnel for every line the CLI prints.

    Three channels with distinct routing, so ``--quiet`` and shell
    redirection behave consistently across subcommands:

    * :meth:`data` — the machine-readable payload the user asked for (JSON
      summaries, listings, rendered stats); always written, to stdout.
    * :meth:`info` — human narration (progress, footers, "wrote X" notes);
      stdout, suppressed by ``--quiet``.
    * :meth:`error` — failures; always written, to stderr.
    """

    def __init__(self) -> None:
        self.quiet = False

    def data(self, message: str = "") -> None:
        print(message)

    def info(self, message: str = "") -> None:
        if not self.quiet:
            print(message)

    def error(self, message: str = "") -> None:
        print(message, file=sys.stderr)


#: Process-wide writer behind every subcommand (configured once in main()).
OUT = OutputWriter()


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SGCN (HPCA 2023) reproduction: experiment sweeps and exports.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="shorthand for --log-level debug",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=list(LOG_LEVELS),
        help="repro.* logger level (default: REPRO_LOG_LEVEL or info)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress informational output (results/errors still print)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list scenario packs, datasets, and accelerators"
    )
    list_parser.set_defaults(func=_cmd_list)

    accel_parser = subparsers.add_parser(
        "accelerators", help="list registered accelerators (designs)"
    )
    accel_parser.add_argument(
        "--describe",
        action="store_true",
        help="print each design point's Table-I row and knob settings",
    )
    accel_parser.set_defaults(func=_cmd_accelerators)

    run_parser = subparsers.add_parser("run", help="simulate one scenario")
    run_parser.add_argument("--dataset", required=True, help="dataset name")
    run_parser.add_argument(
        "--accelerator", default="sgcn", help="accelerator name (default: sgcn)"
    )
    run_parser.add_argument(
        "--variant", default="gcn", choices=list(GCN_VARIANTS), help="GCN variant"
    )
    run_parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    run_parser.add_argument(
        "--max-vertices", type=int, default=2048, help="dataset scale cap"
    )
    run_parser.add_argument(
        "--layers", type=int, default=DEFAULT_NUM_LAYERS, help="GCN depth"
    )
    run_parser.add_argument(
        "--feature-format",
        default=None,
        help=(
            "replace the accelerator's native intermediate-feature format "
            f"with a registry format ({', '.join(available_formats())})"
        ),
    )
    run_parser.add_argument(
        "--sparsity",
        default=None,
        choices=list(SPARSITY_MODES),
        help=(
            "sparsity mode: 'synthetic' (calibrated profile, the default "
            "behaviour) or 'measured' / 'measured-traditional' (train a "
            "DeepGCN on the dataset's topology and feed its per-row/"
            "per-slice non-zero tables to the accelerator)"
        ),
    )
    run_parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "SystemConfig override or DesignPoint knob override "
            "(repeatable; routed by key). Config keys: "
            f"{', '.join(SUPPORTED_OVERRIDES)}. Design knobs: "
            f"{', '.join(DESIGN_KNOBS)}"
        ),
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record phase/cache telemetry and write a metrics.json document "
            "(simulation output is byte-identical either way)"
        ),
    )
    run_parser.add_argument(
        "--metrics-out",
        default="metrics.json",
        help="where --profile writes the metrics document (default: metrics.json)",
    )
    run_parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC.json",
        help=(
            "arm a deterministic fault plan (testing/chaos only; see "
            "repro.resilience.faults) around the run"
        ),
    )
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a built-in scenario pack across a worker pool"
    )
    sweep_parser.add_argument(
        "pack",
        help=f"scenario pack name or 'all'; packs: {', '.join(available_packs())}",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    sweep_parser.add_argument(
        "--out", default="results", help="output directory (default: results/)"
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: <out>/.cache)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    sweep_parser.add_argument(
        "--max-vertices",
        type=int,
        default=None,
        help="override the pack's dataset scale cap",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="expand and validate the pack without simulating",
    )
    sweep_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: the pack's reduced-scale, tiny-grid variant",
    )
    sweep_parser.add_argument(
        "--no-group",
        action="store_true",
        help=(
            "dispatch scenarios strictly in input order instead of grouping "
            "them into replay-knob equivalence classes (results are "
            "byte-identical either way; grouping only changes execution "
            "order and wall-clock)"
        ),
    )
    sweep_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record per-run phase/cache telemetry and write an aggregate "
            "metrics.json next to the results (results are byte-identical "
            "either way)"
        ),
    )
    sweep_parser.add_argument(
        "--metrics-out",
        default=None,
        help="where --profile writes the metrics document (default: <out>/metrics.json)",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "consult the pack's checkpoint.json and the result cache; "
            "previously completed scenarios are not re-simulated"
        ),
    )
    sweep_parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=8,
        metavar="N",
        help="flush the sweep checkpoint every N outcomes (default: 8)",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "retry failed runs up to N extra attempts with deterministic "
            "exponential backoff (default: 0 — fail on the first error)"
        ),
    )
    sweep_parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base backoff before the first retry (default: 0.05s)",
    )
    sweep_parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-run wall-clock budget: cooperative deadline at stage "
            "boundaries, plus parent-side task reclamation on worker pools"
        ),
    )
    sweep_parser.add_argument(
        "--no-degrade",
        action="store_true",
        help=(
            "fail runs instead of degrading them (no synthetic-sparsity "
            "fallback, store errors become fatal)"
        ),
    )
    sweep_parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC.json",
        help=(
            "arm a deterministic fault plan (testing/chaos only; see "
            "repro.resilience.faults) in every worker"
        ),
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    export_parser = subparsers.add_parser(
        "export", help="merge per-scenario JSON results into one summary table"
    )
    export_parser.add_argument(
        "results_dir", help="directory of per-scenario JSON documents"
    )
    export_parser.add_argument(
        "--out", required=True, help="output file (.csv or .json)"
    )
    export_parser.add_argument(
        "--format",
        choices=("csv", "json"),
        default=None,
        help="output format (default: inferred from --out suffix)",
    )
    export_parser.set_defaults(func=_cmd_export)

    bench_parser = subparsers.add_parser(
        "bench",
        help="benchmark the trace-replay engine on the built-in scenario packs",
    )
    bench_parser.add_argument(
        "packs",
        nargs="*",
        help=(
            "scenario packs to time (default: the main-comparison grid at "
            "its default scale and at 2048 vertices)"
        ),
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: the smallest pack at reduced scale, one repeat",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timed repeats per backend, best-of (default: 3)",
    )
    bench_parser.add_argument(
        "--max-vertices",
        type=int,
        default=None,
        help="scale cap applied to the packs named on the command line",
    )
    bench_parser.add_argument(
        "--skip-legacy",
        action="store_true",
        help="time only the vectorized engine (no baseline, no speedups)",
    )
    bench_parser.add_argument(
        "--out",
        default="BENCH_trace_engine.json",
        help="output JSON path (default: BENCH_trace_engine.json)",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the AST invariant linter (see INVARIANTS.md)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    lint_parser.add_argument(
        "--rule",
        dest="rules",
        action="append",
        default=[],
        metavar="RULE",
        help="only run this rule id/name (repeatable; default: the full battery)",
    )
    lint_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned lint-findings JSON document instead of text",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the active rule battery and exit",
    )
    lint_parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "lint only files modified per `git diff --name-only HEAD` that "
            "fall under the given targets (fast pre-commit mode)"
        ),
    )
    lint_parser.set_defaults(func=_cmd_lint)

    audit_parser = subparsers.add_parser(
        "audit",
        help=(
            "derive the identity-flow read-sets and coverage table "
            "(F1-F3 evidence; see INVARIANTS.md)"
        ),
    )
    audit_parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to audit (default: src)",
    )
    audit_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the versioned identity-audit JSON document instead of text",
    )
    audit_parser.set_defaults(func=_cmd_audit)

    stats_parser = subparsers.add_parser(
        "stats", help="pretty-print a metrics.json telemetry document"
    )
    stats_parser.add_argument(
        "metrics",
        nargs="?",
        default="metrics.json",
        help="metrics document to render (default: metrics.json)",
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="print the raw document instead"
    )
    stats_parser.set_defaults(func=_cmd_stats)

    return parser


def _parse_overrides(pairs: Sequence[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"override {pair!r} is not of the form KEY=VALUE")
        key, _, raw = pair.partition("=")
        try:
            value: object = json.loads(raw)
        except ValueError:
            # JSON only accepts lowercase true/false; accept the Python
            # spellings too so --set column_product=False cannot smuggle a
            # truthy string into a boolean knob.
            lowered = raw.strip().lower()
            if lowered in ("true", "false"):
                value = lowered == "true"
            else:
                value = raw
        overrides[key.strip()] = value
    return overrides


def _route_overrides(
    pairs: Sequence[str],
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Split ``--set`` pairs into (SystemConfig overrides, design knobs).

    The two key families are disjoint, so every key routes unambiguously;
    unknown keys fail here with both families listed.
    """
    config_overrides: Dict[str, object] = {}
    design_overrides: Dict[str, object] = {}
    for key, value in _parse_overrides(pairs).items():
        if key in SUPPORTED_OVERRIDES:
            config_overrides[key] = value
        elif key in DESIGN_KNOBS:
            design_overrides[key] = value
        else:
            raise ReproError(
                f"unknown --set key {key!r}; SystemConfig keys: "
                f"{', '.join(SUPPORTED_OVERRIDES)}; design knobs: "
                f"{', '.join(DESIGN_KNOBS)}"
            )
    return config_overrides, design_overrides


def _format_eta(seconds: float) -> str:
    """Compact ``h:mm:ss`` / ``m:ss`` / ``Ns`` rendering of an ETA."""
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}:{(seconds % 3600) // 60:02d}:{seconds % 60:02d}"
    if seconds >= 60:
        return f"{seconds // 60}:{seconds % 60:02d}"
    return f"{seconds}s"


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_list(args: argparse.Namespace) -> int:
    OUT.data("Scenario packs:")
    for name in available_packs():
        spec = get_pack(name)
        OUT.data(f"  {name:<18} {spec.num_scenarios:>4} runs  {spec.description}")
    OUT.data()
    OUT.data(f"Datasets:     {', '.join(sorted(DATASET_SPECS))}")
    OUT.data(f"Accelerators: {', '.join(available_accelerators())}")
    OUT.data(f"Formats:      {', '.join(available_formats())}")
    OUT.data(f"Variants:     {', '.join(GCN_VARIANTS)}")
    OUT.data(f"Sparsity:     {', '.join(SPARSITY_MODES)}")
    OUT.data(f"Overrides:    {', '.join(SUPPORTED_OVERRIDES)}")
    return 0


def _cmd_accelerators(args: argparse.Namespace) -> int:
    for name in available_accelerators():
        design = resolve_design(name)
        if not args.describe:
            OUT.data(f"{name:<16} {design.display_name}")
            continue
        OUT.data(f"{name}:")
        for key, value in design.describe().items():
            OUT.data(f"  {key:<22} {value}")
        OUT.data("  knobs:")
        for key, value in design.to_dict().items():
            if key in ("name", "display_name"):
                continue
            OUT.data(f"    {key:<26} {value}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config_overrides, design_overrides = _route_overrides(args.overrides)
    feature_format = args.feature_format
    # "--set feature_format=X" and "--feature-format X" describe the same
    # run; fold the former into the latter so both spellings share one
    # scenario identity.  The design axis keeps the format only when a
    # slice_size override accompanies it (the two knobs must be derived
    # together; the feature_format axis cannot carry a slice).
    if "feature_format" in design_overrides and "slice_size" not in design_overrides:
        spelled = str(design_overrides.pop("feature_format"))
        if feature_format is not None and FORMATS.canonical(
            feature_format
        ) != FORMATS.canonical(spelled):
            raise ReproError(
                f"--set feature_format={spelled!r} conflicts with "
                f"--feature-format {feature_format!r}"
            )
        feature_format = spelled
    scenario = Scenario(
        dataset=args.dataset,
        accelerator=args.accelerator,
        variant=args.variant,
        seed=args.seed,
        max_vertices=args.max_vertices,
        num_layers=args.layers,
        overrides=config_overrides,
        feature_format=feature_format,
        design=design_overrides or None,
        sparsity=args.sparsity,
    )
    session = default_session()
    fault_plan: Optional[FaultPlan] = None
    if args.inject_faults is not None:
        fault_plan = load_fault_plan(args.inject_faults)
        OUT.info(f"armed fault plan from {args.inject_faults}")
    previous_enabled: Optional[bool] = None
    if args.profile:
        previous_enabled = set_enabled(True)
        reset_spans()
    try:
        with faults_scope(fault_plan):
            result = run_scenario(scenario, session=session)
    finally:
        if args.profile:
            document = run_metrics_document(
                session.metrics_snapshot(), scenario_id=scenario.scenario_id
            )
            set_enabled(previous_enabled)
            reset_spans()
    if args.profile:
        write_metrics_json(args.metrics_out, document)
        OUT.info(f"wrote {args.metrics_out}")
    if args.json:
        OUT.data(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        OUT.data(json.dumps(summary_row(scenario, result), indent=2))
    return 0


def _resolve_packs(
    name: str, max_vertices: Optional[int], quick: bool = False
) -> List:
    if name.strip().lower() == "all":
        return [
            get_pack(pack, max_vertices=max_vertices, quick=quick)
            for pack in available_packs()
        ]
    return [get_pack(name, max_vertices=max_vertices, quick=quick)]


def _cmd_sweep(args: argparse.Namespace) -> int:
    specs = _resolve_packs(args.pack, args.max_vertices, quick=args.quick)

    if args.dry_run:
        total = 0
        for spec in specs:
            scenarios = spec.expand()
            total += len(scenarios)
            OUT.data(f"{spec.name}: {len(scenarios)} scenarios (validated)")
            for scenario in scenarios[:3]:
                OUT.data(f"  {scenario.scenario_id}  {scenario.label()}")
            if len(scenarios) > 3:
                OUT.data(f"  ... {len(scenarios) - 3} more")
        OUT.data(
            f"total: {total} scenarios across {len(specs)} pack(s); nothing simulated"
        )
        return 0

    out_root = Path(args.out)
    store: Optional[ResultStore] = None
    if not args.no_cache:
        cache_dir = Path(args.cache_dir) if args.cache_dir else out_root / ".cache"
        store = ResultStore(cache_dir)

    retry: Optional[RetryPolicy] = None
    if args.retries > 0:
        retry = RetryPolicy(
            max_attempts=args.retries + 1, backoff_base_s=args.retry_backoff
        )
    timeout: Optional[TimeoutPolicy] = None
    if args.run_timeout is not None:
        timeout = TimeoutPolicy(run_timeout_s=args.run_timeout)
    policy = ExecutionPolicy(retry=retry, timeout=timeout, degrade=not args.no_degrade)
    faults: Optional[FaultPlan] = None
    if args.inject_faults is not None:
        faults = load_fault_plan(args.inject_faults)
        OUT.info(f"armed fault plan from {args.inject_faults}")

    exit_code = 0
    sweep_documents: List[Dict[str, object]] = []
    for spec in specs:
        scenarios = spec.expand()
        pack_dir = out_root / spec.name
        runner = SweepRunner(
            store=store,
            workers=args.workers,
            profile=args.profile,
            policy=policy,
            faults=faults,
            checkpoint_path=str(pack_dir / CHECKPOINT_FILENAME),
            checkpoint_interval=args.checkpoint_interval,
            resume=args.resume,
            grouped=not args.no_group,
        )
        OUT.info(
            f"sweep {spec.name}: {len(scenarios)} scenarios, "
            f"{args.workers} worker(s), out={pack_dir}"
        )
        pack_started = time.perf_counter()  # repro: noqa[N1] progress-line ETA only; never enters results

        def progress(outcome: RunOutcome, finished: int, total: int) -> None:
            if outcome.cached:
                status = "cached"
            elif not outcome.ok:
                status = "TIMEOUT" if outcome.timed_out else "FAILED"
            elif outcome.degraded:
                status = "degraded"
            else:
                status = "ok"
            elapsed = time.perf_counter() - pack_started  # repro: noqa[N1] progress-line ETA only; never enters results
            if 0 < finished < total and elapsed > 0:
                eta = f"  eta {_format_eta(elapsed / finished * (total - finished))}"
            else:
                eta = ""
            OUT.info(
                f"  [{finished:>{len(str(total))}}/{total}] "
                f"{status:<8} {outcome.scenario.label()}{eta}"
            )

        report = runner.run(scenarios, progress=progress)

        rows = []
        for outcome in report.successes():
            export_scenario_json(pack_dir, outcome.scenario, outcome.result)
            row = summary_row(outcome.scenario, outcome.result)
            if args.profile:
                # Wall-clock fields are only emitted under --profile so that
                # default summary.csv files stay byte-identical across worker
                # counts and reruns (the determinism invariant cmp-checked in
                # the verify flow).
                row["sweep_elapsed_seconds"] = round(report.elapsed_seconds, 6)
                row["sweep_runs_per_second"] = round(report.runs_per_second, 6)
            rows.append(row)
        if rows:
            csv_path = export_summary_csv(pack_dir / "summary.csv", rows)
            export_summary_json(pack_dir / "summary.json", rows)
            OUT.info(f"  wrote {len(rows)} scenario JSON files and {csv_path}")
        footer = (
            f"  done in {report.elapsed_seconds:.1f}s "
            f"({report.runs_per_second:.2f} runs/s): "
            f"{report.num_simulated} simulated, "
            f"{report.num_cached} cache hits, {report.num_failed} failed"
        )
        if report.num_degraded:
            footer += f", {report.num_degraded} degraded"
        if report.num_timed_out:
            footer += f", {report.num_timed_out} timed out"
        if report.num_retried:
            footer += f", {report.num_retried} retried"
        OUT.info(footer)
        if args.profile:
            sweep_documents.append(report.metrics_document(pack=spec.name))
        for outcome in report.failures:
            OUT.error(f"  FAILED {outcome.scenario.label()}:")
            OUT.error(outcome.traceback or outcome.error or "")
            exit_code = 1
    if args.profile:
        metrics_path = (
            Path(args.metrics_out) if args.metrics_out else out_root / "metrics.json"
        )
        write_metrics_json(metrics_path, sweep_metrics_document(sweep_documents))
        OUT.info(f"wrote {metrics_path}")
    return exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench harness drags in the whole simulation stack.
    from repro.bench import DEFAULT_REPEATS, run_benchmarks

    cases = None
    if args.packs:
        cases = [(name, args.max_vertices) for name in args.packs]
    document = run_benchmarks(
        cases=cases,
        repeats=args.repeats if args.repeats is not None else DEFAULT_REPEATS,
        quick=args.quick,
        include_legacy=not args.skip_legacy,
        out=args.out,
    )
    for entry in document["results"]:
        scale = entry["max_vertices"] if entry["max_vertices"] else "default"
        pack_label = entry["pack"] + (
            " (quick)" if entry.get("quick_pack") else ""
        )
        if entry.get("sensitivity"):
            # Sensitivity protocol: per-knob dispatch vs grouped spectrum
            # dispatch, both on the vectorized engine.
            line = (
                f"{pack_label:<18} scale={scale:<8} runs={entry['runs']:<4} "
                f"per-knob={entry['vectorized_s']:.3f}s  "
                f"spectrum={entry['spectrum_s']:.3f}s  "
                f"speedup={entry['spectrum_speedup']:.2f}x  "
                f"classes={entry['replay_classes']}"
            )
            OUT.data(line)
            continue
        line = (
            f"{pack_label:<18} scale={scale:<8} runs={entry['runs']:<4} "
            f"vectorized={entry['vectorized_s']:.3f}s"
        )
        if entry["legacy_s"] is not None:
            line += f"  legacy={entry['legacy_s']:.3f}s  speedup={entry['speedup']:.2f}x"
        OUT.data(line)
    summary = document["summary"]
    if summary["overall_speedup"] is not None:
        OUT.data(
            f"overall: {summary['total_legacy_s']:.3f}s -> "
            f"{summary['total_vectorized_s']:.3f}s "
            f"({summary['overall_speedup']:.2f}x)"
        )
    if summary.get("min_spectrum_speedup") is not None:
        OUT.data(
            f"spectrum dispatch: min {summary['min_spectrum_speedup']:.2f}x "
            "over per-knob dispatch"
        )
    OUT.info(f"wrote {args.out}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    rows = load_sweep_rows(args.results_dir)
    out = Path(args.out)
    fmt = args.format or ("json" if out.suffix.lower() == ".json" else "csv")
    if fmt == "csv":
        path = export_summary_csv(out, rows)
    else:
        path = export_summary_json(out, rows)
    OUT.info(f"exported {len(rows)} rows to {path}")
    return 0


def _changed_lint_targets(targets: Sequence[str]) -> List[str]:
    """Modified ``.py`` files (per ``git diff HEAD``) under ``targets``."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        raise ReproError(
            f"lint --changed needs a git checkout: git diff failed ({exc})"
        ) from exc
    roots = [Path(target).resolve() for target in targets]
    changed: List[str] = []
    for line in proc.stdout.splitlines():
        name = line.strip()
        if not name.endswith(".py"):
            continue
        candidate = Path(name)
        if not candidate.is_file():
            continue  # deleted/renamed-away files have nothing to lint
        resolved = candidate.resolve()
        if any(resolved == root or root in resolved.parents for root in roots):
            changed.append(name)
    return sorted(changed)


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is a dev-facing tool; keep `repro run`
    # startup free of it.
    from repro.analysis import (
        findings_document,
        get_rules,
        render_findings,
        render_summary,
        run_lint,
    )

    rules = get_rules(args.rules or None)
    if args.list_rules:
        for rule in rules:
            OUT.data(f"{rule.rule_id:<4} {rule.name:<34} {rule.summary}")
        return 0
    paths = list(args.paths)
    if args.changed:
        paths = _changed_lint_targets(paths)
        if not paths:
            OUT.info("lint --changed: no modified python files under the targets")
            return 0
    report = run_lint(paths, rules=rules)
    if args.json:
        OUT.data(json.dumps(findings_document(report), indent=2, sort_keys=True))
    else:
        for line in render_findings(report):
            OUT.data(line)
        OUT.info(render_summary(report))
    return 0 if report.ok else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    # Lazy for the same reason as `lint`: dev-facing tooling stays off the
    # `repro run` import path.
    from repro.analysis import audit_document, render_audit, run_audit

    report = run_audit(args.paths)
    if args.json:
        OUT.data(json.dumps(audit_document(report), indent=2, sort_keys=True))
    else:
        for line in render_audit(report):
            OUT.data(line)
    return 0 if report.ok else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    path = Path(args.metrics)
    if not path.is_file():
        raise ReproError(
            f"no metrics document at {path}; produce one with "
            "`repro run --profile` or `repro sweep --profile`"
        )
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ReproError(f"unreadable metrics document {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ReproError(f"{path} is not a metrics document (expected an object)")
    version = document.get("schema_version")
    if version != METRICS_SCHEMA_VERSION:
        logger.warning(
            "metrics document %s has schema version %r (this build renders v%d)",
            path,
            version,
            METRICS_SCHEMA_VERSION,
        )
    if args.json:
        OUT.data(json.dumps(document, indent=2, sort_keys=True))
    else:
        OUT.data(render_metrics(document))
    return 0


# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    level = args.log_level
    if level is None and args.verbose:
        level = "debug"
    try:
        configure_logging(level)
    except ValueError as exc:  # unreachable via argparse choices; env handled inside
        OUT.error(f"error: {exc}")
        return 2
    OUT.quiet = args.quiet
    try:
        return int(args.func(args))
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro stats | head`): exit
        # quietly like a well-behaved filter.  Stdout is re-pointed at
        # /dev/null so the interpreter's shutdown flush cannot raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        OUT.error(f"error: {exc}")
        return 2


__all__ = ["OutputWriter", "build_parser", "main"]
