"""Built-in scenario packs reproducing the paper's evaluation shapes.

Each pack is a factory returning a :class:`~repro.experiments.spec.SweepSpec`
shaped like one of the SGCN paper's studies:

* ``paper-comparison`` — the main accelerator x dataset grid behind the
  speedup / traffic / energy figures (Figs. 11, 13, 14);
* ``cache-size`` — global cache capacity sensitivity;
* ``engine-count`` — aggregation/combination engine-count scalability;
* ``hbm-generation`` — HBM1 vs HBM2 bandwidth sensitivity (Fig. 18);
* ``depth-sweep`` — GCN depth 4-28 layers (the deep-GCN scaling story);
* ``variant-sweep`` — GCN / GINConv / GraphSAGE aggregation variants
  (Fig. 16).

Packs default to scaled-down datasets (``max_vertices``) so a full sweep
stays tractable on a laptop; pass a larger cap for higher fidelity.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.accelerator.registry import PAPER_COMPARISON
from repro.errors import ConfigurationError
from repro.experiments.spec import SweepSpec
from repro.graphs.datasets import FIGURE_ORDER

#: Default scale cap of the built-in packs; small enough that the full
#: paper-comparison grid finishes in seconds, large enough to exercise the
#: cache/tiling machinery.
DEFAULT_PACK_MAX_VERTICES = 512

#: Medium-sized datasets used by the sensitivity packs (one low-sparsity,
#: one clustered, one hub-heavy graph).
SENSITIVITY_DATASETS = ("pubmed", "dblp", "github")

#: Accelerators contrasted in the sensitivity packs: the paper's design and
#: its strongest dense-format baseline.
SENSITIVITY_ACCELERATORS = ("gcnax", "sgcn")

#: Cache capacities of the cache-size sensitivity pack (bytes).
CACHE_CAPACITIES = tuple(kb * 1024 for kb in (128, 256, 512, 1024, 2048))

#: Engine counts of the engine-count scalability pack.
ENGINE_COUNTS = (2, 4, 8, 16, 32)

#: GCN depths of the depth sweep (paper evaluates up to 28 layers).
DEPTHS = (4, 8, 12, 16, 20, 24, 28)


def paper_comparison_pack(max_vertices: int = DEFAULT_PACK_MAX_VERTICES) -> SweepSpec:
    """Main comparison grid: every paper dataset x every paper accelerator."""
    return SweepSpec(
        name="paper-comparison",
        description=(
            "Main accelerator comparison over all nine datasets "
            "(Figs. 11/13/14 grid)"
        ),
        datasets=FIGURE_ORDER,
        accelerators=PAPER_COMPARISON,
        max_vertices=max_vertices,
    )


def cache_size_pack(max_vertices: int = DEFAULT_PACK_MAX_VERTICES) -> SweepSpec:
    """Global cache capacity sensitivity around the paper's 512 KB point."""
    return SweepSpec(
        name="cache-size",
        description="Cache-capacity sensitivity (128 KB - 2 MB)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=SENSITIVITY_ACCELERATORS,
        override_grid=[
            {"cache_capacity_bytes": capacity} for capacity in CACHE_CAPACITIES
        ],
        override_tags=[f"{capacity // 1024}KB" for capacity in CACHE_CAPACITIES],
        max_vertices=max_vertices,
    )


def engine_count_pack(max_vertices: int = DEFAULT_PACK_MAX_VERTICES) -> SweepSpec:
    """Engine-count scalability around the paper's 8+8 configuration."""
    return SweepSpec(
        name="engine-count",
        description="Aggregation/combination engine-count scalability (2-32)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=SENSITIVITY_ACCELERATORS,
        override_grid=[{"num_engines": count} for count in ENGINE_COUNTS],
        override_tags=[f"{count}eng" for count in ENGINE_COUNTS],
        max_vertices=max_vertices,
    )


def hbm_generation_pack(max_vertices: int = DEFAULT_PACK_MAX_VERTICES) -> SweepSpec:
    """HBM1 vs HBM2 bandwidth sensitivity (Fig. 18)."""
    return SweepSpec(
        name="hbm-generation",
        description="HBM generation sweep (HBM1 128 GB/s vs HBM2 256 GB/s)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=("gcnax", "hygcn", "sgcn"),
        override_grid=[{"dram": "hbm1"}, {"dram": "hbm2"}],
        override_tags=["HBM1", "HBM2"],
        max_vertices=max_vertices,
    )


def depth_sweep_pack(max_vertices: int = DEFAULT_PACK_MAX_VERTICES) -> SweepSpec:
    """GCN depth sweep from shallow (4) to the paper's deep 28-layer models."""
    return SweepSpec(
        name="depth-sweep",
        description="GCN depth sweep, 4-28 layers",
        datasets=("cora", "pubmed"),
        accelerators=SENSITIVITY_ACCELERATORS,
        depths=DEPTHS,
        max_vertices=max_vertices,
    )


def variant_sweep_pack(max_vertices: int = DEFAULT_PACK_MAX_VERTICES) -> SweepSpec:
    """Aggregation-variant sweep: GCN vs GINConv vs GraphSAGE (Fig. 16)."""
    return SweepSpec(
        name="variant-sweep",
        description="Aggregation variant sweep (GCN / GINConv / GraphSAGE)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=SENSITIVITY_ACCELERATORS,
        variants=("gcn", "gin", "sage"),
        max_vertices=max_vertices,
    )


#: Registry of the built-in packs by CLI name.
SCENARIO_PACKS: Dict[str, Callable[[int], SweepSpec]] = {
    "paper-comparison": paper_comparison_pack,
    "cache-size": cache_size_pack,
    "engine-count": engine_count_pack,
    "hbm-generation": hbm_generation_pack,
    "depth-sweep": depth_sweep_pack,
    "variant-sweep": variant_sweep_pack,
}


def available_packs() -> List[str]:
    """Names of the built-in scenario packs."""
    return sorted(SCENARIO_PACKS)


def get_pack(name: str, max_vertices: Optional[int] = None) -> SweepSpec:
    """Build the named scenario pack.

    Args:
        name: Pack name (see :func:`available_packs`); case-insensitive,
            underscores accepted in place of dashes.
        max_vertices: Optional scale-cap override for every scenario.
    """
    key = name.strip().lower().replace("_", "-")
    if key not in SCENARIO_PACKS:
        raise ConfigurationError(
            f"unknown scenario pack {name!r}; available: "
            f"{', '.join(available_packs())}"
        )
    factory = SCENARIO_PACKS[key]
    return factory(max_vertices if max_vertices is not None else DEFAULT_PACK_MAX_VERTICES)


__all__ = [
    "DEFAULT_PACK_MAX_VERTICES",
    "SCENARIO_PACKS",
    "available_packs",
    "cache_size_pack",
    "depth_sweep_pack",
    "engine_count_pack",
    "get_pack",
    "hbm_generation_pack",
    "paper_comparison_pack",
    "variant_sweep_pack",
]
