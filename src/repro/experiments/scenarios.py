"""Built-in scenario packs reproducing the paper's evaluation shapes.

Each pack is a factory returning a :class:`~repro.experiments.spec.SweepSpec`
shaped like one of the SGCN paper's studies:

* ``paper-comparison`` — the main accelerator x dataset grid behind the
  speedup / traffic / energy figures (Figs. 11, 13, 14);
* ``cache-size`` — global cache capacity sensitivity;
* ``engine-count`` — aggregation/combination engine-count scalability;
* ``hbm-generation`` — HBM1 vs HBM2 bandwidth sensitivity (Fig. 18);
* ``depth-sweep`` — GCN depth 4-28 layers (the deep-GCN scaling story);
* ``variant-sweep`` — GCN / GINConv / GraphSAGE aggregation variants
  (Fig. 16);
* ``design-space`` — a grid of *hypothetical* design points (execution
  order x tiling x feature format x zero skipping) the paper only sampled,
  expressed as :class:`~repro.accelerator.design.DesignPoint` knob
  overrides over the GCNAX base design;
* ``sparsity-depth`` — the Fig. 1 / Fig. 2a story as accelerator scenarios:
  a depth x residual grid in *measured* sparsity mode, where every run
  trains/forwards a :class:`~repro.gcn.model.DeepGCN` on the dataset's
  topology (calibrated along :func:`~repro.gcn.sparsity.sparsity_vs_depth`)
  and feeds the harvested per-row/per-slice tables to the formats.

Packs default to scaled-down datasets (``max_vertices``) so a full sweep
stays tractable on a laptop; pass a larger cap for higher fidelity.  Every
pack also has a ``quick`` variant (``get_pack(name, quick=True)``, CLI
``repro sweep <pack> --quick``) shrinking it to a CI-smoke-sized grid.
"""

from __future__ import annotations

import itertools

from typing import Callable, Dict, List, Optional

from repro.accelerator.registry import PAPER_COMPARISON
from repro.errors import ConfigurationError
from repro.experiments.spec import SweepSpec
from repro.graphs.datasets import FIGURE_ORDER

#: Default scale cap of the built-in packs; small enough that the full
#: paper-comparison grid finishes in seconds, large enough to exercise the
#: cache/tiling machinery.
DEFAULT_PACK_MAX_VERTICES = 512

#: Medium-sized datasets used by the sensitivity packs (one low-sparsity,
#: one clustered, one hub-heavy graph).
SENSITIVITY_DATASETS = ("pubmed", "dblp", "github")

#: Accelerators contrasted in the sensitivity packs: the paper's design and
#: its strongest dense-format baseline.
SENSITIVITY_ACCELERATORS = ("gcnax", "sgcn")

#: Cache capacities of the cache-size sensitivity pack (bytes):
#: half-octave steps from 128 KB to 2 MB around the paper's 512 KB point.
#: Spectrum replay answers a whole capacity column in one grouped
#: evaluation, so the dense grid costs barely more than a sparse one.
CACHE_CAPACITIES = tuple(
    kb * 1024 for kb in (128, 192, 256, 384, 512, 768, 1024, 1536, 2048)
)

#: Engine counts of the engine-count scalability pack.
ENGINE_COUNTS = (2, 4, 8, 16, 32)

#: GCN depths of the depth sweep (paper evaluates up to 28 layers).
DEPTHS = (4, 8, 12, 16, 20, 24, 28)

#: Scale cap used by the ``quick`` (CI smoke) variant of every pack.
QUICK_MAX_VERTICES = 128


def _quick_cap(max_vertices: int, quick: bool) -> int:
    """The effective scale cap: quick variants never exceed the smoke cap."""
    return min(max_vertices, QUICK_MAX_VERTICES) if quick else max_vertices

#: Base accelerator whose design point the ``design-space`` pack derives
#: from (the paper's strongest dense baseline).
DESIGN_SPACE_BASE = "gcnax"

#: Destination-tile fill fraction shared by every ``design-space`` grid
#: point.  No built-in design uses this value, so every grid point is
#: guaranteed to be a *non-built-in* design point even when the other knobs
#: happen to coincide with a registered design.
DESIGN_SPACE_FILL_FRACTION = 0.9

#: Axes of the ``design-space`` grid: (tag fragment, design knob overrides).
DESIGN_SPACE_ORDERS = (
    ("row", {}),
    ("col", {"column_product": True, "psum_traffic_factor": 1.0}),
)
DESIGN_SPACE_TILINGS = (
    ("tiled", {}),
    ("untiled", {"uses_destination_tiling": False, "uses_source_tiling": False}),
)
DESIGN_SPACE_FORMATS = (
    ("dense", {"feature_format": "dense"}),
    ("beicsr", {"feature_format": "beicsr"}),
    ("nonsliced", {"feature_format": "beicsr_nonsliced"}),
)
DESIGN_SPACE_SKIPPING = (
    ("noskip", {}),
    (
        "zskip",
        {"sparse_aggregation_compute": True, "combination_zero_skipping": True},
    ),
)


def paper_comparison_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """Main comparison grid: every paper dataset x every paper accelerator."""
    return SweepSpec(
        name="paper-comparison",
        description=(
            "Main accelerator comparison over all nine datasets "
            "(Figs. 11/13/14 grid)"
        ),
        datasets=FIGURE_ORDER,
        accelerators=PAPER_COMPARISON,
        max_vertices=_quick_cap(max_vertices, quick),
    )


def cache_size_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """Global cache capacity sensitivity around the paper's 512 KB point."""
    return SweepSpec(
        name="cache-size",
        description="Cache-capacity sensitivity (128 KB - 2 MB)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=SENSITIVITY_ACCELERATORS,
        override_grid=[
            {"cache_capacity_bytes": capacity} for capacity in CACHE_CAPACITIES
        ],
        override_tags=[f"{capacity // 1024}KB" for capacity in CACHE_CAPACITIES],
        max_vertices=_quick_cap(max_vertices, quick),
    )


def engine_count_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """Engine-count scalability around the paper's 8+8 configuration."""
    return SweepSpec(
        name="engine-count",
        description="Aggregation/combination engine-count scalability (2-32)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=SENSITIVITY_ACCELERATORS,
        override_grid=[{"num_engines": count} for count in ENGINE_COUNTS],
        override_tags=[f"{count}eng" for count in ENGINE_COUNTS],
        max_vertices=_quick_cap(max_vertices, quick),
    )


def hbm_generation_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """HBM1 vs HBM2 bandwidth sensitivity (Fig. 18)."""
    return SweepSpec(
        name="hbm-generation",
        description="HBM generation sweep (HBM1 128 GB/s vs HBM2 256 GB/s)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=("gcnax", "hygcn", "sgcn"),
        override_grid=[{"dram": "hbm1"}, {"dram": "hbm2"}],
        override_tags=["HBM1", "HBM2"],
        max_vertices=_quick_cap(max_vertices, quick),
    )


def depth_sweep_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """GCN depth sweep from shallow (4) to the paper's deep 28-layer models."""
    return SweepSpec(
        name="depth-sweep",
        description="GCN depth sweep, 4-28 layers",
        datasets=("cora", "pubmed"),
        accelerators=SENSITIVITY_ACCELERATORS,
        depths=DEPTHS,
        max_vertices=_quick_cap(max_vertices, quick),
    )


def variant_sweep_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """Aggregation-variant sweep: GCN vs GINConv vs GraphSAGE (Fig. 16)."""
    return SweepSpec(
        name="variant-sweep",
        description="Aggregation variant sweep (GCN / GINConv / GraphSAGE)",
        datasets=SENSITIVITY_DATASETS,
        accelerators=SENSITIVITY_ACCELERATORS,
        variants=("gcn", "gin", "sage"),
        max_vertices=_quick_cap(max_vertices, quick),
    )


#: Depth x residual grid of the ``sparsity-depth`` pack: the two measured
#: modes are the "Residual" and "Traditional" curves of Fig. 1 / Fig. 2a.
SPARSITY_DEPTH_MODES = ("measured", "measured-traditional")

#: GCN depths of the ``sparsity-depth`` pack (a coarser ladder than the
#: synthetic ``depth-sweep``: every cell trains a model).
SPARSITY_DEPTH_DEPTHS = (4, 8, 16, 28)


def sparsity_depth_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """Measured-sparsity depth x residual grid (Fig. 1 / Fig. 2a story).

    Runs SGCN on the three medium datasets with the ``measured`` and
    ``measured-traditional`` sparsity providers across the depth ladder:
    each cell trains/forwards a DeepGCN on the dataset's topology and the
    accelerator consumes its harvested per-row/per-slice non-zero tables.
    The ``quick`` variant shrinks to one dataset and the two endpoint depths
    for CI smoke runs.
    """
    datasets = SENSITIVITY_DATASETS
    depths = SPARSITY_DEPTH_DEPTHS
    if quick:
        datasets = ("pubmed",)
        depths = (4, 28)
    return SweepSpec(
        name="sparsity-depth",
        description=(
            "Measured-sparsity depth x residual grid (trained DeepGCN "
            "tables, Fig. 1/2a)"
        ),
        datasets=datasets,
        accelerators=("sgcn",),
        depths=depths,
        sparsities=SPARSITY_DEPTH_MODES,
        max_vertices=_quick_cap(max_vertices, quick),
    )


def design_space_pack(
    max_vertices: int = DEFAULT_PACK_MAX_VERTICES, quick: bool = False
) -> SweepSpec:
    """Design-space exploration: a grid of hypothetical design points.

    Sweeps execution order (row vs column product) x destination tiling x
    feature format (dense / sliced BEICSR / non-sliced BEICSR) x compute
    zero skipping as design overrides on the GCNAX base design — 24 distinct
    non-built-in design points over the medium datasets.  The ``quick``
    variant shrinks the grid (one dataset, dense + sliced BEICSR only) for
    CI smoke runs.
    """
    orders = DESIGN_SPACE_ORDERS
    tilings = DESIGN_SPACE_TILINGS
    formats = DESIGN_SPACE_FORMATS
    skipping = DESIGN_SPACE_SKIPPING
    datasets = SENSITIVITY_DATASETS
    if quick:
        formats = formats[:2]
        tilings = tilings[:1]
        datasets = ("pubmed",)
    grid = []
    tags = []
    for (order_tag, order), (tile_tag, tile), (fmt_tag, fmt), (skip_tag, skip) in (
        itertools.product(orders, tilings, formats, skipping)
    ):
        point = {"tiling_fill_fraction": DESIGN_SPACE_FILL_FRACTION}
        point.update(order)
        point.update(tile)
        point.update(fmt)
        point.update(skip)
        grid.append(point)
        tags.append("-".join((order_tag, tile_tag, fmt_tag, skip_tag)))
    return SweepSpec(
        name="design-space",
        description=(
            "Design-space exploration grid (execution order x tiling x "
            "format x zero skipping) over hypothetical design points"
        ),
        datasets=datasets,
        accelerators=(DESIGN_SPACE_BASE,),
        design_grid=grid,
        design_tags=tags,
        max_vertices=_quick_cap(max_vertices, quick),
    )


#: Registry of the built-in packs by CLI name.
SCENARIO_PACKS: Dict[str, Callable[..., SweepSpec]] = {
    "paper-comparison": paper_comparison_pack,
    "cache-size": cache_size_pack,
    "engine-count": engine_count_pack,
    "hbm-generation": hbm_generation_pack,
    "depth-sweep": depth_sweep_pack,
    "variant-sweep": variant_sweep_pack,
    "design-space": design_space_pack,
    "sparsity-depth": sparsity_depth_pack,
}


def available_packs() -> List[str]:
    """Names of the built-in scenario packs."""
    return sorted(SCENARIO_PACKS)


def get_pack(
    name: str, max_vertices: Optional[int] = None, quick: bool = False
) -> SweepSpec:
    """Build the named scenario pack.

    Args:
        name: Pack name (see :func:`available_packs`); case-insensitive,
            underscores accepted in place of dashes.
        max_vertices: Optional scale-cap override for every scenario.
        quick: Build the pack's CI-smoke variant: a reduced scale cap
            (:data:`QUICK_MAX_VERTICES`) and, where the pack defines one, a
            smaller grid (``design-space`` drops to one dataset and a
            2x1x2x2 knob grid; ``sparsity-depth`` to one dataset and the
            endpoint depths).
    """
    key = name.strip().lower().replace("_", "-")
    if key not in SCENARIO_PACKS:
        raise ConfigurationError(
            f"unknown scenario pack {name!r}; available: "
            f"{', '.join(available_packs())}"
        )
    factory = SCENARIO_PACKS[key]
    cap = max_vertices if max_vertices is not None else DEFAULT_PACK_MAX_VERTICES
    return factory(cap, quick=quick)


__all__ = [
    "DEFAULT_PACK_MAX_VERTICES",
    "QUICK_MAX_VERTICES",
    "SCENARIO_PACKS",
    "available_packs",
    "cache_size_pack",
    "depth_sweep_pack",
    "design_space_pack",
    "engine_count_pack",
    "get_pack",
    "hbm_generation_pack",
    "paper_comparison_pack",
    "sparsity_depth_pack",
    "variant_sweep_pack",
]
