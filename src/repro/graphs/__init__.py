"""Graph substrate: structures, generators, datasets, and partitioning."""

from __future__ import annotations

from repro.graphs.graph import CSRGraph
from repro.graphs.generators import (
    community_graph,
    power_law_graph,
    erdos_renyi_graph,
    grid_graph,
)
from repro.graphs.normalize import gcn_normalize, add_self_loops, row_normalize
from repro.graphs.datasets import Dataset, load_dataset, available_datasets, DATASET_SPECS
from repro.graphs.partition import topology_tiles, vertex_strips, TopologyTile
from repro.graphs.stats import (
    degree_statistics,
    clustering_score,
    neighbor_similarity,
    locality_score,
)

__all__ = [
    "CSRGraph",
    "community_graph",
    "power_law_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "gcn_normalize",
    "add_self_loops",
    "row_normalize",
    "Dataset",
    "load_dataset",
    "available_datasets",
    "DATASET_SPECS",
    "topology_tiles",
    "vertex_strips",
    "TopologyTile",
    "degree_statistics",
    "clustering_score",
    "neighbor_similarity",
    "locality_score",
]
