"""Adjacency normalisation used by graph convolutional networks.

A GCN layer computes ``X' = sigma(A_hat @ X @ W)`` where ``A_hat`` is the
symmetrically normalised adjacency matrix with self loops:

    A_hat = D^{-1/2} (A + I) D^{-1/2}

GraphSAGE-style mean aggregation instead uses the row-normalised adjacency
``D^{-1} A``.  Both are provided here as transformations over
:class:`~repro.graphs.graph.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import CSRGraph


def add_self_loops(graph: CSRGraph, weight: float = 1.0) -> CSRGraph:
    """Return a copy of ``graph`` with a self loop added to every vertex.

    Existing self loops are preserved (not duplicated); their weight is left
    unchanged.
    """
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    pairs = np.stack([sources, graph.indices], axis=1)
    weights = graph.weights.astype(np.float32)

    has_loop = np.zeros(graph.num_vertices, dtype=bool)
    loop_mask = pairs[:, 0] == pairs[:, 1]
    has_loop[pairs[loop_mask, 0]] = True
    missing = np.nonzero(~has_loop)[0]
    if missing.size:
        loop_pairs = np.stack([missing, missing], axis=1)
        pairs = np.concatenate([pairs, loop_pairs], axis=0)
        weights = np.concatenate(
            [weights, np.full(missing.size, weight, dtype=np.float32)]
        )
    return CSRGraph.from_edge_list(
        graph.num_vertices, pairs, weights=weights, name=graph.name, deduplicate=True
    )


def gcn_normalize(graph: CSRGraph, add_loops: bool = True) -> CSRGraph:
    """Return the symmetrically normalised graph ``D^{-1/2} (A + I) D^{-1/2}``.

    Args:
        graph: Input graph; edge weights are treated as adjacency values.
        add_loops: Add self loops before normalising (the standard GCN
            formulation).  Set to ``False`` to normalise the raw adjacency.
    """
    work = add_self_loops(graph) if add_loops else graph
    degrees = np.zeros(work.num_vertices, dtype=np.float64)
    sources = np.repeat(np.arange(work.num_vertices, dtype=np.int64), work.degrees)
    np.add.at(degrees, sources, work.weights)
    np.add.at(degrees, work.indices, 0.0)  # ensure shape; in-degree handled below

    in_degrees = np.zeros(work.num_vertices, dtype=np.float64)
    np.add.at(in_degrees, work.indices, work.weights)

    # Symmetric normalisation uses the degree of both endpoints; for a
    # symmetric adjacency in-degree equals out-degree, and for a directed one
    # this mirrors the common implementation that uses sqrt(d_out) * sqrt(d_in).
    out_scale = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    in_scale = np.where(in_degrees > 0, 1.0 / np.sqrt(in_degrees), 0.0)
    new_weights = (
        work.weights * out_scale[sources] * in_scale[work.indices]
    ).astype(np.float32)
    return work.with_weights(new_weights)


def row_normalize(graph: CSRGraph, add_loops: bool = False) -> CSRGraph:
    """Return the row-normalised graph ``D^{-1} A`` (mean aggregation).

    Used by the GraphSAGE variant (paper Fig. 16b).
    """
    work = add_self_loops(graph) if add_loops else graph
    degrees = np.zeros(work.num_vertices, dtype=np.float64)
    sources = np.repeat(np.arange(work.num_vertices, dtype=np.int64), work.degrees)
    np.add.at(degrees, sources, work.weights)
    scale = np.where(degrees > 0, 1.0 / degrees, 0.0)
    new_weights = (work.weights * scale[sources]).astype(np.float32)
    return work.with_weights(new_weights)


def uniform_weights(graph: CSRGraph, value: float = 1.0) -> CSRGraph:
    """Return a copy of the graph with every edge weight set to ``value``.

    GINConv aggregation (paper Fig. 16a) does not use edge weights; this is
    the topology it streams.
    """
    if not np.isfinite(value):
        raise GraphError("edge weight must be finite")
    return graph.with_weights(np.full(graph.num_edges, value, dtype=np.float32))
