"""Benchmark datasets calibrated to the paper's Table II.

The paper evaluates nine real-world graphs.  Those datasets are not available
offline, so this module generates *calibrated synthetic equivalents*: for each
dataset we record the published statistics (vertex count, edge count, input
feature width, intermediate feature sparsity of the trained 28-layer residual
GCN, and test accuracy) and generate a community-structured random graph with
the same average degree and a structural profile (clustering, degree skew)
chosen to match the qualitative description in the paper (e.g. NELL and DBLP
are strongly clustered, Reddit has a very high average degree).

Because a pure-Python trace-driven simulator cannot sweep hundreds of
millions of edges, graphs are scaled down by default (``max_vertices``).  The
scaling preserves the average degree; experiments that depend on the ratio of
working-set size to cache capacity scale the cache by the same factor
(:meth:`Dataset.cache_scale`), so relative results are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graphs.generators import community_graph, power_law_graph
from repro.graphs.graph import CSRGraph
from repro.graphs.normalize import gcn_normalize

#: Default feature width of the deep residual GCNs used in the evaluation
#: (Section VI-A: "256 features per vertex").
DEFAULT_HIDDEN_WIDTH = 256

#: Default number of layers of the deep residual GCNs (Section VI-A).
DEFAULT_NUM_LAYERS = 28


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one evaluation dataset (paper Table II).

    Attributes:
        name: Full dataset name.
        code: Two-letter code used in the paper's figures.
        num_vertices: Vertex count of the real dataset.
        num_edges: Edge count of the real dataset.
        input_feature_width: Width of the (given) input feature vectors.
        input_sparsity: Sparsity of the input features (NELL's one-hot inputs
            are 99.9% sparse; bag-of-words inputs are typically ~99% sparse;
            dense embeddings ~0%).
        intermediate_sparsity: Average intermediate feature sparsity of the
            trained 28-layer residual GCN (Table II "Feature Sparsity").
        accuracy: Test accuracy of the trained 28-layer model.
        clustering: Structural knob in [0, 1]; fraction of edges generated
            near the diagonal (community structure / neighbour similarity).
        degree_skew: Structural knob; larger values generate more hub-like
            in-degree distributions.
    """

    name: str
    code: str
    num_vertices: int
    num_edges: int
    input_feature_width: int
    input_sparsity: float
    intermediate_sparsity: float
    accuracy: float
    clustering: float
    degree_skew: float

    @property
    def average_degree(self) -> float:
        """Average degree of the full-size dataset."""
        return self.num_edges / self.num_vertices

    def topology_mbytes(self) -> float:
        """Approximate CSR topology size in MB (Table II "Topology")."""
        bytes_ = (self.num_vertices + 1) * 4 + self.num_edges * 8
        return bytes_ / 1e6

    def feature_gbytes(self, hidden_width: int = DEFAULT_HIDDEN_WIDTH) -> float:
        """Approximate dense intermediate feature size in GB."""
        return self.num_vertices * hidden_width * 4 / 1e9


#: Table II of the paper, in the order used by Fig. 3 / Fig. 11 legends.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "cora": DatasetSpec(
        name="Cora", code="CR", num_vertices=2_708, num_edges=10_556,
        input_feature_width=1_433, input_sparsity=0.987,
        intermediate_sparsity=0.661, accuracy=0.76,
        clustering=0.55, degree_skew=1.8,
    ),
    "citeseer": DatasetSpec(
        name="CiteSeer", code="CS", num_vertices=3_327, num_edges=9_104,
        input_feature_width=3_703, input_sparsity=0.991,
        intermediate_sparsity=0.697, accuracy=0.66,
        clustering=0.55, degree_skew=1.8,
    ),
    "pubmed": DatasetSpec(
        name="PubMed", code="PM", num_vertices=19_717, num_edges=88_648,
        input_feature_width=500, input_sparsity=0.90,
        intermediate_sparsity=0.707, accuracy=0.77,
        clustering=0.70, degree_skew=2.0,
    ),
    "nell": DatasetSpec(
        name="NELL", code="NL", num_vertices=65_755, num_edges=251_550,
        input_feature_width=61_278, input_sparsity=0.999,
        intermediate_sparsity=0.510, accuracy=0.64,
        clustering=0.80, degree_skew=2.4,
    ),
    "reddit": DatasetSpec(
        name="Reddit", code="RD", num_vertices=232_965, num_edges=114_615_892,
        input_feature_width=602, input_sparsity=0.0,
        intermediate_sparsity=0.584, accuracy=0.95,
        clustering=0.70, degree_skew=2.2,
    ),
    "flickr": DatasetSpec(
        name="Flickr", code="FK", num_vertices=89_250, num_edges=899_756,
        input_feature_width=500, input_sparsity=0.46,
        intermediate_sparsity=0.465, accuracy=0.48,
        clustering=0.50, degree_skew=2.2,
    ),
    "yelp": DatasetSpec(
        name="Yelp", code="YP", num_vertices=716_847, num_edges=13_954_819,
        input_feature_width=300, input_sparsity=0.0,
        intermediate_sparsity=0.640, accuracy=0.54,
        clustering=0.55, degree_skew=2.2,
    ),
    "dblp": DatasetSpec(
        name="DBLP", code="DB", num_vertices=17_716, num_edges=105_734,
        input_feature_width=1_639, input_sparsity=0.98,
        intermediate_sparsity=0.595, accuracy=0.86,
        clustering=0.85, degree_skew=2.0,
    ),
    "github": DatasetSpec(
        name="GitHub", code="GH", num_vertices=37_700, num_edges=578_006,
        input_feature_width=128, input_sparsity=0.10,
        intermediate_sparsity=0.446, accuracy=0.86,
        clustering=0.45, degree_skew=2.4,
    ),
}

#: Dataset order used in Fig. 11 / 12 / 13 (CR CS PM NL RD FK YP DB GH).
FIGURE_ORDER: Tuple[str, ...] = (
    "cora", "citeseer", "pubmed", "nell", "reddit", "flickr", "yelp", "dblp", "github",
)

#: Dataset order used in Fig. 3 (sorted by increasing intermediate sparsity).
SPARSITY_ORDER: Tuple[str, ...] = tuple(
    sorted(DATASET_SPECS, key=lambda key: DATASET_SPECS[key].intermediate_sparsity)
)


@dataclass
class Dataset:
    """A (possibly scaled) dataset instance ready for simulation.

    Attributes:
        spec: The published full-size statistics.
        graph: The (scaled) synthetic topology with GCN-normalised weights.
        scale: ``graph.num_vertices / spec.num_vertices``.
        hidden_width: Intermediate feature width used by the deep GCN.
        num_layers: Number of GCN layers.
        seed: Seed used to generate the topology (for reproducibility).
    """

    spec: DatasetSpec
    graph: CSRGraph
    scale: float
    hidden_width: int = DEFAULT_HIDDEN_WIDTH
    num_layers: int = DEFAULT_NUM_LAYERS
    seed: int = 0
    _layer_sparsities: Optional[List[float]] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        """Lower-case dataset key (e.g. ``"cora"``)."""
        return self.spec.name.lower()

    @property
    def code(self) -> str:
        """Two-letter code used in the paper's plots."""
        return self.spec.code

    @property
    def num_vertices(self) -> int:
        """Vertex count of the simulated (scaled) graph."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Edge count of the simulated (scaled) graph."""
        return self.graph.num_edges

    @property
    def input_feature_width(self) -> int:
        """Width of the input feature vectors."""
        return self.spec.input_feature_width

    @property
    def input_sparsity(self) -> float:
        """Sparsity of the input features."""
        return self.spec.input_sparsity

    @property
    def intermediate_sparsity(self) -> float:
        """Average intermediate feature sparsity (Table II)."""
        return self.spec.intermediate_sparsity

    def cache_scale(self) -> float:
        """Factor by which the cache should be scaled for relative studies.

        The paper's 512 KB cache holds a fixed fraction of each full-size
        graph's feature working set.  When the graph is scaled down by
        ``scale``, scaling the cache by the same factor keeps the
        working-set-to-cache ratio — the quantity the tiling and SAC results
        depend on — unchanged.  The factor is clamped so tiny graphs still get
        at least a few cache sets.
        """
        return float(min(1.0, max(self.scale, 1e-4)))

    def layer_sparsities(self) -> List[float]:
        """Per-layer intermediate feature sparsity profile.

        Generated by :func:`repro.gcn.sparsity.layer_sparsity_profile` on
        first use and cached; the profile averages to the dataset's published
        intermediate sparsity and rises towards the output layers, matching
        Fig. 2b.
        """
        if self._layer_sparsities is None:
            from repro.gcn.sparsity import layer_sparsity_profile

            self._layer_sparsities = layer_sparsity_profile(
                num_layers=self.num_layers,
                average_sparsity=self.intermediate_sparsity,
                seed=self.seed,
            )
        return list(self._layer_sparsities)

    def with_layers(self, num_layers: int) -> "Dataset":
        """Return a copy of the dataset configured for ``num_layers`` layers."""
        if num_layers <= 0:
            raise DatasetError("number of layers must be positive")
        return Dataset(
            spec=self.spec,
            graph=self.graph,
            scale=self.scale,
            hidden_width=self.hidden_width,
            num_layers=num_layers,
            seed=self.seed,
        )

    def with_sparsity_profile(self, profile: List[float]) -> "Dataset":
        """Return a copy whose :meth:`layer_sparsities` is ``profile``.

        Used by the sparsity-provider pipeline: a measured provider replaces
        the synthetic profile with the one harvested from a trained model,
        and every downstream consumer (workload construction, tile sizing,
        output-write accounting) picks it up through the one accessor.  The
        receiver is left untouched — sessions memoize and share dataset
        instances across runs.
        """
        profile = [float(value) for value in profile]
        if len(profile) != self.num_layers:
            raise DatasetError(
                f"sparsity profile has {len(profile)} entries for a "
                f"{self.num_layers}-layer dataset"
            )
        return Dataset(
            spec=self.spec,
            graph=self.graph,
            scale=self.scale,
            hidden_width=self.hidden_width,
            num_layers=self.num_layers,
            seed=self.seed,
            _layer_sparsities=profile,
        )

    def describe(self) -> Dict[str, object]:
        """Return a row of Table II for this dataset (full-size statistics)."""
        return {
            "dataset": f"{self.spec.name} ({self.spec.code})",
            "vertices": self.spec.num_vertices,
            "edges": self.spec.num_edges,
            "input_features": self.spec.input_feature_width,
            "topology_mb": round(self.spec.topology_mbytes(), 2),
            "feature_gb": round(self.spec.feature_gbytes(self.hidden_width), 3),
            "feature_sparsity": self.spec.intermediate_sparsity,
            "accuracy": self.spec.accuracy,
            "simulated_vertices": self.num_vertices,
            "simulated_edges": self.num_edges,
        }


def available_datasets() -> List[str]:
    """Return the names of all nine paper datasets."""
    return list(DATASET_SPECS)


def load_dataset(
    name: str,
    max_vertices: int = 2048,
    max_average_degree: float = 32.0,
    hidden_width: int = DEFAULT_HIDDEN_WIDTH,
    num_layers: int = DEFAULT_NUM_LAYERS,
    seed: int = 0,
    normalize: bool = True,
) -> Dataset:
    """Build the calibrated synthetic equivalent of a paper dataset.

    Args:
        name: Dataset key (``"cora"``, ``"citeseer"``, ``"pubmed"``,
            ``"nell"``, ``"reddit"``, ``"flickr"``, ``"yelp"``, ``"dblp"``,
            ``"github"``), case-insensitive; two-letter codes also accepted.
        max_vertices: Upper bound on the simulated vertex count.  Datasets
            smaller than this are generated at full size; larger datasets are
            scaled down preserving average degree.
        max_average_degree: Upper bound on the simulated average degree; very
            dense graphs (Reddit's average degree is ~490) are thinned so the
            pure-Python trace-driven simulation stays tractable while the
            degree *ordering* across datasets is preserved.
        hidden_width: Intermediate feature width (paper default 256).
        num_layers: Number of GCN layers (paper default 28).
        seed: RNG seed for the synthetic topology.
        normalize: Apply GCN symmetric normalisation to the edge weights.

    Returns:
        A :class:`Dataset` ready to pass to :func:`repro.core.api.simulate`.
    """
    key = _resolve_name(name)
    spec = DATASET_SPECS[key]
    if max_vertices < 2:
        raise DatasetError("max_vertices must be at least 2")
    if max_average_degree <= 0:
        raise DatasetError("max_average_degree must be positive")

    num_vertices = min(spec.num_vertices, max_vertices)
    scale = num_vertices / spec.num_vertices
    average_degree = min(
        spec.average_degree, max_average_degree, max(1.0, num_vertices / 4)
    )

    if spec.degree_skew >= 2.3 and spec.clustering < 0.5:
        graph = power_law_graph(
            num_vertices=num_vertices,
            average_degree=average_degree,
            exponent=spec.degree_skew,
            seed=seed,
            name=key,
        )
    else:
        graph = community_graph(
            num_vertices=num_vertices,
            average_degree=average_degree,
            intra_fraction=spec.clustering,
            locality_sigma=0.03 + 0.05 * (1.0 - spec.clustering),
            seed=seed,
            name=key,
        )
    if normalize:
        graph = gcn_normalize(graph)

    return Dataset(
        spec=spec,
        graph=graph,
        scale=scale,
        hidden_width=hidden_width,
        num_layers=num_layers,
        seed=seed,
    )


def load_all_datasets(
    order: Tuple[str, ...] = FIGURE_ORDER,
    max_vertices: int = 2048,
    max_average_degree: float = 32.0,
    hidden_width: int = DEFAULT_HIDDEN_WIDTH,
    num_layers: int = DEFAULT_NUM_LAYERS,
    seed: int = 0,
) -> List[Dataset]:
    """Load every paper dataset in ``order`` (defaults to the Fig. 11 order)."""
    return [
        load_dataset(
            name,
            max_vertices=max_vertices,
            max_average_degree=max_average_degree,
            hidden_width=hidden_width,
            num_layers=num_layers,
            seed=seed,
        )
        for name in order
    ]


def _resolve_name(name: str) -> str:
    key = name.strip().lower()
    if key in DATASET_SPECS:
        return key
    for candidate, spec in DATASET_SPECS.items():
        if spec.code.lower() == key:
            return candidate
    raise DatasetError(
        f"unknown dataset {name!r}; available: {', '.join(sorted(DATASET_SPECS))}"
    )
