"""Structural statistics of graphs.

These statistics drive the behavioural differences between the accelerator
models:

* degree statistics — how many random feature reads each vertex triggers and
  how skewed they are (EnGN's degree-aware vertex cache);
* clustering score — how concentrated edges are around the diagonal of the
  adjacency matrix (what I-GCN's islandization and SGCN's sparsity-aware
  cooperation exploit);
* neighbour similarity — how much adjacent rows of the adjacency matrix share
  destinations (paper Fig. 7b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import CSRGraph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's out-degree distribution."""

    mean: float
    median: float
    maximum: int
    minimum: int
    std: float
    gini: float

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary."""
        return {
            "mean": self.mean,
            "median": self.median,
            "max": self.maximum,
            "min": self.minimum,
            "std": self.std,
            "gini": self.gini,
        }


def degree_statistics(graph: CSRGraph) -> DegreeStatistics:
    """Compute summary statistics of the out-degree distribution.

    The Gini coefficient quantifies degree skew: 0 means perfectly uniform
    degrees, values approaching 1 mean a few hub vertices hold most edges.
    """
    degrees = graph.degrees.astype(np.float64)
    if degrees.size == 0:
        raise GraphError("cannot compute statistics of an empty graph")
    sorted_deg = np.sort(degrees)
    n = sorted_deg.size
    total = sorted_deg.sum()
    if total == 0:
        gini = 0.0
    else:
        cumulative = np.cumsum(sorted_deg)
        gini = float((n + 1 - 2 * (cumulative / total).sum()) / n)
    return DegreeStatistics(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        minimum=int(degrees.min()),
        std=float(degrees.std()),
        gini=max(0.0, gini),
    )


def clustering_score(graph: CSRGraph, bandwidth_fraction: float = 0.05) -> float:
    """Fraction of edges that fall near the diagonal of the adjacency matrix.

    An edge ``(u, v)`` is "near-diagonal" when ``|u - v|`` is within
    ``bandwidth_fraction`` of the vertex count.  Community graphs and
    locality-reordered graphs score close to 1; uniform random graphs score
    roughly ``2 * bandwidth_fraction``.
    """
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise GraphError("bandwidth_fraction must lie in (0, 1]")
    if graph.num_edges == 0:
        return 0.0
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    distance = np.abs(sources - graph.indices)
    bandwidth = max(1, int(round(bandwidth_fraction * graph.num_vertices)))
    return float(np.mean(distance <= bandwidth))


def neighbor_similarity(graph: CSRGraph, max_pairs: Optional[int] = 4096) -> float:
    """Average Jaccard similarity between the neighbour sets of adjacent rows.

    The paper (Fig. 7b) observes that adjacent rows of real graphs tend to
    exhibit the same non-zero pattern; this metric quantifies it.  To keep the
    cost bounded on large graphs the computation samples at most ``max_pairs``
    consecutive vertex pairs.
    """
    if graph.num_vertices < 2:
        return 0.0
    pairs = graph.num_vertices - 1
    if max_pairs is not None and pairs > max_pairs:
        rng = np.random.default_rng(0)
        starts = np.sort(rng.choice(pairs, size=max_pairs, replace=False))
    else:
        starts = np.arange(pairs)

    similarities = []
    for start in starts:
        a = set(graph.neighbors(int(start)).tolist())
        b = set(graph.neighbors(int(start) + 1).tolist())
        union = a | b
        if not union:
            continue
        similarities.append(len(a & b) / len(union))
    if not similarities:
        return 0.0
    return float(np.mean(similarities))


def locality_score(graph: CSRGraph) -> float:
    """Single scalar in [0, 1] summarising how cache-friendly the topology is.

    Combines the clustering score (short access distances) and the neighbour
    similarity (reuse across consecutive rows).  Used by the analytical parts
    of the accelerator models to modulate how much reordering / cooperation
    helps; the trace-driven cache simulator captures the same effect exactly
    on small graphs.
    """
    clustering = clustering_score(graph)
    similarity = neighbor_similarity(graph)
    return float(np.clip(0.6 * clustering + 0.4 * similarity, 0.0, 1.0))


def average_reuse_distance(graph: CSRGraph, sample_edges: int = 20000) -> float:
    """Mean number of distinct vertices touched between reuses of a vertex.

    A proxy for the LRU stack distance of the aggregation feature accesses
    when vertices are processed in id order.  Sampled for large graphs.
    """
    if graph.num_edges == 0:
        return 0.0
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    destinations = graph.indices
    if destinations.size > sample_edges:
        step = destinations.size // sample_edges
        destinations = destinations[::step]
        sources = sources[::step]

    last_seen: dict = {}
    distances = []
    for position, dest in enumerate(destinations.tolist()):
        if dest in last_seen:
            distances.append(position - last_seen[dest])
        last_seen[dest] = position
    if not distances:
        return float(destinations.size)
    return float(np.mean(distances))
