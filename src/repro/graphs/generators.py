"""Synthetic graph generators.

The paper evaluates SGCN on nine real-world graphs (Table II).  We do not
have access to those datasets offline, so the dataset layer
(:mod:`repro.graphs.datasets`) builds *calibrated synthetic equivalents* with
the properties the accelerator models are sensitive to:

* average degree (number of random feature reads per vertex),
* community structure / neighbour similarity (what sparsity-aware cooperation
  exploits, Fig. 7b),
* a skewed (power-law-like) degree distribution (what EnGN's degree-aware
  vertex cache exploits).

The generators in this module produce such graphs deterministically from a
seed.  They are also directly useful as library features for users who want
to run the accelerator models on their own synthetic workloads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import CSRGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    seed: Optional[int] = None,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """Generate a uniform random directed graph with ``num_edges`` edges.

    Self-loops are excluded; duplicate edges are removed, so the resulting
    edge count can be slightly below ``num_edges`` for dense requests.
    """
    if num_vertices <= 1:
        raise GraphError("need at least two vertices")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise GraphError(
            f"requested {num_edges} edges but a simple graph on {num_vertices} "
            f"vertices holds at most {max_edges}"
        )
    rng = _rng(seed)
    # Over-sample to compensate for duplicates and self-loops, then trim.
    oversample = int(num_edges * 1.3) + 16
    src = rng.integers(0, num_vertices, size=oversample, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=oversample, dtype=np.int64)
    keep = src != dst
    pairs = np.stack([src[keep], dst[keep]], axis=1)
    keys = pairs[:, 0] * num_vertices + pairs[:, 1]
    _, unique_idx = np.unique(keys, return_index=True)
    pairs = pairs[np.sort(unique_idx)][:num_edges]
    return CSRGraph.from_edge_list(num_vertices, pairs, name=name, deduplicate=False)


def power_law_graph(
    num_vertices: int,
    average_degree: float,
    exponent: float = 2.2,
    seed: Optional[int] = None,
    name: str = "power-law",
) -> CSRGraph:
    """Generate a graph with a power-law out-degree distribution.

    Destination vertices are drawn proportionally to a Zipf-like popularity,
    giving a few very high in-degree hub vertices — the structure EnGN's
    degree-aware vertex cache targets.

    Args:
        num_vertices: Number of vertices.
        average_degree: Target average out-degree.
        exponent: Power-law exponent; larger values concentrate edges on
            fewer hubs.
        seed: RNG seed.
        name: Graph name.
    """
    if num_vertices <= 1:
        raise GraphError("need at least two vertices")
    if average_degree <= 0:
        raise GraphError("average degree must be positive")
    rng = _rng(seed)

    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    popularity = ranks ** (-exponent / 2.0)
    popularity /= popularity.sum()

    num_edges = int(round(num_vertices * average_degree))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.choice(num_vertices, size=num_edges, p=popularity).astype(np.int64)
    keep = src != dst
    pairs = np.stack([src[keep], dst[keep]], axis=1)
    return CSRGraph.from_edge_list(num_vertices, pairs, name=name, deduplicate=True)


def community_graph(
    num_vertices: int,
    average_degree: float,
    num_communities: int = 16,
    intra_fraction: float = 0.8,
    locality_sigma: float = 0.05,
    seed: Optional[int] = None,
    name: str = "community",
) -> CSRGraph:
    """Generate a graph with community clustering and neighbour similarity.

    The generator models the two structural properties SGCN's sparsity-aware
    cooperation relies on (paper Fig. 7b): vertices form communities (strong
    diagonal blocks in the adjacency matrix) and vertices with nearby ids
    share neighbours.  Edges are generated per source vertex:

    * with probability ``intra_fraction`` the destination is drawn from a
      Gaussian centred on the source id (scaled by ``locality_sigma`` of the
      graph size), producing diagonal clustering;
    * otherwise the destination is uniform over the whole graph, producing the
      sparse off-diagonal background visible in real graphs.

    Args:
        num_vertices: Number of vertices.
        average_degree: Target average out-degree.
        num_communities: Number of diagonal communities (only used to place
            community centres; the Gaussian locality already induces blocks).
        intra_fraction: Fraction of edges that stay near the diagonal.
        locality_sigma: Width of the near-diagonal Gaussian relative to the
            number of vertices.
        seed: RNG seed.
        name: Graph name.
    """
    if num_vertices <= 1:
        raise GraphError("need at least two vertices")
    if not 0.0 <= intra_fraction <= 1.0:
        raise GraphError("intra_fraction must lie in [0, 1]")
    if average_degree <= 0:
        raise GraphError("average degree must be positive")
    if num_communities <= 0:
        raise GraphError("num_communities must be positive")
    rng = _rng(seed)

    num_edges = int(round(num_vertices * average_degree))
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)

    is_local = rng.random(num_edges) < intra_fraction
    sigma = max(1.0, locality_sigma * num_vertices)
    local_offsets = rng.normal(0.0, sigma, size=num_edges).astype(np.int64)
    local_dst = np.clip(src + local_offsets, 0, num_vertices - 1)
    uniform_dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = np.where(is_local, local_dst, uniform_dst)

    keep = src != dst
    pairs = np.stack([src[keep], dst[keep]], axis=1)
    return CSRGraph.from_edge_list(num_vertices, pairs, name=name, deduplicate=True)


def grid_graph(rows: int, cols: int, name: str = "grid") -> CSRGraph:
    """Generate a 2-D grid graph (4-neighbourhood), useful for tests.

    Every vertex is connected to its horizontal and vertical neighbours in
    both directions, giving a perfectly regular access pattern.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")
    num_vertices = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            if c + 1 < cols:
                edges.append((vertex, vertex + 1))
                edges.append((vertex + 1, vertex))
            if r + 1 < rows:
                edges.append((vertex, vertex + cols))
                edges.append((vertex + cols, vertex))
    return CSRGraph.from_edge_list(num_vertices, edges, name=name, deduplicate=True)
