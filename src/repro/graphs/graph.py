"""Compressed sparse row (CSR) graph structure.

The GCN accelerators modelled by this library all consume the graph topology
in CSR form (the paper, Section III-B, assumes the adjacency matrix is stored
as CSR to exploit its near-100% sparsity).  :class:`CSRGraph` is therefore the
central graph structure of the library: it stores the topology, optional edge
weights (the normalised adjacency values), and provides the accessors the
simulators and the numpy GCN layers need.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError


class CSRGraph:
    """A directed graph stored in compressed sparse row form.

    Attributes:
        num_vertices: Number of vertices.
        indptr: ``int64`` array of length ``num_vertices + 1``; row ``v``'s
            neighbours are ``indices[indptr[v]:indptr[v + 1]]``.
        indices: ``int32`` array of destination vertex ids, one per edge.
        weights: ``float32`` array of edge weights, one per edge.  For a GCN
            this holds the normalised adjacency values.
        name: Optional human-readable name (dataset name).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional arrays")
        if indptr.size == 0:
            raise GraphError("indptr must contain at least one entry")
        if indptr[0] != 0:
            raise GraphError("indptr must start at zero")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be monotonically non-decreasing")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({int(indptr[-1])}) must equal the number of edges "
                f"({indices.size})"
            )
        num_vertices = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise GraphError("edge destinations must lie in [0, num_vertices)")

        if weights is None:
            weights = np.ones(indices.size, dtype=np.float32)
        else:
            weights = np.asarray(weights, dtype=np.float32)
            if weights.shape != indices.shape:
                raise GraphError("weights must have one entry per edge")

        self.indptr = indptr
        self.indices = indices.astype(np.int64)
        self.weights = weights
        self.name = name
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Stable content digest of the topology (indptr + indices).

        Used as the graph component of cross-run cache keys (the
        :class:`repro.memory.replay.TraceCache` owned by a session): two
        graph objects with the same fingerprint produce identical access
        traces for any schedule.  Weights are excluded — they never affect
        trace construction.  Computed lazily and memoized; callers must not
        mutate ``indptr``/``indices`` after construction (nothing in the
        library does).
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(np.ascontiguousarray(self.indptr).tobytes())
            digest.update(np.ascontiguousarray(self.indices).tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of (directed) edges in the graph."""
        return self.indices.size

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    @property
    def average_degree(self) -> float:
        """Average out-degree; zero for an empty graph."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the destination ids of ``vertex``'s outgoing edges."""
        self._check_vertex(vertex)
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Return the edge weights of ``vertex``'s outgoing edges."""
        self._check_vertex(vertex)
        return self.weights[self.indptr[vertex] : self.indptr[vertex + 1]]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(source, destination, weight)`` triples."""
        for src in range(self.num_vertices):
            start, stop = self.indptr[src], self.indptr[src + 1]
            for offset in range(start, stop):
                yield src, int(self.indices[offset]), float(self.weights[offset])

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise GraphError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Return the dense ``num_vertices x num_vertices`` adjacency matrix."""
        dense = np.zeros((self.num_vertices, self.num_vertices), dtype=np.float32)
        for src in range(self.num_vertices):
            start, stop = self.indptr[src], self.indptr[src + 1]
            dense[src, self.indices[start:stop]] = self.weights[start:stop]
        return dense

    @classmethod
    def from_dense(cls, adjacency: np.ndarray, name: str = "graph") -> "CSRGraph":
        """Build a graph from a dense adjacency matrix (non-zeros become edges)."""
        adjacency = np.asarray(adjacency)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise GraphError("adjacency must be a square matrix")
        num_vertices = adjacency.shape[0]
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        indices = []
        weights = []
        for src in range(num_vertices):
            cols = np.nonzero(adjacency[src])[0]
            indices.append(cols)
            weights.append(adjacency[src, cols])
            indptr[src + 1] = indptr[src] + cols.size
        indices_arr = (
            np.concatenate(indices) if indices else np.zeros(0, dtype=np.int64)
        )
        weights_arr = (
            np.concatenate(weights).astype(np.float32)
            if weights
            else np.zeros(0, dtype=np.float32)
        )
        return cls(indptr, indices_arr, weights_arr, name=name)

    @classmethod
    def from_edge_list(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Sequence[float]] = None,
        name: str = "graph",
        deduplicate: bool = True,
    ) -> "CSRGraph":
        """Build a graph from an edge list.

        Args:
            num_vertices: Number of vertices.
            edges: Iterable of ``(source, destination)`` pairs.
            weights: Optional per-edge weights aligned with ``edges``.
            name: Graph name.
            deduplicate: Remove duplicate edges (keeping the first weight).
        """
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            indptr = np.zeros(num_vertices + 1, dtype=np.int64)
            return cls(indptr, np.zeros(0, dtype=np.int64), name=name)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be (source, destination) pairs")
        if edge_array.min() < 0 or edge_array.max() >= num_vertices:
            raise GraphError("edge endpoints must lie in [0, num_vertices)")

        if weights is None:
            weight_array = np.ones(edge_array.shape[0], dtype=np.float32)
        else:
            weight_array = np.asarray(weights, dtype=np.float32)
            if weight_array.shape[0] != edge_array.shape[0]:
                raise GraphError("weights must align with edges")

        if deduplicate:
            keys = edge_array[:, 0] * num_vertices + edge_array[:, 1]
            _, unique_idx = np.unique(keys, return_index=True)
            unique_idx = np.sort(unique_idx)
            edge_array = edge_array[unique_idx]
            weight_array = weight_array[unique_idx]

        order = np.lexsort((edge_array[:, 1], edge_array[:, 0]))
        edge_array = edge_array[order]
        weight_array = weight_array[order]

        counts = np.bincount(edge_array[:, 0], minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, edge_array[:, 1], weight_array, name=name)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Return a copy of the graph with new edge weights."""
        return CSRGraph(self.indptr.copy(), self.indices.copy(), weights, name=self.name)

    def reorder(self, permutation: np.ndarray) -> "CSRGraph":
        """Relabel vertices by ``permutation``.

        ``permutation[old_id] == new_id``.  Both the row order and the
        destination ids are remapped; within each row the destinations stay
        sorted.  Used by the I-GCN baseline (islandization) and by
        locality-improving preprocessing.
        """
        permutation = np.asarray(permutation, dtype=np.int64)
        if permutation.shape != (self.num_vertices,):
            raise GraphError("permutation must have one entry per vertex")
        if np.sort(permutation).tolist() != list(range(self.num_vertices)):
            raise GraphError("permutation must be a bijection over the vertex ids")

        # One stable sort of all edges by (new source, new destination)
        # reproduces the per-row relabel-and-sort exactly: row blocks stay
        # contiguous and within each row the destinations come out sorted
        # (ties keep their original CSR order, as a per-row stable argsort
        # would).
        num_vertices = self.num_vertices
        new_src = permutation[
            np.repeat(np.arange(num_vertices, dtype=np.int64), self.degrees)
        ]
        new_dst = permutation[self.indices]
        order = np.argsort(new_src * num_vertices + new_dst, kind="stable")

        new_indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_src, minlength=num_vertices), out=new_indptr[1:])
        return CSRGraph(
            new_indptr, new_dst[order], self.weights[order], name=self.name
        )

    def transpose(self) -> "CSRGraph":
        """Return the transposed graph (edges reversed)."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        pairs = np.stack([self.indices, sources], axis=1)
        return CSRGraph.from_edge_list(
            self.num_vertices,
            pairs,
            weights=self.weights,
            name=self.name,
            deduplicate=False,
        )

    def symmetrized(self) -> "CSRGraph":
        """Return the graph with every edge mirrored (undirected view)."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)
        forward = np.stack([sources, self.indices], axis=1)
        backward = np.stack([self.indices, sources], axis=1)
        pairs = np.concatenate([forward, backward], axis=0)
        weights = np.concatenate([self.weights, self.weights])
        return CSRGraph.from_edge_list(
            self.num_vertices, pairs, weights=weights, name=self.name, deduplicate=True
        )

    def subgraph(self, vertices: Sequence[int]) -> "CSRGraph":
        """Return the induced subgraph on ``vertices`` (relabelled 0..k-1)."""
        vertex_ids = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        if vertex_ids.size and (
            vertex_ids.min() < 0 or vertex_ids.max() >= self.num_vertices
        ):
            raise GraphError("subgraph vertices out of range")
        mapping = -np.ones(self.num_vertices, dtype=np.int64)
        mapping[vertex_ids] = np.arange(vertex_ids.size, dtype=np.int64)

        edges = []
        weights = []
        for new_src, old_src in enumerate(vertex_ids):
            start, stop = self.indptr[old_src], self.indptr[old_src + 1]
            dests = self.indices[start:stop]
            wts = self.weights[start:stop]
            keep = mapping[dests] >= 0
            for dest, weight in zip(mapping[dests[keep]], wts[keep]):
                edges.append((new_src, int(dest)))
                weights.append(float(weight))
        return CSRGraph.from_edge_list(
            vertex_ids.size, edges, weights=weights, name=f"{self.name}-sub"
        )

    # ------------------------------------------------------------------ #
    # Size accounting (Table II "Topology" column)
    # ------------------------------------------------------------------ #
    def topology_bytes(self, index_bytes: int = 4, weight_bytes: int = 4) -> int:
        """Bytes required to store the topology in CSR form.

        ``(V + 1)`` row pointers plus one column index and one weight per
        edge.  This matches the "Topology" size column of the paper's
        Table II (weights included because the normalised adjacency is what
        the aggregation engine streams).
        """
        return (self.num_vertices + 1) * index_bytes + self.num_edges * (
            index_bytes + weight_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.allclose(self.weights, other.weights)
        )
