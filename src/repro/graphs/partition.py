"""Topology tiling and vertex strip partitioning.

GCN accelerators tile the adjacency matrix so that the feature rows touched
by one tile fit in the on-chip cache (paper Section V-C and GCNAX/EnGN).
This module provides:

* :func:`topology_tiles` — partition the edges of a graph into a 2-D grid of
  tiles over (source range, destination range);
* :func:`vertex_strips` — split a vertex range into fixed-height strips, the
  building block of sparsity-aware cooperation (strip height 32 by default);
* :func:`interleaved_strip_order` — the SAC schedule: engines walk strips in
  an interleaved order so that nested reuse windows appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import CSRGraph


@dataclass(frozen=True)
class TopologyTile:
    """One tile of the adjacency matrix.

    Attributes:
        source_range: Half-open ``(start, stop)`` range of source vertices.
        dest_range: Half-open ``(start, stop)`` range of destination vertices.
        edge_sources: Source vertex id of every edge in the tile.
        edge_dests: Destination vertex id of every edge in the tile.
        edge_weights: Weight of every edge in the tile.
    """

    source_range: Tuple[int, int]
    dest_range: Tuple[int, int]
    edge_sources: np.ndarray
    edge_dests: np.ndarray
    edge_weights: np.ndarray

    @property
    def num_edges(self) -> int:
        """Number of edges in the tile."""
        return int(self.edge_sources.size)

    @property
    def num_dest_vertices(self) -> int:
        """Number of distinct destination vertices referenced by the tile."""
        if self.edge_dests.size == 0:
            return 0
        return int(np.unique(self.edge_dests).size)


def _ranges(total: int, chunk: int) -> List[Tuple[int, int]]:
    if chunk <= 0:
        raise GraphError("tile dimension must be positive")
    return [(start, min(start + chunk, total)) for start in range(0, total, chunk)]


def topology_tiles(
    graph: CSRGraph,
    source_tile: int,
    dest_tile: int,
) -> List[TopologyTile]:
    """Partition ``graph``'s edges into a grid of (source, destination) tiles.

    Tiles are returned in the row-product order used by GCNAX-style
    accelerators: for each source range, iterate over destination ranges.
    Every edge appears in exactly one tile.

    Args:
        graph: Input graph.
        source_tile: Number of source vertices per tile row.
        dest_tile: Number of destination vertices per tile column.
    """
    sources = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    dests = graph.indices
    weights = graph.weights

    tiles: List[TopologyTile] = []
    for src_start, src_stop in _ranges(graph.num_vertices, source_tile):
        src_mask = (sources >= src_start) & (sources < src_stop)
        tile_sources = sources[src_mask]
        tile_dests = dests[src_mask]
        tile_weights = weights[src_mask]
        for dst_start, dst_stop in _ranges(graph.num_vertices, dest_tile):
            dst_mask = (tile_dests >= dst_start) & (tile_dests < dst_stop)
            tiles.append(
                TopologyTile(
                    source_range=(src_start, src_stop),
                    dest_range=(dst_start, dst_stop),
                    edge_sources=tile_sources[dst_mask],
                    edge_dests=tile_dests[dst_mask],
                    edge_weights=tile_weights[dst_mask],
                )
            )
    return tiles


def vertex_strips(num_vertices: int, strip_height: int) -> List[Tuple[int, int]]:
    """Split ``[0, num_vertices)`` into consecutive strips of ``strip_height``."""
    if strip_height <= 0:
        raise GraphError("strip height must be positive")
    return _ranges(num_vertices, strip_height)


def interleaved_strip_order(
    num_vertices: int,
    strip_height: int,
    num_engines: int,
) -> List[List[Tuple[int, int]]]:
    """Assign vertex strips to engines in the sparsity-aware-cooperation order.

    Conventionally each engine would process one contiguous quarter of the
    vertices (paper Fig. 7a), producing a single large reuse window.  With
    sparsity-aware cooperation (Fig. 7c), the strips are dealt to the engines
    round-robin so every engine touches vertices spread across the whole
    range; combined with neighbour similarity this produces both a small
    reuse window (within a strip group) and a large one (across groups).

    Returns:
        One list of ``(start, stop)`` strips per engine, in processing order.
    """
    if num_engines <= 0:
        raise GraphError("need at least one engine")
    strips = vertex_strips(num_vertices, strip_height)
    assignment: List[List[Tuple[int, int]]] = [[] for _ in range(num_engines)]
    for index, strip in enumerate(strips):
        assignment[index % num_engines].append(strip)
    return assignment


def contiguous_partition_order(
    num_vertices: int,
    num_engines: int,
) -> List[List[Tuple[int, int]]]:
    """Assign each engine one contiguous block of vertices (conventional)."""
    if num_engines <= 0:
        raise GraphError("need at least one engine")
    block = max(1, (num_vertices + num_engines - 1) // num_engines)
    assignment: List[List[Tuple[int, int]]] = []
    for engine in range(num_engines):
        start = engine * block
        stop = min(num_vertices, start + block)
        if start >= stop:
            assignment.append([])
        else:
            assignment.append([(start, stop)])
    return assignment


def interleave_engine_schedules(
    schedules: Sequence[Sequence[Tuple[int, int]]],
) -> Iterator[Tuple[int, Tuple[int, int]]]:
    """Round-robin merge of per-engine strip schedules.

    Engines run concurrently; from the shared cache's point of view their
    accesses interleave.  This helper produces the interleaved global order
    ``(engine_id, (start, stop))`` used to build the cache access trace.
    """
    longest = max((len(schedule) for schedule in schedules), default=0)
    for step in range(longest):
        for engine_id, schedule in enumerate(schedules):
            if step < len(schedule):
                yield engine_id, schedule[step]
