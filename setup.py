"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so the package can be installed in editable mode on offline machines
whose pip/setuptools tool-chain lacks the ``wheel`` package (``pip install -e .``
falls back to the legacy ``setup.py develop`` path, and
``python setup.py develop`` works directly).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SGCN (HPCA 2023) reproduction: compressed-sparse features for deep "
        "GCN accelerators"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={
        "console_scripts": [
            "repro=repro.experiments.cli:main",
        ],
    },
)
